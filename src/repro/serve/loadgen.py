"""The seeded loop-back client swarm.

The serving front end needs traffic; CI needs *reproducible* traffic.
:class:`LoadGenerator` opens ``clients`` concurrent TCP connections
and walks each through a deterministic frame plan: the per-client RNG
is derived from ``(seed, client_id)`` with the same SHA-256 splitting
primitive the process-parallel runner uses
(:func:`repro.sim.rng.derive_seed`), so client 17's sequence of
DATA/ACK kinds and payload sizes is a pure function of the seed -- in
any process, under any scheduling.

Each client is lock-stepped per connection (send a frame, await its
echo), which bounds in-flight state, exercises the server's
per-connection backpressure, and guarantees the server observed
every frame a finished client sent.  Concurrency *across* clients is
real: with ``concurrency=None`` all clients run at once, which is how
the CI smoke drives 100+ simultaneous sessions.
"""

from __future__ import annotations

import asyncio
import dataclasses
import random
from typing import List, Optional, Tuple

from ..sim.rng import derive_seed
from .protocol import (
    FRAME_ACK,
    FRAME_DATA,
    FRAME_HELLO,
    FrameError,
    encode_frame,
    read_frame,
)

__all__ = ["LoadConfig", "LoadGenerator", "LoadReport", "frame_plan"]


@dataclasses.dataclass(frozen=True)
class LoadConfig:
    """Shape of one seeded swarm."""

    clients: int = 10
    #: Frames each client sends (after its HELLO).
    frames: int = 20
    seed: int = 7
    #: Fraction of frames sent as pure ACKs (the paper's second class).
    ack_ratio: float = 0.3
    payload_min: int = 16
    payload_max: int = 128
    #: Max clients connected at once; ``None`` = all of them.
    concurrency: Optional[int] = None
    #: Per-client wall-clock budget before it reports an error.
    timeout: float = 30.0

    def __post_init__(self) -> None:
        if self.clients < 1:
            raise ValueError(f"clients must be >= 1, got {self.clients}")
        if self.frames < 0:
            raise ValueError(f"frames must be >= 0, got {self.frames}")
        if not 0.0 <= self.ack_ratio <= 1.0:
            raise ValueError(
                f"ack_ratio must be in [0, 1], got {self.ack_ratio:g}"
            )
        if not 0 <= self.payload_min <= self.payload_max:
            raise ValueError(
                f"need 0 <= payload_min <= payload_max,"
                f" got {self.payload_min}..{self.payload_max}"
            )
        if self.concurrency is not None and self.concurrency < 1:
            raise ValueError(
                f"concurrency must be >= 1, got {self.concurrency}"
            )


def frame_plan(
    config: LoadConfig, client_id: int
) -> List[Tuple[int, int]]:
    """Client ``client_id``'s deterministic ``(kind, payload_len)`` list.

    A pure function of ``(config.seed, client_id)`` -- the load
    generator and the determinism tests both call it and must agree.
    """
    rng = random.Random(derive_seed(config.seed, f"loadgen:{client_id}"))
    plan: List[Tuple[int, int]] = []
    for _ in range(config.frames):
        if rng.random() < config.ack_ratio:
            plan.append((FRAME_ACK, 0))
        else:
            plan.append(
                (
                    FRAME_DATA,
                    rng.randint(config.payload_min, config.payload_max),
                )
            )
    return plan


@dataclasses.dataclass
class LoadReport:
    """What the swarm accomplished."""

    clients: int
    frames_sent: int = 0
    acks_received: int = 0
    errors: int = 0
    error_details: List[str] = dataclasses.field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.errors == 0 and self.acks_received == self.frames_sent


class LoadGenerator:
    """Drives a seeded client swarm against one server address."""

    def __init__(self, config: LoadConfig = LoadConfig()):
        self.config = config

    async def run(self, host: str, port: int) -> LoadReport:
        config = self.config
        report = LoadReport(clients=config.clients)
        limit = config.concurrency or config.clients
        gate = asyncio.Semaphore(limit)

        async def one_client(client_id: int) -> None:
            async with gate:
                try:
                    await asyncio.wait_for(
                        self._client(host, port, client_id, report),
                        timeout=config.timeout,
                    )
                except Exception as exc:
                    report.errors += 1
                    if len(report.error_details) < 20:
                        report.error_details.append(
                            f"client {client_id}: {type(exc).__name__}: {exc}"
                        )

        await asyncio.gather(
            *(one_client(cid) for cid in range(config.clients))
        )
        return report

    async def _client(
        self, host: str, port: int, client_id: int, report: LoadReport
    ) -> None:
        plan = frame_plan(self.config, client_id)
        reader, writer = await asyncio.open_connection(host, port)
        try:
            writer.write(encode_frame(FRAME_HELLO, client_id, 0))
            await writer.drain()
            for seq, (kind, payload_len) in enumerate(plan):
                payload = bytes(
                    (client_id + seq + offset) & 0xFF
                    for offset in range(payload_len)
                )
                writer.write(encode_frame(kind, client_id, seq, payload))
                await writer.drain()
                report.frames_sent += 1
                echo = await read_frame(reader)
                if echo is None:
                    raise FrameError(
                        f"server closed before acking seq {seq}"
                    )
                if echo.kind != FRAME_ACK or echo.seq != seq:
                    raise FrameError(
                        f"bad echo for seq {seq}:"
                        f" kind={echo.kind:#x} seq={echo.seq}"
                    )
                report.acks_received += 1
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
