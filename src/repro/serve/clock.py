"""The wall-clock <-> virtual-clock adapter.

Every consumer below the serving layer -- tracers, span collectors,
sketch publishers, the telemetry server's ``time`` field -- takes a
``clock`` callable and expects *virtual* seconds: monotone,
starting near zero, and free of the pathologies real clocks have
(NTP steps, laptop suspends, container freezes).  The simulations get
this for free from the event loop; the serving front end has to
manufacture it from ``time.monotonic()``.

:class:`WallClockAdapter` is that manufacture.  It integrates observed
wall-clock deltas into a virtual timeline with two guarantees:

* **monotonicity** -- a backwards wall step contributes zero, never a
  negative delta (``backward_steps`` counts the occurrences);
* **drift clamping** -- a single observed delta larger than
  ``max_step`` (a suspend, a stopped container) is clamped to
  ``max_step``, so one 2-hour lid-close does not teleport the virtual
  clock past every timeout in the system (``clamped_seconds``
  accumulates what was discarded).

The adapter is also the bridge *into* recorded artifacts: a live
capture's ``duration`` is the adapter's elapsed virtual time, which is
what lets wall-recorded streams sit beside virtual-time synthetic
streams in the same file format.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

__all__ = ["WallClockAdapter"]


class WallClockAdapter:
    """Integrates a wall clock into a monotone virtual timeline.

    ``wall`` defaults to :func:`time.monotonic`; tests inject a fake.
    The first observation anchors the origin: ``now()`` returns 0.0
    there, and advances by clamped deltas afterwards.
    """

    def __init__(
        self,
        *,
        wall: Callable[[], float] = time.monotonic,
        max_step: float = 60.0,
    ):
        if max_step <= 0:
            raise ValueError(f"max_step must be > 0, got {max_step:g}")
        self._wall = wall
        self.max_step = max_step
        self._virtual = 0.0
        self._last_wall: Optional[float] = None
        #: Wall seconds discarded by clamping (suspends, freezes).
        self.clamped_seconds = 0.0
        #: Observations where the wall clock ran backwards.
        self.backward_steps = 0

    def now(self) -> float:
        """Current virtual time; observes (and advances by) the wall."""
        wall = self._wall()
        if self._last_wall is None:
            self._last_wall = wall
            return self._virtual
        delta = wall - self._last_wall
        self._last_wall = wall
        if delta < 0.0:
            self.backward_steps += 1
            return self._virtual
        if delta > self.max_step:
            self.clamped_seconds += delta - self.max_step
            delta = self.max_step
        self._virtual += delta
        return self._virtual

    @property
    def elapsed(self) -> float:
        """Virtual seconds accumulated so far (without re-observing)."""
        return self._virtual

    def __repr__(self) -> str:
        return (
            f"<WallClockAdapter virtual={self._virtual:.6f}s"
            f" clamped={self.clamped_seconds:.3f}s"
            f" backward={self.backward_steps}>"
        )
