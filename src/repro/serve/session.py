"""The session table: one live socket = one demux connection.

The serving front end's contract with the demux engine is exactly the
simulations': a connection is *installed* (``insert``) when it is
accepted, every inbound frame is a ``lookup`` under its four-tuple,
and teardown is a ``remove``.  :class:`SessionTable` owns that
mapping -- socket lifetime to PCB lifetime -- plus the accounting the
telemetry plane exports (active/peak sessions, frames and bytes by
direction, rejects and errors).

The table never touches the event loop; it is plain bookkeeping the
server calls from its connection handlers, so it is directly unit
testable without sockets.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Optional

from ..core.base import DemuxAlgorithm, DuplicateConnectionError
from ..core.pcb import PCB
from ..packet.addresses import FourTuple

__all__ = ["Session", "SessionTable", "SessionRejected"]


class SessionRejected(Exception):
    """A new connection was refused (capacity or duplicate key)."""


@dataclasses.dataclass
class Session:
    """One accepted connection's identity and counters."""

    four_tuple: FourTuple
    #: Stable client id from the HELLO handshake; ``None`` for raw
    #: (non-handshaken) peers keyed by their socket address.
    client_id: Optional[int]
    pcb: PCB
    frames_in: int = 0
    frames_out: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    closed: bool = False

    @property
    def handshaken(self) -> bool:
        return self.client_id is not None


class SessionTable:
    """Maps live connections onto an algorithm's PCB population."""

    def __init__(
        self,
        algorithm: DemuxAlgorithm,
        *,
        max_sessions: Optional[int] = None,
    ):
        if max_sessions is not None and max_sessions < 1:
            raise ValueError(
                f"max_sessions must be >= 1, got {max_sessions}"
            )
        self.algorithm = algorithm
        self.max_sessions = max_sessions
        self._sessions: Dict[FourTuple, Session] = {}
        # Cumulative facts (survive session teardown).
        self.accepted = 0
        self.rejected_capacity = 0
        self.rejected_duplicate = 0
        self.closed = 0
        self.errors = 0
        self.peak_active = 0
        self.total_frames_in = 0
        self.total_frames_out = 0
        self.total_bytes_in = 0
        self.total_bytes_out = 0

    # -- lifecycle -----------------------------------------------------

    def open(
        self, tup: FourTuple, *, client_id: Optional[int] = None
    ) -> Session:
        """Install a connection; raises :class:`SessionRejected`.

        Capacity rejects are silent sheds (the SYN-flood discipline:
        the peer sees a close, the table stays bounded); duplicate
        keys mean a client reused a live identity, which is a protocol
        violation, not a capacity problem -- counted separately.
        """
        if (
            self.max_sessions is not None
            and len(self._sessions) >= self.max_sessions
        ):
            self.rejected_capacity += 1
            raise SessionRejected(
                f"at capacity ({self.max_sessions} sessions)"
            )
        if tup in self._sessions:
            self.rejected_duplicate += 1
            raise SessionRejected(f"duplicate session key {tup}")
        pcb = PCB(tup)
        try:
            self.algorithm.insert(pcb)
        except DuplicateConnectionError:
            # The structure knows a connection the table does not --
            # e.g. a pre-installed synthetic population.  Same verdict.
            self.rejected_duplicate += 1
            raise SessionRejected(
                f"four-tuple already installed: {tup}"
            ) from None
        session = Session(four_tuple=tup, client_id=client_id, pcb=pcb)
        self._sessions[tup] = session
        self.accepted += 1
        self.peak_active = max(self.peak_active, len(self._sessions))
        return session

    def close(self, session: Session) -> None:
        """Tear down a connection; removing is idempotent per session."""
        if session.closed:
            return
        session.closed = True
        self._sessions.pop(session.four_tuple, None)
        self.closed += 1
        try:
            self.algorithm.remove(session.four_tuple)
        except KeyError:
            # Already gone (e.g. reaped by a lifecycle policy between
            # the last frame and the close) -- teardown still counts.
            pass

    # -- accounting ----------------------------------------------------

    def note_inbound(self, session: Session, nbytes: int) -> None:
        session.frames_in += 1
        session.bytes_in += nbytes
        self.total_frames_in += 1
        self.total_bytes_in += nbytes

    def note_outbound(self, session: Session, nbytes: int) -> None:
        session.frames_out += 1
        session.bytes_out += nbytes
        self.total_frames_out += 1
        self.total_bytes_out += nbytes

    def note_error(self) -> None:
        self.errors += 1

    # -- views ---------------------------------------------------------

    @property
    def active(self) -> int:
        return len(self._sessions)

    def get(self, tup: FourTuple) -> Optional[Session]:
        return self._sessions.get(tup)

    def __iter__(self):
        return iter(list(self._sessions.values()))

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready stats: the ``serve`` telemetry section."""
        return {
            "active_sessions": self.active,
            "peak_sessions": self.peak_active,
            "accepted": self.accepted,
            "rejected_capacity": self.rejected_capacity,
            "rejected_duplicate": self.rejected_duplicate,
            "closed": self.closed,
            "errors": self.errors,
            "frames_in": self.total_frames_in,
            "frames_out": self.total_frames_out,
            "bytes_in": self.total_bytes_in,
            "bytes_out": self.total_bytes_out,
            "max_sessions": self.max_sessions,
        }
