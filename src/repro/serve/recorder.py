"""The recorder tap: served traffic into the recorded-stream format.

The bridge half of record/replay.  While the server runs, the tap
accumulates every installed connection and every routed frame; at
shutdown it flattens them into a
:class:`repro.workload.record.RecordedStream` (``kind="live-capture"``)
that ``bench-gate``, the golden decision-trace machinery, and the
canary gate replay exactly as they replay synthetic TPC/A streams.

Two orderings are offered, because live capture has a tension
synthetic recording does not:

``canonical`` (the default)
    Packets sorted by ``(seq, client_id)`` and connections by client
    id -- a stable round-robin interleaving that depends only on
    *what* each client sent, never on how the kernel happened to
    schedule 100 concurrent sockets.  Two runs of the same seeded
    swarm produce byte-identical captures (equal digests), which is
    what makes live traffic usable for regression gating.

``arrival``
    The order frames actually reached the demux engine.  Truthful
    about locality and interleaving -- the thing destination-locality
    studies care about -- but unique to the run that produced it.

Frames from non-handshaken peers carry no ``(client_id, seq)``
coordinates; under ``canonical`` ordering they sort after all
handshaken traffic, by arrival.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.stats import PacketKind
from ..packet.addresses import FourTuple
from ..workload.record import RecordedStream, save_stream

__all__ = ["RecorderTap"]

#: Sort rank for frames without handshake coordinates.
_LATE = (1 << 62)


class RecorderTap:
    """Accumulates served traffic; finalizes to a RecordedStream."""

    ORDERS = ("canonical", "arrival")

    def __init__(self, *, order: str = "canonical", seed: int = 0):
        if order not in self.ORDERS:
            raise ValueError(
                f"unknown capture order {order!r};"
                f" expected one of {list(self.ORDERS)}"
            )
        self.order = order
        self.seed = seed
        # (tup, client_id) in install order; client_id None = raw peer.
        self._installs: List[Tuple[FourTuple, Optional[int]]] = []
        self._seen_tuples = set()
        # (sort_seq, sort_client, arrival_index, tup, kind)
        self._packets: List[
            Tuple[int, int, int, FourTuple, PacketKind]
        ] = []

    # -- taps ----------------------------------------------------------

    def note_install(
        self, tup: FourTuple, *, client_id: Optional[int] = None
    ) -> None:
        """A connection was accepted and installed."""
        if tup in self._seen_tuples:
            return
        self._seen_tuples.add(tup)
        self._installs.append((tup, client_id))

    def note_packet(
        self,
        tup: FourTuple,
        kind: PacketKind,
        *,
        client_id: Optional[int] = None,
        seq: Optional[int] = None,
    ) -> None:
        """A frame was routed through the demux engine."""
        arrival = len(self._packets)
        if client_id is None or seq is None:
            self._packets.append((_LATE, _LATE, arrival, tup, kind))
        else:
            self._packets.append((seq, client_id, arrival, tup, kind))

    # -- finalization --------------------------------------------------

    @property
    def packet_count(self) -> int:
        return len(self._packets)

    @property
    def connection_count(self) -> int:
        return len(self._installs)

    def finalize(self, *, duration: float) -> RecordedStream:
        """Flatten the capture under the configured ordering.

        ``duration`` is the serving window in (adapter-virtual) wall
        seconds -- the field replay consumers report, never replay
        against.
        """
        installs = list(self._installs)
        packets = list(self._packets)
        if self.order == "canonical":
            installs.sort(
                key=lambda entry: (
                    _LATE if entry[1] is None else entry[1],
                    entry[0],
                )
            )
            packets.sort(key=lambda entry: (entry[0], entry[1], entry[2]))
        return RecordedStream(
            tuples=tuple(tup for tup, _ in installs),
            packets=tuple((tup, kind) for _, _, _, tup, kind in packets),
            n_users=len(installs),
            duration=duration,
            seed=self.seed,
            kind="live-capture",
        )

    def save(self, path: str, *, duration: float) -> str:
        """Finalize and persist; returns the capture's content digest."""
        return save_stream(self.finalize(duration=duration), path)
