"""The paper's contribution: PCB demultiplexing algorithms.

Four structures from the paper --

* :class:`BSDDemux` -- linear list + one-entry cache (Section 3.1)
* :class:`MoveToFrontDemux` -- Crowcroft's heuristic (Section 3.2)
* :class:`SendRecvDemux` -- Partridge/Pink two-slot cache (Section 3.3)
* :class:`SequentDemux` -- hash chains with per-chain caches (Section 3.4)

plus the pre-cache :class:`LinearDemux`, the Section 3.5 extensions
(:class:`HashedMTFDemux`, :class:`ConnectionIdDemux`), lookup-cost
accounting (:mod:`~repro.core.stats`) and the PCBs-to-nanoseconds
memory model (:mod:`~repro.core.costmodel`).
"""

from .base import (
    DemuxAlgorithm,
    DemuxError,
    DuplicateConnectionError,
    LookupResult,
)
from .bsd import BSDDemux
from .connection_id import ConnectionIdDemux
from .costmodel import CIRCA_1992, CIRCA_2020, CacheLevel, MemoryModel
from .hashed_mtf import HashedMTFDemux
from .linear import LinearDemux
from .mtf import MoveToFrontDemux
from .multicache import MultiCacheDemux
from .pcb import PCB
from .registry import ALGORITHMS, available_algorithms, make_algorithm
from .sendrecv import SendRecvDemux
from .sequent import DEFAULT_HASH_CHAINS, SequentDemux
from .stats import DemuxStats, KindStats, LookupRecord, PacketKind

__all__ = [
    "ALGORITHMS",
    "BSDDemux",
    "CIRCA_1992",
    "CIRCA_2020",
    "CacheLevel",
    "ConnectionIdDemux",
    "DEFAULT_HASH_CHAINS",
    "DemuxAlgorithm",
    "DemuxError",
    "DemuxStats",
    "DuplicateConnectionError",
    "HashedMTFDemux",
    "KindStats",
    "LinearDemux",
    "LookupRecord",
    "LookupResult",
    "MemoryModel",
    "MoveToFrontDemux",
    "MultiCacheDemux",
    "PCB",
    "PacketKind",
    "SendRecvDemux",
    "SequentDemux",
    "available_algorithms",
    "make_algorithm",
]
