"""A k-entry LRU cache in front of the linear list.

The obvious question the paper's Section 3 leaves the reader:
Partridge/Pink went from one cache slot to two -- why not k?  This
structure answers it.  A k-entry LRU front-end raises the hit rate to
~k/N under memoryless OLTP traffic (each of the N users equally likely
next, so the cache holds the k most recent distinct connections), but
the *miss penalty* stays a full-list scan plus now k wasted probes:

    C_LRU(N, k) ~ E[hit position] * (k/N) + (k + (N+1)/2) * (N-k)/N

Misses dominate for k << N, so enlarging the cache loses to splitting
the *list* (Sequent's hash chains) -- which attacks the miss penalty
itself.  That is precisely the paper's "the miss penalty dominates the
hit ratio" argument, and ``bench_multicache.py`` plots the two sweeps
against each other.

Probing is LRU-ordered (most recent first), so under packet trains the
first probe hits and the structure degrades gracefully to BSD-like
behaviour at k=1.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator, List

from ..packet.addresses import FourTuple
from .base import DemuxAlgorithm, DuplicateConnectionError, LookupResult
from .pcb import PCB
from .stats import PacketKind

__all__ = ["MultiCacheDemux"]


class MultiCacheDemux(DemuxAlgorithm):
    """Linear PCB list behind a k-entry LRU cache.

    ``k=1`` is cost-equivalent to :class:`~repro.core.bsd.BSDDemux`
    (a property test pins this); ``k=len(structure)`` makes every
    lookup a cache hit at LRU-position cost.
    """

    name = "multicache"

    def __init__(self, cache_size: int = 8):
        super().__init__()
        if cache_size < 1:
            raise ValueError(f"cache_size must be >= 1, got {cache_size}")
        self._cache_size = cache_size
        self._pcbs: List[PCB] = []
        self._tuples = set()
        # Most-recently-used last (OrderedDict semantics); probed in
        # reverse so the hottest entry costs one examined PCB.
        self._cache: "OrderedDict[FourTuple, PCB]" = OrderedDict()

    @property
    def cache_size(self) -> int:
        return self._cache_size

    def cached_tuples(self):
        """Cache contents, most recently used first (for inspection)."""
        return tuple(reversed(self._cache.keys()))

    def _touch(self, pcb: PCB) -> None:
        """Insert/refresh a cache entry, evicting the LRU tail."""
        tup = pcb.four_tuple
        if tup in self._cache:
            self._cache.move_to_end(tup)
            return
        if len(self._cache) >= self._cache_size:
            self._cache.popitem(last=False)
        self._cache[tup] = pcb

    def _insert(self, pcb: PCB) -> None:
        if pcb.four_tuple in self._tuples:
            raise DuplicateConnectionError(f"duplicate connection {pcb.four_tuple}")
        self._pcbs.insert(0, pcb)
        self._tuples.add(pcb.four_tuple)

    def _remove(self, tup: FourTuple) -> PCB:
        if tup not in self._tuples:
            raise KeyError(tup)
        self._cache.pop(tup, None)
        for i, pcb in enumerate(self._pcbs):
            if pcb.four_tuple == tup:
                del self._pcbs[i]
                self._tuples.discard(tup)
                return pcb
        raise KeyError(tup)

    def _lookup(self, tup: FourTuple, kind: PacketKind) -> LookupResult:
        examined = 0
        # Probe MRU -> LRU: a hardware or kernel implementation walks
        # the recency list, comparing each cached PCB.
        for cached_tup in reversed(self._cache.keys()):
            examined += 1
            if cached_tup == tup:
                pcb = self._cache[tup]
                self._cache.move_to_end(tup)
                return LookupResult(pcb, examined, cache_hit=True, kind=kind)
        for pcb in self._pcbs:
            examined += 1
            if pcb.four_tuple == tup:
                self._touch(pcb)
                return LookupResult(pcb, examined, cache_hit=False, kind=kind)
        return LookupResult(None, examined, cache_hit=False, kind=kind)

    def __len__(self) -> int:
        return len(self._pcbs)

    def __iter__(self) -> Iterator[PCB]:
        return iter(self._pcbs)

    def describe(self) -> str:
        return (
            f"{self.name} (k={self._cache_size},"
            f" {len(self._cache)} cached, {len(self)} PCBs)"
        )
