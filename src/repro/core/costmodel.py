"""Memory-hierarchy cost model: PCBs examined -> estimated time.

Section 3 of the paper argues the *number of PCBs examined* is "a very
good surrogate for the time required to find the right PCB" because the
working set of thousands of PCBs cannot fit in on-chip caches, so each
examined PCB is a trip to off-chip cache or main memory, and "memory
speeds and bandwidths have been and are expected to continue increasing
much more slowly than CPU speeds" [HJ91, SC91].

This module makes the surrogate explicit and tunable: given a cache
hierarchy (capacity and per-access latency per level) and a PCB working
set, it estimates where PCB fetches land and what a lookup of ``k``
examined PCBs costs in nanoseconds.  It is a *model* -- experiments
label its outputs as estimates, never measurements.  The parameter
defaults describe a circa-1992 CPU so the reproduced tables carry
magnitudes the paper's contemporaries would recognize; a modern preset
is included for contrast.
"""

from __future__ import annotations

import dataclasses
from typing import Tuple

from .pcb import PCB

__all__ = ["CacheLevel", "MemoryModel", "CIRCA_1992", "CIRCA_2020"]


@dataclasses.dataclass(frozen=True)
class CacheLevel:
    """One level of the memory hierarchy."""

    name: str
    capacity_bytes: int
    access_ns: float

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError(f"{self.name}: capacity must be positive")
        if self.access_ns <= 0:
            raise ValueError(f"{self.name}: access time must be positive")


@dataclasses.dataclass(frozen=True)
class MemoryModel:
    """A hierarchy of cache levels backed by main memory.

    Levels must be ordered fastest/smallest first.  ``memory_ns`` is
    the access cost when the working set spills past every level.
    """

    levels: Tuple[CacheLevel, ...]
    memory_ns: float
    #: Fraction of a PCB actually touched by a tuple comparison (the
    #: scan reads the four-tuple fields, not all 384 bytes; one or two
    #: cache lines).
    touched_fraction: float = 0.167  # ~64 of 384 bytes

    def __post_init__(self) -> None:
        if self.memory_ns <= 0:
            raise ValueError("memory access time must be positive")
        if not 0 < self.touched_fraction <= 1:
            raise ValueError("touched_fraction must be in (0, 1]")
        capacities = [level.capacity_bytes for level in self.levels]
        if capacities != sorted(capacities):
            raise ValueError("cache levels must be ordered smallest first")

    def access_cost_ns(self, working_set_bytes: int) -> float:
        """Per-access cost for a working set of the given size.

        A working set that fits in level i is served at level i's
        latency; past all levels, at main-memory latency.  Deliberately
        simple (no partial-residency modelling): the paper's argument
        only needs "fits" vs. "does not fit".
        """
        if working_set_bytes < 0:
            raise ValueError("working set size must be non-negative")
        for level in self.levels:
            if working_set_bytes <= level.capacity_bytes:
                return level.access_ns
        return self.memory_ns

    def working_set_bytes(self, npcbs: int) -> int:
        """Bytes the scan actually touches across ``npcbs`` PCBs."""
        if npcbs < 0:
            raise ValueError("npcbs must be non-negative")
        return int(npcbs * PCB.APPROX_SIZE_BYTES * self.touched_fraction)

    def lookup_cost_ns(self, pcbs_examined: float, total_pcbs: int) -> float:
        """Estimated lookup time: examined PCBs x per-access cost.

        ``total_pcbs`` sizes the working set (it decides which level
        the scan runs out of); ``pcbs_examined`` may be a fractional
        expectation straight from the analytic model.
        """
        if pcbs_examined < 0:
            raise ValueError("pcbs_examined must be non-negative")
        per_access = self.access_cost_ns(self.working_set_bytes(total_pcbs))
        return pcbs_examined * per_access

    def describe(self) -> str:
        parts = [
            f"{level.name} {level.capacity_bytes // 1024}KiB/{level.access_ns:g}ns"
            for level in self.levels
        ]
        parts.append(f"memory {self.memory_ns:g}ns")
        return " -> ".join(parts)


#: A c.1992 system in the spirit of the Sequent Symmetry's i486s:
#: 8 KiB on-chip cache, 256 KiB board cache, ~350 ns DRAM.
CIRCA_1992 = MemoryModel(
    levels=(
        CacheLevel("on-chip", 8 * 1024, 30.0),
        CacheLevel("board", 256 * 1024, 120.0),
    ),
    memory_ns=350.0,
)

#: A modern contrast point: three-level hierarchy, ~80 ns DRAM.
CIRCA_2020 = MemoryModel(
    levels=(
        CacheLevel("L1", 32 * 1024, 1.0),
        CacheLevel("L2", 512 * 1024, 4.0),
        CacheLevel("L3", 16 * 1024 * 1024, 15.0),
    ),
    memory_ns=80.0,
)


def speedup_estimate(
    model: MemoryModel,
    baseline_examined: float,
    improved_examined: float,
    total_pcbs: int,
) -> float:
    """Estimated lookup-time ratio baseline/improved under ``model``.

    Both run against the same PCB population.  Used by experiments to
    translate "1001 vs 53 PCBs" into "XXx faster" headline estimates.
    """
    base = model.lookup_cost_ns(baseline_examined, total_pcbs)
    better = model.lookup_cost_ns(improved_examined, total_pcbs)
    if better == 0:
        raise ValueError("improved cost is zero; ratio undefined")
    return base / better
