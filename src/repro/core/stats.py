"""Per-lookup accounting for demultiplexing algorithms.

The paper's figure of merit is "the expected number of PCBs searched"
(Section 3) -- a surrogate for memory traffic.  Every lookup any
algorithm performs is recorded here, broken down by packet kind (data
vs. transport-level acknowledgement, the split Sections 3.3-3.4 analyze
separately), with a histogram of search lengths so experiments can
report distributions as well as means.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, Optional

__all__ = ["PacketKind", "LookupRecord", "KindStats", "DemuxStats"]


class PacketKind(enum.Enum):
    """The two inbound packet classes the paper's analysis distinguishes.

    DATA covers transaction queries (and any segment carrying payload or
    SYN/FIN); ACK is a pure transport-level acknowledgement.
    """

    DATA = "data"
    ACK = "ack"


@dataclasses.dataclass(frozen=True)
class LookupRecord:
    """What one lookup cost: filled in by the algorithm, fed to stats."""

    examined: int
    cache_hit: bool
    found: bool
    kind: PacketKind


@dataclasses.dataclass
class KindStats:
    """Aggregate counters for one packet kind."""

    lookups: int = 0
    examined_total: int = 0
    cache_hits: int = 0
    not_found: int = 0
    max_examined: int = 0
    histogram: Dict[int, int] = dataclasses.field(default_factory=dict)

    def record(self, rec: LookupRecord) -> None:
        self.lookups += 1
        self.examined_total += rec.examined
        if rec.cache_hit:
            self.cache_hits += 1
        if not rec.found:
            self.not_found += 1
        if rec.examined > self.max_examined:
            self.max_examined = rec.examined
        self.histogram[rec.examined] = self.histogram.get(rec.examined, 0) + 1

    @property
    def mean_examined(self) -> float:
        """Mean PCBs examined per lookup (the paper's figure of merit)."""
        return self.examined_total / self.lookups if self.lookups else 0.0

    @property
    def hit_rate(self) -> float:
        """Cache hit fraction.  Section 3.4 warns this is only part of
        the story -- report it next to :attr:`mean_examined`, never
        instead of it."""
        return self.cache_hits / self.lookups if self.lookups else 0.0

    def percentile(self, q: float) -> int:
        """The ``q``-quantile (0..1) of the search-length distribution."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.lookups:
            return 0
        target = q * self.lookups
        running = 0
        for examined in sorted(self.histogram):
            running += self.histogram[examined]
            if running >= target:
                return examined
        return self.max_examined

    def reset(self) -> None:
        """Zero every counter explicitly.

        Field by field, not ``__init__``-based re-initialization, so
        the idiom keeps working as fields are added (dataclass defaults
        are re-evaluated here too -- a shared mutable default would
        otherwise leak across resets).
        """
        self.lookups = 0
        self.examined_total = 0
        self.cache_hits = 0
        self.not_found = 0
        self.max_examined = 0
        self.histogram = {}

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready snapshot (histogram keys become strings)."""
        return {
            "lookups": self.lookups,
            "examined_total": self.examined_total,
            "cache_hits": self.cache_hits,
            "not_found": self.not_found,
            "max_examined": self.max_examined,
            "mean_examined": self.mean_examined,
            "hit_rate": self.hit_rate,
            "histogram": {
                str(examined): count
                for examined, count in sorted(self.histogram.items())
            },
        }

    def merge(self, other: "KindStats") -> None:
        """Fold ``other``'s counters into this one.

        Safe for cross-process aggregation: merging with an empty side
        (in either direction) is an identity on every counter *and*
        every derived value (mean, hit rate, percentiles), and merging
        two streams is equivalent to having recorded both into one
        object -- the histograms add bucket-wise, so percentiles stay
        exact.  ``other`` is never mutated.
        """
        self.lookups += other.lookups
        self.examined_total += other.examined_total
        self.cache_hits += other.cache_hits
        self.not_found += other.not_found
        self.max_examined = max(self.max_examined, other.max_examined)
        for examined, count in other.histogram.items():
            self.histogram[examined] = self.histogram.get(examined, 0) + count

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "KindStats":
        """Rebuild from an :meth:`as_dict` snapshot (JSON round trip).

        Histogram keys come back as *strings* after a JSON round trip;
        they must be restored to ints here or ``percentile()`` would
        sort them lexically ("10" < "2") and report garbage quantiles.
        This is the supported way to ship statistics across process
        boundaries: workers send ``as_dict()``, the parent rebuilds and
        :meth:`merge`\\ s.
        """
        return cls(
            lookups=int(data["lookups"]),
            examined_total=int(data["examined_total"]),
            cache_hits=int(data["cache_hits"]),
            not_found=int(data["not_found"]),
            max_examined=int(data["max_examined"]),
            histogram={
                int(examined): int(count)
                for examined, count in dict(data["histogram"]).items()
            },
        )


class DemuxStats:
    """Statistics for one demux algorithm instance, split by packet kind."""

    def __init__(self) -> None:
        self.by_kind: Dict[PacketKind, KindStats] = {
            kind: KindStats() for kind in PacketKind
        }

    def record(self, rec: LookupRecord) -> None:
        self.by_kind[rec.kind].record(rec)

    def reset(self) -> None:
        """Zero all counters (e.g. after a warm-up phase)."""
        for stats in self.by_kind.values():
            stats.reset()

    def merge(self, other: "DemuxStats") -> None:
        """Fold ``other`` into this one, kind by kind.

        The cross-shard / cross-process aggregation primitive: shard
        statistics (or per-worker snapshots rebuilt with
        :meth:`from_dict`) merge into one object whose means, hit
        rates, and percentiles equal those of a single combined stream.
        """
        for kind, stats in other.by_kind.items():
            self.by_kind[kind].merge(stats)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "DemuxStats":
        """Rebuild from an :meth:`as_dict` snapshot (JSON round trip)."""
        stats = cls()
        by_kind = dict(data["by_kind"])
        for kind in PacketKind:
            if kind.value in by_kind:
                stats.by_kind[kind] = KindStats.from_dict(by_kind[kind.value])
        return stats

    # -- aggregate views -----------------------------------------------

    @property
    def lookups(self) -> int:
        return sum(s.lookups for s in self.by_kind.values())

    @property
    def examined_total(self) -> int:
        return sum(s.examined_total for s in self.by_kind.values())

    @property
    def cache_hits(self) -> int:
        return sum(s.cache_hits for s in self.by_kind.values())

    @property
    def mean_examined(self) -> float:
        return self.examined_total / self.lookups if self.lookups else 0.0

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.lookups if self.lookups else 0.0

    def kind(self, kind: PacketKind) -> KindStats:
        return self.by_kind[kind]

    def combined(self) -> KindStats:
        """All kinds merged into one :class:`KindStats`."""
        merged = KindStats()
        for stats in self.by_kind.values():
            merged.merge(stats)
        return merged

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready snapshot, per kind plus the aggregate view.

        This (together with :class:`repro.obs.DemuxStatsExporter`,
        which publishes the same counters into a metrics registry) is
        the supported way to export statistics -- the counting
        convention itself stays pinned in :mod:`repro.core.base`.
        """
        return {
            "lookups": self.lookups,
            "examined_total": self.examined_total,
            "cache_hits": self.cache_hits,
            "mean_examined": self.mean_examined,
            "hit_rate": self.hit_rate,
            "by_kind": {
                kind.value: stats.as_dict()
                for kind, stats in self.by_kind.items()
            },
        }

    def summary(self, label: Optional[str] = None) -> str:
        """One-line human-readable summary."""
        prefix = f"{label}: " if label else ""
        data = self.by_kind[PacketKind.DATA]
        ack = self.by_kind[PacketKind.ACK]
        return (
            f"{prefix}{self.lookups} lookups,"
            f" mean examined {self.mean_examined:.2f}"
            f" (data {data.mean_examined:.2f} over {data.lookups},"
            f" ack {ack.mean_examined:.2f} over {ack.lookups}),"
            f" hit rate {self.hit_rate:.2%}"
        )
