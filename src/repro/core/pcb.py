"""The protocol control block (PCB).

"A Transmission Control Protocol (TCP) protocol control block (PCB)
contains state information for one endpoint of a given connection"
(paper, Section 1).  Every demultiplexing structure in
:mod:`repro.core` stores these; the TCP state machine in
:mod:`repro.tcpstack` mutates them.

The class is intentionally heavier than the 96-bit key alone: the
paper's whole argument is that PCBs are big enough that scanning them
thrashes the on-chip cache, so the PCB carries the realistic complement
of TCP endpoint state (sequence numbers, windows, timers, counters) and
reports its approximate memory footprint for the cost model.
"""

from __future__ import annotations

from typing import Optional

from ..packet.addresses import FourTuple

__all__ = ["PCB"]


class PCB:
    """State for one endpoint of one TCP connection.

    Identity is the connection's :class:`~repro.packet.addresses.FourTuple`
    (two PCBs with equal tuples are the same connection but remain
    distinct objects; the demux structures compare tuples, not objects).
    """

    __slots__ = (
        "four_tuple",
        "state",
        "snd_una",
        "snd_nxt",
        "snd_wnd",
        "rcv_nxt",
        "rcv_wnd",
        "iss",
        "irs",
        "mss",
        "srtt",
        "rttvar",
        "rto",
        "packets_in",
        "packets_out",
        "bytes_in",
        "bytes_out",
        "user_data",
    )

    #: Bytes a comparably configured kernel PCB occupies (4.3BSD's
    #: inpcb+tcpcb pair is a few hundred bytes); used by the memory
    #: cost model, not by any algorithmic decision.
    APPROX_SIZE_BYTES = 384

    def __init__(
        self,
        four_tuple: FourTuple,
        *,
        state: str = "ESTABLISHED",
        mss: int = 536,
    ):
        self.four_tuple = four_tuple
        self.state = state
        self.snd_una = 0
        self.snd_nxt = 0
        self.snd_wnd = 65535
        self.rcv_nxt = 0
        self.rcv_wnd = 65535
        self.iss = 0
        self.irs = 0
        self.mss = mss
        self.srtt: Optional[float] = None
        self.rttvar: Optional[float] = None
        self.rto = 1.0
        self.packets_in = 0
        self.packets_out = 0
        self.bytes_in = 0
        self.bytes_out = 0
        #: Free slot for the owning application (the workload layer
        #: stores its per-user handle here).
        self.user_data = None

    def matches(self, tup: FourTuple) -> bool:
        """The comparison every list scan performs, one per PCB examined."""
        return self.four_tuple == tup

    def note_receive(self, nbytes: int) -> None:
        """Bump inbound counters (called by the stack on delivery)."""
        self.packets_in += 1
        self.bytes_in += nbytes

    def note_send(self, nbytes: int) -> None:
        """Bump outbound counters."""
        self.packets_out += 1
        self.bytes_out += nbytes

    def __repr__(self) -> str:
        return f"PCB({self.four_tuple}, state={self.state})"
