"""Crowcroft's move-to-front list (paper Section 3.2).

"Jon Crowcroft proposed maintaining a linear list with a 'move to
front' heuristic; namely, when a PCB is found, it is moved to the front
of the linear list."  (Independently suggested by Gary Delp.)

Under TPC/A the heuristic trades a slightly *longer* scan for the
transaction-entry packet (other users' PCBs pile up in front during the
~10 s think time; Eq. 5 gives 1019-1150 preceding PCBs for response
times 0.2-2.0 s, vs. BSD's 1001) for a much shorter scan on the
response's transport-level acknowledgement (only PCBs touched during
the response-time window precede, N(2R) = 78-659).  Overall: 549-904,
a significant win over BSD -- but still an order of magnitude worse
than hashing.

Worst case (Section 3.2): *deterministic* think times, e.g. a central
server polling point-of-sale terminals round-robin, where every arrival
scans the entire list.  ``workload.polling`` reproduces this.
"""

from __future__ import annotations

from typing import Iterator, List

from ..packet.addresses import FourTuple
from .base import DemuxAlgorithm, DuplicateConnectionError, LookupResult
from .pcb import PCB
from .stats import PacketKind

__all__ = ["MoveToFrontDemux"]


class MoveToFrontDemux(DemuxAlgorithm):
    """Linear PCB list with move-to-front on every successful lookup."""

    name = "mtf"

    def __init__(self) -> None:
        super().__init__()
        self._pcbs: List[PCB] = []
        self._tuples = set()

    def _insert(self, pcb: PCB) -> None:
        if pcb.four_tuple in self._tuples:
            raise DuplicateConnectionError(f"duplicate connection {pcb.four_tuple}")
        self._pcbs.insert(0, pcb)
        self._tuples.add(pcb.four_tuple)

    def _remove(self, tup: FourTuple) -> PCB:
        if tup not in self._tuples:
            raise KeyError(tup)
        for i, pcb in enumerate(self._pcbs):
            if pcb.four_tuple == tup:
                del self._pcbs[i]
                self._tuples.discard(tup)
                return pcb
        raise KeyError(tup)

    def _lookup(self, tup: FourTuple, kind: PacketKind) -> LookupResult:
        pcbs = self._pcbs
        for i, pcb in enumerate(pcbs):
            if pcb.four_tuple == tup:
                if i:
                    del pcbs[i]
                    pcbs.insert(0, pcb)
                return LookupResult(pcb, i + 1, cache_hit=False, kind=kind)
        return LookupResult(None, len(pcbs), cache_hit=False, kind=kind)

    def position_of(self, tup: FourTuple) -> int:
        """Current 0-based list position of ``tup`` (no stats, no MTF).

        Lets tests and experiments observe list order without the
        Heisenberg effect of a real lookup.  Raises ``KeyError`` if the
        connection is absent.
        """
        for i, pcb in enumerate(self._pcbs):
            if pcb.four_tuple == tup:
                return i
        raise KeyError(tup)

    def __len__(self) -> int:
        return len(self._pcbs)

    def __iter__(self) -> Iterator[PCB]:
        return iter(self._pcbs)
