"""Factory registry for demultiplexing algorithms.

Experiments, the CLI, and the simulation harness construct algorithms
by name so that a sweep over {bsd, mtf, sendrecv, sequent, ...} is a
loop over strings.  Parameterized variants encode their parameters in
the spec string: ``"sequent:h=51,hash=crc16"``.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable

from ..hashing.functions import get_hash_function
from .base import DemuxAlgorithm
from .bsd import BSDDemux
from .connection_id import ConnectionIdDemux
from .hashed_mtf import HashedMTFDemux
from .linear import LinearDemux
from .mtf import MoveToFrontDemux
from .multicache import MultiCacheDemux
from .sendrecv import SendRecvDemux
from .sequent import DEFAULT_HASH_CHAINS, SequentDemux

__all__ = ["ALGORITHMS", "available_algorithms", "make_algorithm"]

AlgorithmFactory = Callable[..., DemuxAlgorithm]

ALGORITHMS: Dict[str, AlgorithmFactory] = {
    "linear": LinearDemux,
    "bsd": BSDDemux,
    "mtf": MoveToFrontDemux,
    "multicache": MultiCacheDemux,
    "sendrecv": SendRecvDemux,
    "sequent": SequentDemux,
    "hashed_mtf": HashedMTFDemux,
    "connection_id": ConnectionIdDemux,
}


def available_algorithms() -> Iterable[str]:
    """Registered algorithm names, sorted."""
    return sorted(ALGORITHMS)


def _parse_params(text: str) -> Dict[str, str]:
    params: Dict[str, str] = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ValueError(f"malformed parameter {part!r} (expected key=value)")
        key, _, value = part.partition("=")
        params[key.strip()] = value.strip()
    return params


def make_algorithm(spec: str) -> DemuxAlgorithm:
    """Build an algorithm from a spec string.

    Examples::

        make_algorithm("bsd")
        make_algorithm("sequent:h=51")
        make_algorithm("sequent:h=19,hash=xor_fold")
        make_algorithm("hashed_mtf:h=19,cache=no")
        make_algorithm("multicache:k=16")
        make_algorithm("sharded-sequent:shards=8,steer=hash,h=19")

    A ``sharded-`` prefix wraps any registered algorithm in a
    :class:`repro.smp.ShardedDemux` of ``shards`` instances (default
    8) behind a ``steer`` policy (``hash``, ``rr``, ``sticky``;
    default ``hash``); remaining parameters go to the inner algorithm.
    Existing CLI paths (``compare``, ``simulate``, ``fault-matrix``)
    exercise sharded variants with no new plumbing.

    Raises ``ValueError`` for unknown names or parameters.
    """
    name, _, param_text = spec.partition(":")
    name = name.strip().lower()
    if name.startswith("sharded-"):
        return _make_sharded(name[len("sharded-"):], param_text)
    if name not in ALGORITHMS:
        known = ", ".join(available_algorithms())
        raise ValueError(f"unknown algorithm {name!r}; known: {known}")
    params = _parse_params(param_text)

    if name in ("sequent", "hashed_mtf"):
        kwargs = {}
        nchains = DEFAULT_HASH_CHAINS
        if "h" in params:
            nchains = int(params.pop("h"))
        if "hash" in params:
            kwargs["hash_function"] = get_hash_function(params.pop("hash"))
        if name == "sequent" and "overload" in params:
            kwargs["overload_threshold"] = int(params.pop("overload"))
        if name == "hashed_mtf" and "cache" in params:
            kwargs["per_chain_cache"] = params.pop("cache").lower() in (
                "1",
                "yes",
                "true",
            )
        _reject_leftovers(name, params)
        return ALGORITHMS[name](nchains, **kwargs)

    if name == "connection_id":
        kwargs = {}
        if "max" in params:
            kwargs["max_connections"] = int(params.pop("max"))
        _reject_leftovers(name, params)
        return ConnectionIdDemux(**kwargs)

    if name == "multicache":
        kwargs = {}
        if "k" in params:
            kwargs["cache_size"] = int(params.pop("k"))
        _reject_leftovers(name, params)
        return MultiCacheDemux(**kwargs)

    _reject_leftovers(name, params)
    return ALGORITHMS[name]()


def _make_sharded(inner_name: str, param_text: str) -> DemuxAlgorithm:
    """Build ``sharded-<algo>``: pop shards/steer, forward the rest.

    Imported lazily: ``repro.smp`` sits above ``repro.core`` in the
    layering (it imports the base classes from here), so a module-level
    import would be circular.
    """
    from ..smp.sharded import ShardedDemux
    from ..smp.steering import make_steering

    params = _parse_params(param_text)
    nshards = int(params.pop("shards", "8"))
    steering = make_steering(params.pop("steer", "hash"))
    inner_params = ",".join(f"{key}={value}" for key, value in params.items())
    inner_spec = f"{inner_name}:{inner_params}" if inner_params else inner_name
    # Build one inner instance eagerly so a bad inner spec fails here,
    # not from inside the shard factory.
    make_algorithm(inner_spec)
    return ShardedDemux(
        lambda: make_algorithm(inner_spec), nshards, steering
    )


def _reject_leftovers(name: str, params: Dict[str, str]) -> None:
    if params:
        unknown = ", ".join(sorted(params))
        raise ValueError(f"unknown parameter(s) for {name!r}: {unknown}")
