"""Factory registry for demultiplexing algorithms.

Experiments, the CLI, and the simulation harness construct algorithms
by name so that a sweep over {bsd, mtf, sendrecv, sequent, ...} is a
loop over strings.  Parameterized variants encode their parameters in
the spec string: ``"sequent:h=51,hash=crc16"``.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable

from ..hashing.functions import get_hash_function
from .base import DemuxAlgorithm
from .bsd import BSDDemux
from .connection_id import ConnectionIdDemux
from .hashed_mtf import HashedMTFDemux
from .linear import LinearDemux
from .mtf import MoveToFrontDemux
from .multicache import MultiCacheDemux
from .sendrecv import SendRecvDemux
from .sequent import DEFAULT_HASH_CHAINS, SequentDemux

__all__ = [
    "ACCEPTED_OPTIONS",
    "ALGORITHMS",
    "available_algorithms",
    "make_algorithm",
]

AlgorithmFactory = Callable[..., DemuxAlgorithm]

ALGORITHMS: Dict[str, AlgorithmFactory] = {
    "linear": LinearDemux,
    "bsd": BSDDemux,
    "mtf": MoveToFrontDemux,
    "multicache": MultiCacheDemux,
    "sendrecv": SendRecvDemux,
    "sequent": SequentDemux,
    "hashed_mtf": HashedMTFDemux,
    "connection_id": ConnectionIdDemux,
}

#: Spec options each algorithm family accepts, keyed by the reference
#: name (``fast-*`` twins accept the same options as their reference).
#: Unknown options raise a ``ValueError`` naming both the offender and
#: this list -- a silently ignored typo (``sequent:chains=51``) would
#: run the wrong experiment.
ACCEPTED_OPTIONS: Dict[str, tuple] = {
    "linear": (),
    "bsd": (),
    "mtf": (),
    "multicache": ("k",),
    "sendrecv": (),
    "sequent": ("h", "hash", "overload"),
    "hashed_mtf": ("h", "hash", "cache"),
    "connection_id": ("max",),
    "cuckoo": ("buckets", "slots", "stash", "kick"),
}


#: Reference names with a ``fast-`` twin in :mod:`repro.fastpath`.
#: Kept as a plain tuple (not an import) to preserve the layering:
#: ``repro.fastpath`` imports from ``repro.core``, never the reverse
#: at module scope.
FAST_VARIANT_NAMES = ("linear", "bsd", "mtf", "sequent", "hashed_mtf")

#: Fast-path-only structures with no reference twin (the paper has no
#: O(1) structure to mirror); reachable only via the ``fast-`` prefix:
#: ``fast-cuckoo:buckets=64,slots=4,stash=8,kick=64``.
FAST_ONLY_NAMES = ("cuckoo",)


def available_algorithms() -> Iterable[str]:
    """Registered algorithm names (including ``fast-`` twins), sorted."""
    names = list(ALGORITHMS)
    names.extend(f"fast-{name}" for name in FAST_VARIANT_NAMES)
    names.extend(f"fast-{name}" for name in FAST_ONLY_NAMES)
    return sorted(names)


def _parse_params(text: str) -> Dict[str, str]:
    params: Dict[str, str] = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ValueError(f"malformed parameter {part!r} (expected key=value)")
        key, _, value = part.partition("=")
        params[key.strip()] = value.strip()
    return params


def make_algorithm(spec: str) -> DemuxAlgorithm:
    """Build an algorithm from a spec string.

    Examples::

        make_algorithm("bsd")
        make_algorithm("sequent:h=51")
        make_algorithm("sequent:h=19,hash=xor_fold")
        make_algorithm("hashed_mtf:h=19,cache=no")
        make_algorithm("multicache:k=16")
        make_algorithm("fast-sequent:h=19,overload=64")
        make_algorithm("fast-cuckoo:buckets=64,slots=4,stash=8")
        make_algorithm("sharded-sequent:shards=8,steer=hash,h=19")
        make_algorithm("sharded-fast-sequent:shards=8,h=19")

    A ``sharded-`` prefix wraps any registered algorithm in a
    :class:`repro.smp.ShardedDemux` of ``shards`` instances (default
    8) behind a ``steer`` policy (``hash``, ``rr``, ``sticky``;
    default ``hash``); remaining parameters go to the inner algorithm.
    Existing CLI paths (``compare``, ``simulate``, ``fault-matrix``)
    exercise sharded variants with no new plumbing.

    A ``fast-`` prefix names the array-backed twin from
    :mod:`repro.fastpath` -- decision-identical, same options as the
    reference it mirrors.  The prefixes compose:
    ``sharded-fast-sequent:shards=8`` shards the fast structure.

    Raises ``ValueError`` for unknown names or parameters; the
    parameter error names the offending option *and* the options the
    algorithm accepts.
    """
    name, _, param_text = spec.partition(":")
    name = name.strip().lower()
    if name.startswith("sharded-"):
        algorithm = _make_sharded(name[len("sharded-"):], param_text)
    elif name.startswith("fast-"):
        algorithm = _make_fast(name[len("fast-"):], param_text)
    elif name not in ALGORITHMS:
        known = ", ".join(available_algorithms())
        raise ValueError(
            f"unknown algorithm {name!r}; known: {known}"
            f" (plus 'fast-' and 'sharded-' prefixed variants)"
        )
    else:
        algorithm = _construct(
            name, _parse_params(param_text), ALGORITHMS[name]
        )
    # Stamp the spec so checkpoint/restore (repro.recovery) can rebuild
    # an equivalent instance without the caller re-threading the string.
    algorithm.spec = spec.strip()
    return algorithm


def _construct(
    name: str,
    params: Dict[str, str],
    factory: AlgorithmFactory,
    *,
    display: str = "",
) -> DemuxAlgorithm:
    """Apply ``name``'s option conventions to ``factory``.

    ``display`` is the user-facing spec name for error messages (so a
    bad ``fast-sequent`` option is reported against ``fast-sequent``,
    not ``sequent``); option vocabulary is always the reference
    ``name``'s.
    """
    display = display or name

    if name in ("sequent", "hashed_mtf"):
        kwargs = {}
        nchains = DEFAULT_HASH_CHAINS
        if "h" in params:
            nchains = int(params.pop("h"))
        if "hash" in params:
            kwargs["hash_function"] = get_hash_function(params.pop("hash"))
        if name == "sequent" and "overload" in params:
            kwargs["overload_threshold"] = int(params.pop("overload"))
        if name == "hashed_mtf" and "cache" in params:
            kwargs["per_chain_cache"] = params.pop("cache").lower() in (
                "1",
                "yes",
                "true",
            )
        _reject_leftovers(name, params, display=display)
        return factory(nchains, **kwargs)

    if name == "connection_id":
        kwargs = {}
        if "max" in params:
            kwargs["max_connections"] = int(params.pop("max"))
        _reject_leftovers(name, params, display=display)
        return factory(**kwargs)

    if name == "multicache":
        kwargs = {}
        if "k" in params:
            kwargs["cache_size"] = int(params.pop("k"))
        _reject_leftovers(name, params, display=display)
        return factory(**kwargs)

    if name == "cuckoo":
        kwargs = {}
        for option in ("buckets", "slots", "stash", "kick"):
            if option in params:
                kwargs[option] = int(params.pop(option))
        _reject_leftovers(name, params, display=display)
        return factory(**kwargs)

    _reject_leftovers(name, params, display=display)
    return factory()


def _make_fast(inner_name: str, param_text: str) -> DemuxAlgorithm:
    """Build ``fast-<algo>`` from :mod:`repro.fastpath`.

    Imported lazily for the same layering reason as ``sharded-``:
    ``repro.fastpath`` sits above ``repro.core`` and imports the base
    classes from here.
    """
    from ..fastpath.algorithms import FAST_ALGORITHMS

    inner_name = inner_name.strip().lower()
    if inner_name not in FAST_ALGORITHMS:
        known = ", ".join(f"fast-{name}" for name in sorted(FAST_ALGORITHMS))
        raise ValueError(
            f"unknown fast algorithm 'fast-{inner_name}'; known: {known}"
        )
    return _construct(
        inner_name,
        _parse_params(param_text),
        FAST_ALGORITHMS[inner_name],
        display=f"fast-{inner_name}",
    )


def _make_sharded(inner_name: str, param_text: str) -> DemuxAlgorithm:
    """Build ``sharded-<algo>``: pop shards/steer, forward the rest.

    Imported lazily: ``repro.smp`` sits above ``repro.core`` in the
    layering (it imports the base classes from here), so a module-level
    import would be circular.
    """
    from ..smp.sharded import ShardedDemux
    from ..smp.steering import make_steering

    params = _parse_params(param_text)
    nshards = int(params.pop("shards", "8"))
    steering = make_steering(params.pop("steer", "hash"))
    # ``workers=N`` serves the shards from N worker processes over
    # shared memory (repro.smp.shm); 0 (the default) stays in-process.
    workers = int(params.pop("workers", "0"))
    inner_params = ",".join(f"{key}={value}" for key, value in params.items())
    inner_spec = f"{inner_name}:{inner_params}" if inner_params else inner_name
    # Build one inner instance eagerly so a bad inner spec fails here,
    # not from inside the shard factory.
    make_algorithm(inner_spec)
    return ShardedDemux(
        lambda: make_algorithm(inner_spec),
        nshards,
        steering,
        inner_spec=inner_spec,
        workers=workers or None,
    )


def _reject_leftovers(
    name: str, params: Dict[str, str], *, display: str = ""
) -> None:
    if params:
        display = display or name
        accepted = ACCEPTED_OPTIONS.get(name, ())
        accepted_text = ", ".join(accepted) if accepted else "none"
        unknown = ", ".join(sorted(params))
        raise ValueError(
            f"unknown parameter(s) for {display!r}: {unknown};"
            f" {display!r} accepts: {accepted_text}"
        )
