"""The Sequent algorithm: hash chains, each with its own cache (§3.4).

"Sequent's algorithm maintains a simple linear list for each of several
hash chains, each containing a single-entry cache containing the PCB
last found on that hash chain."  (A similar approach was suggested on
the tcp-ip list by Lance Vissner.)

With ``H`` chains the cache hit rate rises from 1/N to H/N, and -- far
more importantly, per the paper's miss-penalty-over-hit-ratio argument
-- a miss scans only the ~N/H PCBs of one chain:

    C_SQNT(N, H) ~ 1 + (N-H)/N * (N/H + 1)/2  = C_BSD(N/H)      (Eq. 19)

with a refinement (Eqs. 20-22) crediting the per-chain cache for
response-time intervals in which the chain receives no other traffic.
For the installation-default H=19 at N=2000, R=0.2 s: 53.0 expected
PCBs vs. BSD's 1,001 -- the paper's order-of-magnitude headline.

The hash function is pluggable (default CRC-32C over the 96-bit key);
``repro.hashing.analysis`` quantifies what a skewed hash costs.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

from ..hashing.functions import HashFunction, default_hash
from ..packet.addresses import FourTuple
from .base import DemuxAlgorithm, DuplicateConnectionError, LookupResult
from .pcb import PCB
from .stats import PacketKind

__all__ = ["SequentDemux", "DEFAULT_HASH_CHAINS"]

#: "the installation default of 19 hash chains" (Section 3.4).
DEFAULT_HASH_CHAINS = 19


class _Chain:
    """One hash chain: a linear PCB list plus a one-entry cache."""

    __slots__ = ("pcbs", "cache")

    def __init__(self) -> None:
        self.pcbs: List[PCB] = []
        self.cache: Optional[PCB] = None


class SequentDemux(DemuxAlgorithm):
    """H hash chains, each a cached linear list."""

    name = "sequent"

    def __init__(
        self,
        nchains: int = DEFAULT_HASH_CHAINS,
        hash_function: HashFunction = default_hash,
        *,
        overload_threshold: Optional[int] = None,
    ):
        super().__init__()
        if nchains <= 0:
            raise ValueError(f"nchains must be positive, got {nchains}")
        if overload_threshold is not None and overload_threshold < 1:
            raise ValueError(
                f"overload_threshold must be >= 1, got {overload_threshold}"
            )
        self._nchains = nchains
        self._hash = hash_function
        self._chains = [_Chain() for _ in range(nchains)]
        self._tuples = set()
        #: Chain population beyond which an insert counts as an
        #: overload event -- the adversarial-load signal (a skewed or
        #: attacked key distribution piling PCBs onto few chains).
        #: ``None`` disables detection.
        self._overload_threshold = overload_threshold
        #: Inserts that left a chain above the threshold.
        self.chain_overload_events = 0

    @property
    def nchains(self) -> int:
        """H, the number of hash chains."""
        return self._nchains

    @property
    def overload_threshold(self) -> Optional[int]:
        return self._overload_threshold

    def chain_lengths(self) -> Sequence[int]:
        """Current per-chain PCB counts (for balance reporting)."""
        return tuple(len(chain.pcbs) for chain in self._chains)

    def overloaded_chains(self) -> Sequence[int]:
        """Indices of chains currently above the overload threshold."""
        if self._overload_threshold is None:
            return ()
        return tuple(
            index
            for index, chain in enumerate(self._chains)
            if len(chain.pcbs) > self._overload_threshold
        )

    def chain_of(self, tup: FourTuple) -> int:
        """Which chain ``tup`` hashes to."""
        return self._hash(tup, self._nchains)

    def _insert(self, pcb: PCB) -> None:
        if pcb.four_tuple in self._tuples:
            raise DuplicateConnectionError(f"duplicate connection {pcb.four_tuple}")
        chain = self._chains[self.chain_of(pcb.four_tuple)]
        chain.pcbs.insert(0, pcb)
        self._tuples.add(pcb.four_tuple)
        if (
            self._overload_threshold is not None
            and len(chain.pcbs) > self._overload_threshold
        ):
            self.chain_overload_events += 1

    def _remove(self, tup: FourTuple) -> PCB:
        if tup not in self._tuples:
            raise KeyError(tup)
        chain = self._chains[self.chain_of(tup)]
        for i, pcb in enumerate(chain.pcbs):
            if pcb.four_tuple == tup:
                del chain.pcbs[i]
                self._tuples.discard(tup)
                if chain.cache is pcb:
                    chain.cache = None
                return pcb
        raise KeyError(tup)

    def _lookup(self, tup: FourTuple, kind: PacketKind) -> LookupResult:
        chain = self._chains[self.chain_of(tup)]
        examined = 0
        if chain.cache is not None:
            examined += 1
            if chain.cache.four_tuple == tup:
                return LookupResult(chain.cache, examined, cache_hit=True, kind=kind)
        for pcb in chain.pcbs:
            examined += 1
            if pcb.four_tuple == tup:
                chain.cache = pcb
                return LookupResult(pcb, examined, cache_hit=False, kind=kind)
        return LookupResult(None, examined, cache_hit=False, kind=kind)

    def __len__(self) -> int:
        return len(self._tuples)

    def __iter__(self) -> Iterator[PCB]:
        for chain in self._chains:
            yield from chain.pcbs

    def describe(self) -> str:
        lengths = self.chain_lengths()
        longest = max(lengths) if lengths else 0
        return (
            f"{self.name} (H={self._nchains}, {len(self)} PCBs,"
            f" longest chain {longest})"
        )
