"""Connection-ID direct indexing (the protocol-change alternative, §3.5).

TP4, X.25, and XTP let the endpoints negotiate small-integer connection
IDs carried in every data packet, "typically used to directly index an
array of PCBs, thus completely eliminating the need to search".  The
paper's punchline is that cheap hashing *removes the motivation* for
adding such IDs to TCP; this structure exists so experiments can show
the remaining gap (exactly 1 PCB examined, always) next to what Sequent
hashing achieves without any protocol change.

IDs are assigned at insert (connection setup = the negotiation) from a
free list, so the array stays dense under churn.  Lookup accepts either
a connection ID (the real TP4-style fast path) or a four-tuple (the
setup-time path, which must still search -- modelled here as a
dictionary probe costing one examined PCB, an idealization noted in
DESIGN.md).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from ..packet.addresses import FourTuple
from .base import DemuxAlgorithm, DemuxError, DuplicateConnectionError, LookupResult
from .pcb import PCB
from .stats import PacketKind

__all__ = ["ConnectionIdDemux"]


class ConnectionIdDemux(DemuxAlgorithm):
    """Dense PCB array indexed by negotiated connection ID."""

    name = "connection_id"

    def __init__(self, max_connections: int = 1 << 16):
        super().__init__()
        if max_connections <= 0:
            raise ValueError(f"max_connections must be positive: {max_connections}")
        self._max = max_connections
        self._slots: List[Optional[PCB]] = []
        self._free: List[int] = []
        self._ids: Dict[FourTuple, int] = {}

    @property
    def max_connections(self) -> int:
        return self._max

    def connection_id(self, tup: FourTuple) -> int:
        """The negotiated ID for ``tup`` (``KeyError`` if absent)."""
        return self._ids[tup]

    def _insert(self, pcb: PCB) -> None:
        if pcb.four_tuple in self._ids:
            raise DuplicateConnectionError(f"duplicate connection {pcb.four_tuple}")
        if self._free:
            cid = self._free.pop()
            self._slots[cid] = pcb
        else:
            if len(self._slots) >= self._max:
                raise DemuxError(
                    f"connection-ID space exhausted ({self._max} connections)"
                )
            cid = len(self._slots)
            self._slots.append(pcb)
        self._ids[pcb.four_tuple] = cid

    def _remove(self, tup: FourTuple) -> PCB:
        cid = self._ids.pop(tup)  # KeyError propagates per the interface
        pcb = self._slots[cid]
        assert pcb is not None
        self._slots[cid] = None
        self._free.append(cid)
        return pcb

    def lookup_by_id(
        self, cid: int, kind: PacketKind = PacketKind.DATA
    ) -> LookupResult:
        """The TP4/X.25/XTP fast path: one array index, one PCB examined."""
        if 0 <= cid < len(self._slots):
            pcb = self._slots[cid]
        else:
            pcb = None
        result = LookupResult(pcb, examined=1, cache_hit=pcb is not None, kind=kind)
        self._finish_lookup(pcb.four_tuple if pcb is not None else None, result)
        return result

    def _lookup(self, tup: FourTuple, kind: PacketKind) -> LookupResult:
        cid = self._ids.get(tup)
        if cid is None:
            return LookupResult(None, examined=1, cache_hit=False, kind=kind)
        pcb = self._slots[cid]
        return LookupResult(pcb, examined=1, cache_hit=True, kind=kind)

    def __len__(self) -> int:
        return len(self._ids)

    def __iter__(self) -> Iterator[PCB]:
        return (pcb for pcb in self._slots if pcb is not None)
