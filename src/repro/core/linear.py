"""Plain linear-list PCB lookup (the pre-cache baseline).

"A simple PCB management approach uses a simple, linear linked list of
PCBs.  This approach was used in the initial BSD system" (paper,
Section 1).  No cache at all: every lookup scans from the head.  This
is the baseline the 4.3-Reno single-entry cache was added to, and it is
useful experimentally because its cost is exactly the scan length with
no cache noise.
"""

from __future__ import annotations

from typing import Iterator, List

from ..packet.addresses import FourTuple
from .base import DemuxAlgorithm, DuplicateConnectionError, LookupResult
from .pcb import PCB
from .stats import PacketKind

__all__ = ["LinearDemux"]


class LinearDemux(DemuxAlgorithm):
    """Uncached linear scan over one list of PCBs.

    Expected cost for a uniformly chosen target: ``(N+1)/2``.
    """

    name = "linear"

    def __init__(self) -> None:
        super().__init__()
        self._pcbs: List[PCB] = []
        self._tuples = set()

    def _insert(self, pcb: PCB) -> None:
        if pcb.four_tuple in self._tuples:
            raise DuplicateConnectionError(f"duplicate connection {pcb.four_tuple}")
        # Historical BSD behaviour: new PCBs go at the head.
        self._pcbs.insert(0, pcb)
        self._tuples.add(pcb.four_tuple)

    def _remove(self, tup: FourTuple) -> PCB:
        if tup not in self._tuples:
            raise KeyError(tup)
        for i, pcb in enumerate(self._pcbs):
            if pcb.four_tuple == tup:
                del self._pcbs[i]
                self._tuples.discard(tup)
                return pcb
        raise KeyError(tup)  # unreachable if _tuples is consistent

    def _lookup(self, tup: FourTuple, kind: PacketKind) -> LookupResult:
        examined = 0
        for pcb in self._pcbs:
            examined += 1
            if pcb.four_tuple == tup:
                return LookupResult(pcb, examined, cache_hit=False, kind=kind)
        return LookupResult(None, examined, cache_hit=False, kind=kind)

    def __len__(self) -> int:
        return len(self._pcbs)

    def __iter__(self) -> Iterator[PCB]:
        return iter(self._pcbs)
