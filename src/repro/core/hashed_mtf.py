"""Hash chains with move-to-front ordering (the Section 3.5 combination).

"One could imagine combining move-to-front with hash chains.  However,
better results can be obtained simply by increasing the number of hash
chains" -- MTF buys at best a factor of two inside a chain, while going
from H=19 to H=100 buys a factor of five (53 -> <9 PCBs).

This structure exists to *measure* that claim: each chain is ordered
move-to-front, with an optional per-chain cache in front (giving the
full Sequent+MTF hybrid).  ``benchmarks/bench_text_combination.py``
runs it against plain Sequent at various H.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

from ..hashing.functions import HashFunction, default_hash
from ..packet.addresses import FourTuple
from .base import DemuxAlgorithm, DuplicateConnectionError, LookupResult
from .pcb import PCB
from .sequent import DEFAULT_HASH_CHAINS
from .stats import PacketKind

__all__ = ["HashedMTFDemux"]


class _MTFChain:
    __slots__ = ("pcbs", "cache")

    def __init__(self) -> None:
        self.pcbs: List[PCB] = []
        self.cache: Optional[PCB] = None


class HashedMTFDemux(DemuxAlgorithm):
    """H hash chains, each a move-to-front list, optionally cached."""

    name = "hashed_mtf"

    def __init__(
        self,
        nchains: int = DEFAULT_HASH_CHAINS,
        hash_function: HashFunction = default_hash,
        *,
        per_chain_cache: bool = True,
    ):
        super().__init__()
        if nchains <= 0:
            raise ValueError(f"nchains must be positive, got {nchains}")
        self._nchains = nchains
        self._hash = hash_function
        self._per_chain_cache = per_chain_cache
        self._chains = [_MTFChain() for _ in range(nchains)]
        self._tuples = set()

    @property
    def nchains(self) -> int:
        return self._nchains

    def chain_lengths(self) -> Sequence[int]:
        return tuple(len(chain.pcbs) for chain in self._chains)

    def chain_of(self, tup: FourTuple) -> int:
        return self._hash(tup, self._nchains)

    def _insert(self, pcb: PCB) -> None:
        if pcb.four_tuple in self._tuples:
            raise DuplicateConnectionError(f"duplicate connection {pcb.four_tuple}")
        self._chains[self.chain_of(pcb.four_tuple)].pcbs.insert(0, pcb)
        self._tuples.add(pcb.four_tuple)

    def _remove(self, tup: FourTuple) -> PCB:
        if tup not in self._tuples:
            raise KeyError(tup)
        chain = self._chains[self.chain_of(tup)]
        for i, pcb in enumerate(chain.pcbs):
            if pcb.four_tuple == tup:
                del chain.pcbs[i]
                self._tuples.discard(tup)
                if chain.cache is pcb:
                    chain.cache = None
                return pcb
        raise KeyError(tup)

    def _lookup(self, tup: FourTuple, kind: PacketKind) -> LookupResult:
        chain = self._chains[self.chain_of(tup)]
        examined = 0
        if self._per_chain_cache and chain.cache is not None:
            examined += 1
            if chain.cache.four_tuple == tup:
                return LookupResult(chain.cache, examined, cache_hit=True, kind=kind)
        pcbs = chain.pcbs
        for i, pcb in enumerate(pcbs):
            examined += 1
            if pcb.four_tuple == tup:
                if i:
                    del pcbs[i]
                    pcbs.insert(0, pcb)
                if self._per_chain_cache:
                    chain.cache = pcb
                return LookupResult(pcb, examined, cache_hit=False, kind=kind)
        return LookupResult(None, examined, cache_hit=False, kind=kind)

    def __len__(self) -> int:
        return len(self._tuples)

    def __iter__(self) -> Iterator[PCB]:
        for chain in self._chains:
            yield from chain.pcbs

    def describe(self) -> str:
        cache = "cached" if self._per_chain_cache else "uncached"
        return f"{self.name} (H={self._nchains}, {cache}, {len(self)} PCBs)"
