"""Partridge and Pink's last-sent/last-received cache (Section 3.3).

"Craig Partridge and Stephen Pink proposed modifying the BSD algorithm
so that it caches the PCB corresponding to the last packet sent as well
as the last packet received", motivated by Mogul's locality
measurements.

Probe order is kind-dependent (footnote 5 of the paper): data packets
examine the *receive* cache first, pure acknowledgements the *send*
cache first, because the response the host just sent is the segment an
inbound ack acknowledges.  The miss cost is therefore
``2 + (N+1)/2 = (N+5)/2`` -- both cache slots plus the average scan --
matching Eqs. 9-16.

The paper finds the scheme helps for small user populations but decays
to BSD-plus-overhead as N grows (Figures 13/14): it still relies on
back-to-back locality, which large TPC/A populations destroy.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from ..packet.addresses import FourTuple
from .base import DemuxAlgorithm, DuplicateConnectionError, LookupResult
from .pcb import PCB
from .stats import PacketKind

__all__ = ["SendRecvDemux"]


class SendRecvDemux(DemuxAlgorithm):
    """BSD list with separate last-sent and last-received cache slots."""

    name = "sendrecv"

    def __init__(self) -> None:
        super().__init__()
        self._pcbs: List[PCB] = []
        self._tuples = set()
        self._recv_cache: Optional[PCB] = None
        self._send_cache: Optional[PCB] = None

    @property
    def recv_cached_pcb(self) -> Optional[PCB]:
        return self._recv_cache

    @property
    def send_cached_pcb(self) -> Optional[PCB]:
        return self._send_cache

    def _insert(self, pcb: PCB) -> None:
        if pcb.four_tuple in self._tuples:
            raise DuplicateConnectionError(f"duplicate connection {pcb.four_tuple}")
        self._pcbs.insert(0, pcb)
        self._tuples.add(pcb.four_tuple)

    def _remove(self, tup: FourTuple) -> PCB:
        if tup not in self._tuples:
            raise KeyError(tup)
        for i, pcb in enumerate(self._pcbs):
            if pcb.four_tuple == tup:
                del self._pcbs[i]
                self._tuples.discard(tup)
                if self._recv_cache is pcb:
                    self._recv_cache = None
                if self._send_cache is pcb:
                    self._send_cache = None
                return pcb
        raise KeyError(tup)

    def _note_send(self, pcb: PCB) -> None:
        """Update the send-side cache slot; free, per the paper's model."""
        self._send_cache = pcb

    def _lookup(self, tup: FourTuple, kind: PacketKind) -> LookupResult:
        if kind is PacketKind.ACK:
            probes = (self._send_cache, self._recv_cache)
        else:
            probes = (self._recv_cache, self._send_cache)
        examined = 0
        seen_first: Optional[PCB] = None
        for slot in probes:
            # Probing the same PCB twice costs one fetch, not two: the
            # second slot holding an identical pointer is a register
            # compare.  (The paper's "both sides of the cache will hold
            # Stephen's PCB" hit costs 1, per Section 3.3.1.)
            if slot is None or slot is seen_first:
                continue
            examined += 1
            seen_first = seen_first or slot
            if slot.four_tuple == tup:
                self._recv_cache = slot
                return LookupResult(slot, examined, cache_hit=True, kind=kind)
        for pcb in self._pcbs:
            examined += 1
            if pcb.four_tuple == tup:
                self._recv_cache = pcb
                return LookupResult(pcb, examined, cache_hit=False, kind=kind)
        return LookupResult(None, examined, cache_hit=False, kind=kind)

    def __len__(self) -> int:
        return len(self._pcbs)

    def __iter__(self) -> Iterator[PCB]:
        return iter(self._pcbs)
