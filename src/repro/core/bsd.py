"""The BSD algorithm: linear list plus a one-PCB "last found" cache.

Paper Section 3.1.  "BSD searches a simple linear list of PCBs, with a
single-entry cache containing the PCB last found" -- the 4.3-Reno
optimization Van Jacobson added for bulk transfers, where packet trains
make consecutive packets hit the same PCB.

Cost model (Eq. 1):  hit = 1 examined;  miss = 1 (the stale cache
entry) + the list scan, expected ``(N+1)/2``, hence

    C_BSD(N) = 1 + (N^2 - 1) / 2N       ->  ~N/2 for large N.

Under TPC/A with N=2000 this is 1,001 PCBs per packet: the cache hit
rate is 1/N and "the cache is clearly providing little help".
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from ..packet.addresses import FourTuple
from .base import DemuxAlgorithm, DuplicateConnectionError, LookupResult
from .pcb import PCB
from .stats import PacketKind

__all__ = ["BSDDemux"]


class BSDDemux(DemuxAlgorithm):
    """Linear PCB list fronted by a single-entry last-found cache."""

    name = "bsd"

    def __init__(self) -> None:
        super().__init__()
        self._pcbs: List[PCB] = []
        self._tuples = set()
        self._cache: Optional[PCB] = None

    @property
    def cached_pcb(self) -> Optional[PCB]:
        """The PCB currently in the one-entry cache (for inspection)."""
        return self._cache

    def _insert(self, pcb: PCB) -> None:
        if pcb.four_tuple in self._tuples:
            raise DuplicateConnectionError(f"duplicate connection {pcb.four_tuple}")
        self._pcbs.insert(0, pcb)
        self._tuples.add(pcb.four_tuple)

    def _remove(self, tup: FourTuple) -> PCB:
        if tup not in self._tuples:
            raise KeyError(tup)
        for i, pcb in enumerate(self._pcbs):
            if pcb.four_tuple == tup:
                del self._pcbs[i]
                self._tuples.discard(tup)
                if self._cache is pcb:
                    self._cache = None
                return pcb
        raise KeyError(tup)

    def _lookup(self, tup: FourTuple, kind: PacketKind) -> LookupResult:
        examined = 0
        if self._cache is not None:
            examined += 1
            if self._cache.four_tuple == tup:
                return LookupResult(self._cache, examined, cache_hit=True, kind=kind)
        for pcb in self._pcbs:
            examined += 1
            if pcb.four_tuple == tup:
                self._cache = pcb
                return LookupResult(pcb, examined, cache_hit=False, kind=kind)
        return LookupResult(None, examined, cache_hit=False, kind=kind)

    def __len__(self) -> int:
        return len(self._pcbs)

    def __iter__(self) -> Iterator[PCB]:
        return iter(self._pcbs)
