"""The demultiplexing-algorithm interface.

Each algorithm from the paper (and each extension) is a mutable
container of PCBs with one hot operation:

    ``lookup(four_tuple, kind)`` -> :class:`LookupResult`

The result carries the number of PCBs the structure *examined* -- the
paper's figure of merit -- which the base class feeds into a
:class:`~repro.core.stats.DemuxStats` automatically.

Counting convention (pinned so simulations match the paper's formulas):

* comparing a four-tuple against one PCB costs one "examined", whether
  that PCB sits in a cache slot or in a list;
* an *empty* cache slot costs nothing (nothing was fetched);
* computing a hash costs nothing (Section 3.5 treats the hash
  computation as negligible next to PCB memory traffic).

Under this convention BSD's expected miss cost is the paper's
``1 + (N+1)/2``, Partridge/Pink's is ``(N+5)/2``, and Sequent's is
``1 + (N/H+1)/2``, exactly as in Sections 3.1-3.4.

Observability hooks (see :mod:`repro.obs` and docs/observability.md):
the public ``lookup``/``insert``/``remove``/``note_send`` methods are
template methods wrapping the subclass primitives ``_lookup`` /
``_insert`` / ``_remove`` / ``_note_send``, so statistics recording,
event tracing (``self.tracer``), sampled wall-clock profiling
(attached via ``repro.obs.LookupProfiler``), and causal packet spans
(``self.spans``, a :class:`repro.obs.SpanCollector`) live in exactly
one place.  With no tracer, profiler, or span collector attached,
each operation pays a single ``is None`` check -- none of them ever
change results, statistics, or RNG state.

Lifecycle hooks (see :mod:`repro.lifecycle` and docs/lifecycle.md):
``self.lifecycle`` may hold a reaper observing the population --
``note_insert``/``note_remove`` on mutation, ``note_touch`` on found
lookups and outbound sends.  Like the tracer, it is ``None`` by
default and costs one check per operation; unlike the tracer, it may
*remove* connections (via the public ``remove``), never alter a
lookup's decision.
"""

from __future__ import annotations

import abc
import dataclasses
from typing import TYPE_CHECKING, Iterator, List, Optional, Sequence, Tuple

from ..packet.addresses import FourTuple
from .pcb import PCB
from .stats import DemuxStats, LookupRecord, PacketKind

if TYPE_CHECKING:  # obs never imports core; this edge is type-only
    from ..obs.profile import LookupProfiler
    from ..obs.trace import Tracer

__all__ = ["DemuxError", "DuplicateConnectionError", "LookupResult", "DemuxAlgorithm"]


class DemuxError(Exception):
    """Base error for demultiplexing structures."""


class DuplicateConnectionError(DemuxError):
    """Raised when inserting a PCB whose four-tuple is already present."""


@dataclasses.dataclass(frozen=True)
class LookupResult:
    """Outcome of one PCB lookup."""

    #: The PCB found, or ``None`` (no such connection -- e.g. a stray
    #: segment after close, or a SYN that belongs to a listener).
    pcb: Optional[PCB]
    #: PCBs examined, per the module-level counting convention.
    examined: int
    #: Whether a cache slot satisfied the lookup.
    cache_hit: bool
    #: Packet class this lookup served.
    kind: PacketKind

    @property
    def found(self) -> bool:
        return self.pcb is not None


class DemuxAlgorithm(abc.ABC):
    """Abstract PCB container with cost-accounted lookup.

    Subclasses implement ``_lookup``, ``_insert``, ``_remove``,
    iteration, and ``__len__`` (plus ``_note_send`` if the structure
    reacts to outbound packets); the public template methods wrap the
    primitives with statistics recording and observability hooks.
    """

    #: Short machine-readable name (registry key, figure legend).
    name: str = "abstract"

    #: The registry spec string this instance was built from, stamped
    #: by :func:`repro.core.registry.make_algorithm`.  ``None`` for
    #: directly constructed instances.  Checkpoint/restore
    #: (:mod:`repro.recovery`) uses it to rebuild an equivalent
    #: structure before re-imposing the captured decision state.
    spec: Optional[str] = None

    def __init__(self) -> None:
        self.stats = DemuxStats()
        #: Optional :class:`repro.obs.Tracer` receiving per-operation
        #: events.  ``None`` (the default) keeps the hot path bare.
        self.tracer: Optional["Tracer"] = None
        # Set/cleared by LookupProfiler.attach()/detach().
        self._profiler: Optional["LookupProfiler"] = None
        #: Optional :class:`repro.lifecycle.ConnectionReaper` observing
        #: inserts, removes, and activity.  Installed by the reaper's
        #: constructor; ``None`` keeps the hot path bare.
        self.lifecycle = None
        #: Optional :class:`repro.obs.SpanCollector` building causal
        #: per-packet spans.  Installed by ``SpanCollector.attach()``
        #: (or by the stack/SMP layers); ``None`` keeps the hot path
        #: bare -- one ``is None`` check, like every other hook.
        self.spans = None

    # -- public API ------------------------------------------------------

    def lookup(
        self, tup: FourTuple, kind: PacketKind = PacketKind.DATA
    ) -> LookupResult:
        """Find the PCB for an inbound packet's four-tuple.

        ``kind`` distinguishes data packets from pure transport-level
        acknowledgements; the Partridge/Pink structure probes its two
        cache slots in kind-dependent order (paper Section 3.3.3) and
        all algorithms keep kind-separated statistics.
        """
        profiler = self._profiler
        if profiler is None:
            result = self._lookup(tup, kind)
        else:
            result = profiler.call(self._lookup, tup, kind)
        self._finish_lookup(tup, result)
        return result

    def lookup_batch(
        self, packets: Sequence[Tuple[FourTuple, PacketKind]]
    ) -> List[LookupResult]:
        """Look up many ``(four_tuple, kind)`` pairs, in order.

        The batched entry point the interrupt-coalescing path uses
        (:class:`repro.smp.coalesce.BatchCoalescer`, the sharded
        facade, the bench-gate replays).  Semantics are pinned to a
        plain loop over :meth:`lookup` -- same results, same statistics,
        same hook behaviour -- and that loop *is* the default
        implementation.  Fast structures override it
        (:class:`repro.fastpath.batch.BatchLookupMixin`) to amortize
        the per-call template toll without changing one decision.
        """
        return [self.lookup(tup, kind) for tup, kind in packets]

    def note_send(self, pcb: PCB) -> None:
        """Tell the structure a packet was *sent* on ``pcb``.

        Only the Partridge/Pink last-sent/last-received cache reacts;
        the default is a no-op.  Costs nothing: the sender already
        holds the PCB.
        """
        self._note_send(pcb)
        if self.lifecycle is not None:
            self.lifecycle.note_touch(pcb.four_tuple)
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.emit_note_send(self.name, pcb.four_tuple)

    def insert(self, pcb: PCB) -> None:
        """Add a PCB (connection establishment).

        Raises :class:`DuplicateConnectionError` if the four-tuple is
        already present.
        """
        self._insert(pcb)
        if self.lifecycle is not None:
            self.lifecycle.note_insert(pcb)
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.emit_insert(self.name, pcb.four_tuple)

    def remove(self, tup: FourTuple) -> PCB:
        """Remove and return the PCB for ``tup`` (connection teardown).

        Raises ``KeyError`` if absent.  Any cache slot referencing the
        removed PCB must be invalidated -- a dangling cache entry would
        resurrect closed connections.
        """
        pcb = self._remove(tup)
        if self.lifecycle is not None:
            self.lifecycle.note_remove(tup)
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.emit_remove(self.name, tup)
        return pcb

    # -- subclass primitives ---------------------------------------------

    @abc.abstractmethod
    def _insert(self, pcb: PCB) -> None:
        """Subclass insert (see :meth:`insert` for the contract)."""

    @abc.abstractmethod
    def _remove(self, tup: FourTuple) -> PCB:
        """Subclass remove (see :meth:`remove` for the contract)."""

    def _note_send(self, pcb: PCB) -> None:
        """Subclass reaction to an outbound packet (default: none)."""

    @abc.abstractmethod
    def _lookup(self, tup: FourTuple, kind: PacketKind) -> LookupResult:
        """Subclass lookup; must fill ``examined`` per the convention."""

    def _finish_lookup(
        self, tup: Optional[FourTuple], result: LookupResult
    ) -> None:
        """Record statistics and trace one completed lookup.

        Shared by :meth:`lookup` and alternative cost-accounted entry
        points (e.g. ``ConnectionIdDemux.lookup_by_id``, where ``tup``
        is unknown and passed as ``None``).
        """
        self.stats.record(
            LookupRecord(
                examined=result.examined,
                cache_hit=result.cache_hit,
                found=result.found,
                kind=result.kind,
            )
        )
        if self.lifecycle is not None and tup is not None and result.found:
            self.lifecycle.note_touch(tup)
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.emit_lookup(self.name, tup, result)
        spans = self.spans
        if spans is not None:
            spans.note_lookup(self.name, tup, result)

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of PCBs currently installed."""

    @abc.abstractmethod
    def __iter__(self) -> Iterator[PCB]:
        """Iterate over installed PCBs in structure order."""

    # -- conveniences ------------------------------------------------------

    def __contains__(self, tup: FourTuple) -> bool:
        """Membership test that does *not* perturb caches or stats."""
        return any(pcb.four_tuple == tup for pcb in self)

    def __bool__(self) -> bool:
        """Always truthy.

        Without this, ``__len__`` would make an *empty* structure falsy
        and ``algorithm or default()`` would silently replace it -- an
        algorithm object is not a container in the caller's mental
        model, even though it holds PCBs.
        """
        return True

    def describe(self) -> str:
        """Human-readable one-liner for reports."""
        return f"{self.name} ({len(self)} PCBs)"

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.describe()}>"
