"""Golden-trace conformance machinery.

A *decision trace* is the per-packet record of everything the paper's
cost model sees from one lookup: whether a PCB was found, how many PCBs
were examined, and whether a cache slot satisfied the probe.  Two
structures that produce identical decision traces on a stream are
indistinguishable to every experiment in this repository.

:func:`decision_trace` replays a recorded TPC/A stream (plus a
deterministic sprinkle of absent-key lookups, so the not-found path is
covered) through any registry spec and returns the trace as compact
``[found, examined, cache_hit]`` triples.  The golden suite records the
reference algorithms' traces into ``tests/golden/*.json`` (via
``tests/golden/generate_golden.py``) and asserts that (a) the reference
structures still reproduce them byte-for-byte -- guarding against
accidental semantic drift in :mod:`repro.core` -- and (b) every
``fast-*`` twin reproduces them too, through both the per-call and the
batched lookup paths.
"""

from __future__ import annotations

from typing import List, Tuple

from ..core.registry import make_algorithm
from ..core.stats import PacketKind
from ..packet.addresses import FourTuple, IPv4Address
from ..workload.record import RecordedStream, record_tpca_stream

__all__ = [
    "Decision",
    "decision_trace",
    "golden_stream",
    "stray_tuple",
]

#: One lookup decision: ``[found, examined, cache_hit]`` with 0/1 flags
#: (compact and JSON-stable).
Decision = List[int]


def golden_stream(
    seed: int, *, n_users: int = 48, duration: float = 40.0
) -> RecordedStream:
    """The seeded TPC/A stream one golden file is recorded from."""
    return record_tpca_stream(n_users, duration, seed)


def stray_tuple(index: int) -> FourTuple:
    """A deterministic four-tuple that is never installed.

    Uses the 203.0.113.0/24 documentation block, disjoint from the
    workload's 10/8 clients, so these keys always miss.
    """
    return FourTuple(
        IPv4Address("10.0.0.1"),
        1521,
        IPv4Address("203.0.113.0") + (index % 251),
        45000 + (index % 1000),
    )


def decision_trace(
    spec: str,
    stream: RecordedStream,
    *,
    stray_every: int = 13,
    use_batch: bool = False,
    batch_size: int = 64,
) -> List[Decision]:
    """Replay ``stream`` through ``spec``; return its decision trace.

    Every ``stray_every``-th packet is followed by a lookup of an
    absent key (alternating DATA/ACK kinds), so traces exercise the
    miss path of every cache and chain.  With ``use_batch=True`` the
    replay goes through ``lookup_batch`` in ``batch_size`` chunks,
    which must not change a single decision.
    """
    from ..core.pcb import PCB  # local: keep module import light

    if stray_every < 1:
        raise ValueError(f"stray_every must be >= 1, got {stray_every}")
    algorithm = make_algorithm(spec)
    for tup in stream.tuples:
        algorithm.insert(PCB(tup))

    packets: List[Tuple[FourTuple, PacketKind]] = []
    for position, (tup, kind) in enumerate(stream.packets):
        packets.append((tup, kind))
        if (position + 1) % stray_every == 0:
            stray_kind = (
                PacketKind.DATA if (position // stray_every) % 2 else PacketKind.ACK
            )
            packets.append((stray_tuple(position), stray_kind))

    if use_batch:
        results = []
        for start in range(0, len(packets), batch_size):
            results.extend(
                algorithm.lookup_batch(packets[start:start + batch_size])
            )
    else:
        results = [algorithm.lookup(tup, kind) for tup, kind in packets]
    return [
        [int(result.found), result.examined, int(result.cache_hit)]
        for result in results
    ]
