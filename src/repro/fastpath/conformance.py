"""Golden-trace conformance machinery.

A *decision trace* is the per-packet record of everything the paper's
cost model sees from one lookup: whether a PCB was found, how many PCBs
were examined, and whether a cache slot satisfied the probe.  Two
structures that produce identical decision traces on a stream are
indistinguishable to every experiment in this repository.

:func:`decision_trace` replays a recorded TPC/A stream (plus a
deterministic sprinkle of absent-key lookups, so the not-found path is
covered) through any registry spec and returns the trace as compact
``[found, examined, cache_hit]`` triples.  The golden suite records the
reference algorithms' traces into ``tests/golden/*.json`` (via
``tests/golden/generate_golden.py``) and asserts that (a) the reference
structures still reproduce them byte-for-byte -- guarding against
accidental semantic drift in :mod:`repro.core` -- and (b) every
``fast-*`` twin reproduces them too, through both the per-call and the
batched lookup paths.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from ..core.registry import make_algorithm
from ..core.stats import PacketKind
from ..packet.addresses import FourTuple, IPv4Address
from ..workload.record import RecordedStream, record_tpca_stream

__all__ = [
    "Decision",
    "ChurnOp",
    "churn_ops",
    "churn_tuple",
    "decision_trace",
    "golden_stream",
    "mutation_trace",
    "resumed_decision_trace",
    "resumed_mutation_trace",
    "stray_tuple",
]

#: One lookup decision: ``[found, examined, cache_hit]`` with 0/1 flags
#: (compact and JSON-stable).
Decision = List[int]


def golden_stream(
    seed: int, *, n_users: int = 48, duration: float = 40.0
) -> RecordedStream:
    """The seeded TPC/A stream one golden file is recorded from."""
    return record_tpca_stream(n_users, duration, seed)


def stray_tuple(index: int) -> FourTuple:
    """A deterministic four-tuple that is never installed.

    Uses the 203.0.113.0/24 documentation block, disjoint from the
    workload's 10/8 clients, so these keys always miss.
    """
    return FourTuple(
        IPv4Address("10.0.0.1"),
        1521,
        IPv4Address("203.0.113.0") + (index % 251),
        45000 + (index % 1000),
    )


def decision_trace(
    spec: str,
    stream: RecordedStream,
    *,
    stray_every: int = 13,
    use_batch: bool = False,
    batch_size: int = 64,
) -> List[Decision]:
    """Replay ``stream`` through ``spec``; return its decision trace.

    Every ``stray_every``-th packet is followed by a lookup of an
    absent key (alternating DATA/ACK kinds), so traces exercise the
    miss path of every cache and chain.  With ``use_batch=True`` the
    replay goes through ``lookup_batch`` in ``batch_size`` chunks,
    which must not change a single decision.
    """
    from ..core.pcb import PCB  # local: keep module import light

    algorithm = make_algorithm(spec)
    try:
        for tup in stream.tuples:
            algorithm.insert(PCB(tup))
        packets = _packets_with_strays(stream, stray_every)
        return _replay(algorithm, packets, use_batch, batch_size)
    finally:
        _close(algorithm)


def resumed_decision_trace(
    spec: str,
    stream: RecordedStream,
    *,
    split: float = 0.5,
    stray_every: int = 13,
    use_batch: bool = False,
    batch_size: int = 64,
) -> List[Decision]:
    """:func:`decision_trace` with a snapshot/restore mid-stream.

    Replays the first ``split`` fraction of the packets, snapshots the
    structure through :mod:`repro.recovery.snapshot`, restores a fresh
    instance from the bytes, and replays the rest on the restored
    structure.  By the restore guarantee, the concatenated trace must
    equal the uninterrupted :func:`decision_trace` -- the golden suite
    asserts exactly that, making every committed golden also a restore
    conformance witness.
    """
    from ..core.pcb import PCB  # local: keep module import light
    from ..recovery.snapshot import (  # lazy: recovery sits above fastpath
        restore_bytes,
        snapshot_bytes,
    )

    if not 0.0 <= split <= 1.0:
        raise ValueError(f"split must be in [0, 1], got {split}")
    algorithm = make_algorithm(spec)
    try:
        for tup in stream.tuples:
            algorithm.insert(PCB(tup))
        packets = _packets_with_strays(stream, stray_every)
        cut = int(len(packets) * split)
        head = _replay(algorithm, packets[:cut], use_batch, batch_size)
        blob = snapshot_bytes(algorithm)
    finally:
        _close(algorithm)
    algorithm = restore_bytes(blob)
    try:
        return head + _replay(algorithm, packets[cut:], use_batch, batch_size)
    finally:
        _close(algorithm)


def _packets_with_strays(
    stream: RecordedStream, stray_every: int
) -> List[Tuple[FourTuple, PacketKind]]:
    """The stream's packets with the deterministic stray interleave."""
    if stray_every < 1:
        raise ValueError(f"stray_every must be >= 1, got {stray_every}")
    packets: List[Tuple[FourTuple, PacketKind]] = []
    for position, (tup, kind) in enumerate(stream.packets):
        packets.append((tup, kind))
        if (position + 1) % stray_every == 0:
            stray_kind = (
                PacketKind.DATA if (position // stray_every) % 2 else PacketKind.ACK
            )
            packets.append((stray_tuple(position), stray_kind))
    return packets


def _close(algorithm) -> None:
    """Tear down worker processes behind shm-backed facades.

    In-process structures have no ``close`` (or a no-op one); a
    ``workers=`` facade holds a :class:`repro.smp.shm.ShmWorkerPool`
    that must not outlive the trace, or conformance sweeps over many
    specs would accumulate orphaned processes.
    """
    close = getattr(algorithm, "close", None)
    if close is not None:
        close()


def _replay(
    algorithm,
    packets: List[Tuple[FourTuple, PacketKind]],
    use_batch: bool,
    batch_size: int,
) -> List[Decision]:
    if use_batch:
        results = []
        for start in range(0, len(packets), batch_size):
            results.extend(
                algorithm.lookup_batch(packets[start:start + batch_size])
            )
    else:
        results = [algorithm.lookup(tup, kind) for tup, kind in packets]
    return [
        [int(result.found), result.examined, int(result.cache_hit)]
        for result in results
    ]


#: One churn operation: ``("insert", id)``, ``("remove", id)``, or
#: ``("lookup", id, "data"|"ack")`` -- connection ids are stable ints
#: that :func:`churn_tuple` maps to four-tuples, so an op list is a
#: plain JSON-able value any structure can replay.
ChurnOp = Tuple

#: Caps on the churn id space: above these the address/port folding in
#: :func:`churn_tuple` starts reusing four-tuples for distinct ids.
_CHURN_ID_LIMIT = 20000


def churn_tuple(index: int) -> FourTuple:
    """The four-tuple for churn connection id ``index`` (stable)."""
    return FourTuple(
        IPv4Address("10.0.0.1"),
        1521,
        IPv4Address("10.2.0.0") + (index % 65534 + 1),
        40000 + index % 20000,
    )


def churn_ops(seed: int, *, steps: int = 4000) -> List[ChurnOp]:
    """A deterministic churn walk mirroring ``ChurnStormWorkload``.

    Each step is a biased coin flip: insert a fresh connection, remove
    a random live one, or look one up (half the lookups target live
    connections, half target fresh never-inserted ids -- guaranteed
    misses, exercising the non-interning probe path).  The op list is
    valid by construction: every remove names a live connection.
    """
    if not 1 <= steps <= _CHURN_ID_LIMIT:
        raise ValueError(
            f"steps must be in [1, {_CHURN_ID_LIMIT}], got {steps}"
        )
    rng = random.Random(seed)
    ops: List[ChurnOp] = []
    live: List[int] = []
    next_id = 0
    for _ in range(steps):
        action = rng.random()
        if action < 0.25 or not live:
            ops.append(("insert", next_id))
            live.append(next_id)
            next_id += 1
        elif action < 0.5:
            victim = rng.randrange(len(live))
            live[victim], live[-1] = live[-1], live[victim]
            ops.append(("remove", live.pop()))
        else:
            if rng.random() < 0.5:
                target = live[rng.randrange(len(live))]
            else:
                target = next_id  # never inserted: a guaranteed miss
                next_id += 1
            kind = "data" if rng.random() < 0.5 else "ack"
            ops.append(("lookup", target, kind))
    return ops


def mutation_trace(
    spec: str,
    ops: List[ChurnOp],
    *,
    use_batch: bool = False,
    batch_size: int = 32,
):
    """Replay a churn op list through ``spec``.

    Returns ``(decisions, algorithm)``: the decision trace of the
    lookups (same triples as :func:`decision_trace`) and the mutated
    structure itself, so callers can audit what the churn left behind
    (live population, interned keys).  With ``use_batch=True``, runs
    of consecutive lookups go through ``lookup_batch`` in
    ``batch_size`` chunks; mutations flush the pending batch first,
    preserving op order exactly.
    """
    algorithm = make_algorithm(spec)
    decisions = _replay_ops(algorithm, ops, use_batch, batch_size)
    return decisions, algorithm


def resumed_mutation_trace(
    spec: str,
    ops: List[ChurnOp],
    *,
    split: float = 0.5,
    use_batch: bool = False,
    batch_size: int = 32,
):
    """:func:`mutation_trace` with a snapshot/restore mid-churn.

    Replays the first ``split`` fraction of the op list, snapshots,
    restores a fresh structure from the bytes, and replays the rest on
    it.  Returns ``(decisions, algorithm)`` like
    :func:`mutation_trace`; the concatenated decisions must equal the
    uninterrupted replay's.  This is the hardest restore case for
    layout-carrying structures (cuckoo kickout state, MTF recency
    order): the churn keeps mutating *after* the restore.
    """
    from ..recovery.snapshot import (  # lazy: recovery sits above fastpath
        restore_bytes,
        snapshot_bytes,
    )

    if not 0.0 <= split <= 1.0:
        raise ValueError(f"split must be in [0, 1], got {split}")
    algorithm = make_algorithm(spec)
    cut = int(len(ops) * split)
    decisions = _replay_ops(algorithm, ops[:cut], use_batch, batch_size)
    algorithm = restore_bytes(snapshot_bytes(algorithm))
    decisions.extend(
        _replay_ops(algorithm, ops[cut:], use_batch, batch_size)
    )
    return decisions, algorithm


def _replay_ops(
    algorithm,
    ops: List[ChurnOp],
    use_batch: bool,
    batch_size: int,
) -> List[Decision]:
    from ..core.pcb import PCB  # local: keep module import light

    decisions: List[Decision] = []
    pending: List[Tuple[FourTuple, PacketKind]] = []

    def flush() -> None:
        for start in range(0, len(pending), batch_size):
            for result in algorithm.lookup_batch(
                pending[start:start + batch_size]
            ):
                decisions.append(
                    [int(result.found), result.examined, int(result.cache_hit)]
                )
        pending.clear()

    for op in ops:
        if op[0] == "insert":
            flush()
            algorithm.insert(PCB(churn_tuple(op[1])))
        elif op[0] == "remove":
            flush()
            algorithm.remove(churn_tuple(op[1]))
        elif op[0] == "lookup":
            kind = PacketKind.DATA if op[2] == "data" else PacketKind.ACK
            if use_batch:
                pending.append((churn_tuple(op[1]), kind))
            else:
                result = algorithm.lookup(churn_tuple(op[1]), kind)
                decisions.append(
                    [int(result.found), result.examined, int(result.cache_hit)]
                )
        else:
            raise ValueError(f"unknown churn op {op!r}")
    flush()
    return decisions
