"""Fast re-implementations of the hot demux structures.

Each class here is a drop-in :class:`~repro.core.base.DemuxAlgorithm`
that makes *exactly* the decisions of its reference twin in
:mod:`repro.core` -- same PCB found, same examined count, same cache
hits, same statistics, same iteration order -- while replacing the
interpreted four-tuple scans with interned-integer scans over flat
:class:`~repro.fastpath.tables.SlotTable` arrays and memoizing the
chain hash in a :class:`~repro.fastpath.keycache.KeyCache`.

The equivalence is not an aspiration; it is enforced by the golden
conformance suite (``tests/test_fastpath_golden.py``) and the
differential property tests
(``tests/property/test_fastpath_equiv.py``).  The speed win is
quantified by ``benchmarks/bench_fastpath.py`` and gated across PRs by
the ``bench-gate`` CLI subcommand.

Registry names: ``fast-linear``, ``fast-bsd``, ``fast-mtf``,
``fast-sequent``, ``fast-hashed_mtf``, each accepting the same spec
options as its reference (``fast-sequent:h=51,hash=crc16``), and
composing with sharding (``sharded-fast-sequent:shards=8``).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Set

from ..core.base import (
    DemuxAlgorithm,
    DuplicateConnectionError,
    LookupResult,
)
from ..core.pcb import PCB
from ..core.sequent import DEFAULT_HASH_CHAINS
from ..core.stats import PacketKind
from ..hashing.functions import HashFunction, default_hash
from ..packet.addresses import FourTuple
from .batch import BatchLookupMixin, Packet
from .keycache import FastpathCounters, KeyCache
from .tables import CachedSlot, SlotTable

__all__ = [
    "FastLinearDemux",
    "FastBSDDemux",
    "FastMTFDemux",
    "FastSequentDemux",
    "FastHashedMTFDemux",
    "FastCuckooDemux",
    "FAST_ALGORITHMS",
]


class _FastDemuxBase(BatchLookupMixin, DemuxAlgorithm):
    """Fast-path plumbing every backend shares: key cache, membership.

    Subclasses add their own storage -- :class:`_FastDemux` the
    list-shaped :class:`~repro.fastpath.tables.SlotTable` family,
    :class:`~repro.fastpath.cuckoo.FastCuckooDemux` its bucket arrays
    -- but interning, the membership set, counters, and the leak
    contract (interned entries == live connections) live here, as does
    the snapshot machinery's type anchor.
    """

    def __init__(self, chain_fn=None) -> None:
        super().__init__()
        self.fastpath_counters = FastpathCounters()
        self._keycache = KeyCache(chain_fn, self.fastpath_counters)
        self._present: Set[int] = set()

    def _lookup_batch(
        self, packets: Sequence[Packet]
    ) -> Optional[List[LookupResult]]:
        """Hook for vectorized whole-batch lookups.

        Return the results (decision-identical to looping ``_lookup``,
        side effects included) or ``None`` to take the generic tight
        loop.  Statistics are recorded by the mixin either way.
        """
        return None

    @property
    def interned_entries(self) -> int:
        """Interned-key count; equals ``len(self)`` by the memory-bounds
        contract (one memo per live connection, none for dead ones)."""
        return len(self._keycache)

    def __len__(self) -> int:
        return len(self._present)

    def __contains__(self, tup: FourTuple) -> bool:
        """Membership without perturbing caches, stats, or counters."""
        return tup.key_bits() in self._present


class _FastDemux(_FastDemuxBase):
    """Shared plumbing of the list-shaped structures: slot tables."""

    def __init__(self, nchains: int = 1, chain_fn=None) -> None:
        super().__init__(chain_fn)
        self._tables = [SlotTable() for _ in range(nchains)]

    def _insert(self, pcb: PCB) -> None:
        key, chain = self._keycache.entry(pcb.four_tuple)
        if key in self._present:
            raise DuplicateConnectionError(
                f"duplicate connection {pcb.four_tuple}"
            )
        self._tables[chain].push_front(key, pcb)
        self._present.add(key)

    def _remove(self, tup: FourTuple) -> PCB:
        key, chain = self._keycache.probe(tup)
        if key not in self._present:
            raise KeyError(tup)
        pcb = self._tables[chain].remove_key(key)
        self._present.discard(key)
        self._invalidate_cache(chain, key)
        # The connection is gone; its interned entry goes with it, or
        # a churn workload would retain one memo per connection ever
        # seen (the PR 4 leak).
        self._keycache.evict(tup)
        return pcb

    def _invalidate_cache(self, chain: int, key: int) -> None:
        """Hook for cached subclasses (default: no cache to clear)."""

    def __iter__(self) -> Iterator[PCB]:
        for table in self._tables:
            yield from table.pcbs


class FastLinearDemux(_FastDemux):
    """Array-backed twin of :class:`~repro.core.linear.LinearDemux`."""

    name = "fast-linear"

    def __init__(self) -> None:
        super().__init__(nchains=1)

    def _lookup(self, tup: FourTuple, kind: PacketKind) -> LookupResult:
        key, _ = self._keycache.probe(tup)
        table = self._tables[0]
        index, examined = table.scan(key)
        pcb = table.pcbs[index] if index >= 0 else None
        return LookupResult(pcb, examined, cache_hit=False, kind=kind)

    def _lookup_batch(
        self, packets: Sequence[Packet]
    ) -> Optional[List[LookupResult]]:
        # Lookups never mutate this table, so the whole batch resolves
        # against one vectorized scan (decision-identical by the
        # scan_batch contract).
        table = self._tables[0]
        probe = self._keycache.probe
        keys = [probe(tup)[0] for tup, _ in packets]
        scans = table.scan_batch(keys)
        pcbs = table.pcbs
        return [
            LookupResult(
                pcbs[index] if index >= 0 else None,
                examined,
                cache_hit=False,
                kind=kind,
            )
            for (index, examined), (_, kind) in zip(scans, packets)
        ]


class FastBSDDemux(_FastDemux):
    """Array-backed twin of :class:`~repro.core.bsd.BSDDemux`."""

    name = "fast-bsd"

    def __init__(self) -> None:
        super().__init__(nchains=1)
        self._cache = CachedSlot()

    @property
    def cached_pcb(self) -> Optional[PCB]:
        """The PCB currently in the one-entry cache (for inspection)."""
        return self._cache.pcb

    def _invalidate_cache(self, chain: int, key: int) -> None:
        self._cache.invalidate_if(key)

    def _lookup(self, tup: FourTuple, kind: PacketKind) -> LookupResult:
        key, _ = self._keycache.probe(tup)
        cache = self._cache
        examined = 0
        if cache.key is not None:
            examined = 1
            if cache.key == key:
                return LookupResult(
                    cache.pcb, examined, cache_hit=True, kind=kind
                )
        table = self._tables[0]
        index, scanned = table.scan(key)
        examined += scanned
        if index >= 0:
            pcb = table.pcbs[index]
            cache.set(key, pcb)
            return LookupResult(pcb, examined, cache_hit=False, kind=kind)
        return LookupResult(None, examined, cache_hit=False, kind=kind)

    def _lookup_batch(
        self, packets: Sequence[Packet]
    ) -> Optional[List[LookupResult]]:
        # The one-entry cache mutates per lookup but never the table,
        # so scans vectorize up front and the cache logic replays
        # sequentially over the precomputed results.
        table = self._tables[0]
        probe = self._keycache.probe
        keys = [probe(tup)[0] for tup, _ in packets]
        scans = table.scan_batch(keys)
        pcbs = table.pcbs
        cache = self._cache
        results: List[LookupResult] = []
        append = results.append
        for key, (index, scanned), (_, kind) in zip(keys, scans, packets):
            examined = 0
            if cache.key is not None:
                examined = 1
                if cache.key == key:
                    append(
                        LookupResult(
                            cache.pcb, examined, cache_hit=True, kind=kind
                        )
                    )
                    continue
            examined += scanned
            if index >= 0:
                pcb = pcbs[index]
                cache.set(key, pcb)
                append(
                    LookupResult(pcb, examined, cache_hit=False, kind=kind)
                )
            else:
                append(
                    LookupResult(None, examined, cache_hit=False, kind=kind)
                )
        return results


class FastMTFDemux(_FastDemux):
    """Array-backed twin of :class:`~repro.core.mtf.MoveToFrontDemux`."""

    name = "fast-mtf"

    def __init__(self) -> None:
        super().__init__(nchains=1)

    def _lookup(self, tup: FourTuple, kind: PacketKind) -> LookupResult:
        key, _ = self._keycache.probe(tup)
        table = self._tables[0]
        index, examined = table.scan(key)
        if index >= 0:
            pcb = table.pcbs[index]
            table.move_to_front(index)
            return LookupResult(pcb, examined, cache_hit=False, kind=kind)
        return LookupResult(None, examined, cache_hit=False, kind=kind)

    def position_of(self, tup: FourTuple) -> int:
        """Current 0-based list position (no stats, no MTF)."""
        key = tup.key_bits()
        try:
            return self._tables[0].keys.index(key)
        except ValueError:
            raise KeyError(tup) from None


class _FastChained(_FastDemux):
    """Shared shape of the hashed structures: H chains + memoized hash."""

    def __init__(self, nchains: int, hash_function: HashFunction) -> None:
        if nchains <= 0:
            raise ValueError(f"nchains must be positive, got {nchains}")
        self._nchains = nchains
        self._hash = hash_function
        super().__init__(
            nchains=nchains,
            chain_fn=lambda tup: hash_function(tup, nchains),
        )

    @property
    def nchains(self) -> int:
        """H, the number of hash chains."""
        return self._nchains

    def chain_lengths(self) -> Sequence[int]:
        """Current per-chain PCB counts (for balance reporting)."""
        return tuple(len(table) for table in self._tables)

    def chain_of(self, tup: FourTuple) -> int:
        """Which chain ``tup`` hashes to (memoized)."""
        return self._keycache.chain_of(tup)


class FastSequentDemux(_FastChained):
    """Array-backed twin of :class:`~repro.core.sequent.SequentDemux`."""

    name = "fast-sequent"

    def __init__(
        self,
        nchains: int = DEFAULT_HASH_CHAINS,
        hash_function: HashFunction = default_hash,
        *,
        overload_threshold: Optional[int] = None,
    ):
        if overload_threshold is not None and overload_threshold < 1:
            raise ValueError(
                f"overload_threshold must be >= 1, got {overload_threshold}"
            )
        super().__init__(nchains, hash_function)
        self._caches: List[CachedSlot] = [
            CachedSlot() for _ in range(nchains)
        ]
        self._overload_threshold = overload_threshold
        #: Inserts that left a chain above the threshold.
        self.chain_overload_events = 0

    @property
    def overload_threshold(self) -> Optional[int]:
        return self._overload_threshold

    def overloaded_chains(self) -> Sequence[int]:
        """Indices of chains currently above the overload threshold."""
        if self._overload_threshold is None:
            return ()
        return tuple(
            index
            for index, table in enumerate(self._tables)
            if len(table) > self._overload_threshold
        )

    def _insert(self, pcb: PCB) -> None:
        super()._insert(pcb)
        if self._overload_threshold is not None:
            chain = self._keycache.chain_of(pcb.four_tuple)
            if len(self._tables[chain]) > self._overload_threshold:
                self.chain_overload_events += 1

    def _invalidate_cache(self, chain: int, key: int) -> None:
        self._caches[chain].invalidate_if(key)

    def _lookup(self, tup: FourTuple, kind: PacketKind) -> LookupResult:
        key, chain = self._keycache.probe(tup)
        cache = self._caches[chain]
        examined = 0
        if cache.key is not None:
            examined = 1
            if cache.key == key:
                return LookupResult(
                    cache.pcb, examined, cache_hit=True, kind=kind
                )
        table = self._tables[chain]
        index, scanned = table.scan(key)
        examined += scanned
        if index >= 0:
            pcb = table.pcbs[index]
            cache.set(key, pcb)
            return LookupResult(pcb, examined, cache_hit=False, kind=kind)
        return LookupResult(None, examined, cache_hit=False, kind=kind)

    def _lookup_batch(
        self, packets: Sequence[Packet]
    ) -> Optional[List[LookupResult]]:
        # Chains never mutate during lookups; group the batch by chain,
        # vectorize one scan per chain, then replay the per-chain cache
        # logic sequentially in packet order.
        probe = self._keycache.probe
        entries = [probe(tup) for tup, _ in packets]
        by_chain: dict = {}
        for position, (_key, chain) in enumerate(entries):
            by_chain.setdefault(chain, []).append(position)
        scans: List = [None] * len(packets)
        for chain, positions in by_chain.items():
            chain_scans = self._tables[chain].scan_batch(
                [entries[position][0] for position in positions]
            )
            for position, scan in zip(positions, chain_scans):
                scans[position] = scan
        caches = self._caches
        tables = self._tables
        results: List[LookupResult] = []
        append = results.append
        for (key, chain), (index, scanned), (_, kind) in zip(
            entries, scans, packets
        ):
            cache = caches[chain]
            examined = 0
            if cache.key is not None:
                examined = 1
                if cache.key == key:
                    append(
                        LookupResult(
                            cache.pcb, examined, cache_hit=True, kind=kind
                        )
                    )
                    continue
            examined += scanned
            if index >= 0:
                pcb = tables[chain].pcbs[index]
                cache.set(key, pcb)
                append(
                    LookupResult(pcb, examined, cache_hit=False, kind=kind)
                )
            else:
                append(
                    LookupResult(None, examined, cache_hit=False, kind=kind)
                )
        return results

    def describe(self) -> str:
        lengths = self.chain_lengths()
        longest = max(lengths) if lengths else 0
        return (
            f"{self.name} (H={self._nchains}, {len(self)} PCBs,"
            f" longest chain {longest})"
        )


class FastHashedMTFDemux(_FastChained):
    """Array-backed twin of :class:`~repro.core.hashed_mtf.HashedMTFDemux`."""

    name = "fast-hashed_mtf"

    def __init__(
        self,
        nchains: int = DEFAULT_HASH_CHAINS,
        hash_function: HashFunction = default_hash,
        *,
        per_chain_cache: bool = True,
    ):
        super().__init__(nchains, hash_function)
        self._per_chain_cache = per_chain_cache
        self._caches: List[CachedSlot] = [
            CachedSlot() for _ in range(nchains)
        ]

    def _invalidate_cache(self, chain: int, key: int) -> None:
        self._caches[chain].invalidate_if(key)

    def _lookup(self, tup: FourTuple, kind: PacketKind) -> LookupResult:
        key, chain = self._keycache.probe(tup)
        examined = 0
        cache = self._caches[chain]
        if self._per_chain_cache and cache.key is not None:
            examined = 1
            if cache.key == key:
                return LookupResult(
                    cache.pcb, examined, cache_hit=True, kind=kind
                )
        table = self._tables[chain]
        index, scanned = table.scan(key)
        examined += scanned
        if index >= 0:
            pcb = table.pcbs[index]
            table.move_to_front(index)
            if self._per_chain_cache:
                cache.set(key, pcb)
            return LookupResult(pcb, examined, cache_hit=False, kind=kind)
        return LookupResult(None, examined, cache_hit=False, kind=kind)

    def describe(self) -> str:
        cache = "cached" if self._per_chain_cache else "uncached"
        return f"{self.name} (H={self._nchains}, {cache}, {len(self)} PCBs)"


# Imported late: cuckoo.py subclasses _FastDemuxBase from this module,
# so its import must come after the class definitions above.
from .cuckoo import FastCuckooDemux  # noqa: E402

#: Fast structures, keyed by the *reference* registry name they mirror
#: -- except ``cuckoo``, which has no reference twin (the paper has no
#: O(1) structure) and exists only as ``fast-cuckoo``.
FAST_ALGORITHMS = {
    "linear": FastLinearDemux,
    "bsd": FastBSDDemux,
    "mtf": FastMTFDemux,
    "sequent": FastSequentDemux,
    "hashed_mtf": FastHashedMTFDemux,
    "cuckoo": FastCuckooDemux,
}
