"""The benchmark-regression gate: packets/sec across PRs.

Every earlier ``BENCH_*.json`` artifact is a one-shot snapshot; nothing
compared run N against run N-1, so a wall-clock regression could land
silently as long as decisions stayed right.  ``bench-gate`` closes that
hole: it replays the same recorded TPC/A streams (common random
numbers, the house methodology) through the reference structures and
their ``fast-*`` twins, measures packets demultiplexed per second,
appends a dated entry to ``BENCH_trajectory.json``, and fails when any
measured configuration regresses more than ``threshold`` (default 10%)
against the most recent comparable entry.

Baselines are matched on the full measurement key -- algorithm spec,
connection count, stream duration, and seed -- so a ``--quick`` run
never gates against a full run's numbers.  Timing uses best-of-R
replays of a pre-recorded stream with the structure rebuilt per repeat,
which removes workload generation and warm-cache luck from the clock.

CI runs the gate warn-only (shared runners jitter well past 10%); the
hard gate is for local, same-machine trajectories.
"""

from __future__ import annotations

import dataclasses
import datetime
import json
import os
import platform
import time
from typing import Callable, Dict, List, Optional, Tuple

from ..core.pcb import PCB
from ..core.registry import make_algorithm
from ..workload.record import RecordedStream, record_tpca_stream

__all__ = [
    "DEFAULT_PAIRS",
    "GateConfig",
    "GateReport",
    "Measurement",
    "measure_replay",
    "run_gate",
    "QUICK_CONFIG",
]

#: (reference spec, fast twin spec) pairs the standard sweep compares.
DEFAULT_PAIRS: Tuple[Tuple[str, str], ...] = (
    ("linear", "fast-linear"),
    ("bsd", "fast-bsd"),
    ("mtf", "fast-mtf"),
    ("sequent:h=19", "fast-sequent:h=19"),
    ("hashed_mtf:h=19", "fast-hashed_mtf:h=19"),
)


@dataclasses.dataclass(frozen=True)
class GateConfig:
    """Parameters of one bench-gate run."""

    pairs: Tuple[Tuple[str, str], ...] = DEFAULT_PAIRS
    #: Connection counts swept (the paper's N axis).
    n_sweep: Tuple[int, ...] = (100, 300, 1000)
    #: Simulated seconds of TPC/A traffic per stream.
    duration: float = 30.0
    seed: int = 7
    #: Timed replays per configuration; best-of-R is recorded.
    repeats: int = 3
    #: Packets per ``lookup_batch`` call during the replay.
    chunk: int = 256
    #: Fractional packets/sec drop that fails the gate.
    threshold: float = 0.10

    def __post_init__(self) -> None:
        if not self.pairs:
            raise ValueError("need at least one (reference, fast) pair")
        if self.repeats < 1:
            raise ValueError(f"repeats must be >= 1, got {self.repeats}")
        if self.chunk < 1:
            raise ValueError(f"chunk must be >= 1, got {self.chunk}")
        if not 0.0 < self.threshold < 1.0:
            raise ValueError(
                f"threshold must be in (0, 1), got {self.threshold}"
            )


#: The reduced configuration behind ``bench-gate --quick``.
QUICK_CONFIG = GateConfig(
    n_sweep=(60, 200), duration=10.0, repeats=2
)


@dataclasses.dataclass(frozen=True)
class Measurement:
    """Best-of-R replay throughput for one (spec, N) cell."""

    algorithm: str
    n_users: int
    packets: int
    best_seconds: float
    packets_per_sec: float
    mean_examined: float

    def key(self, config: GateConfig) -> str:
        """Baseline-matching key: spec + workload parameters."""
        return (
            f"{self.algorithm}@n={self.n_users}"
            f";d={config.duration:g};seed={config.seed}"
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "algorithm": self.algorithm,
            "n_users": self.n_users,
            "packets": self.packets,
            "best_seconds": round(self.best_seconds, 6),
            "packets_per_sec": round(self.packets_per_sec, 1),
            "mean_examined": round(self.mean_examined, 4),
        }


def measure_replay(
    spec: str,
    stream: RecordedStream,
    *,
    repeats: int = 3,
    chunk: int = 256,
) -> Measurement:
    """Time ``spec`` demultiplexing ``stream``; best-of-``repeats``.

    The structure is rebuilt and repopulated for every repeat (outside
    the timed region), so each timing starts from an identical cold
    state and only the lookup hot path is on the clock.
    """
    packets = list(stream.packets)
    chunks = [
        packets[start:start + chunk]
        for start in range(0, len(packets), chunk)
    ]
    best = float("inf")
    mean_examined = 0.0
    for _ in range(repeats):
        algorithm = make_algorithm(spec)
        for tup in stream.tuples:
            algorithm.insert(PCB(tup))
        lookup_batch = algorithm.lookup_batch
        start_time = time.perf_counter()
        for batch in chunks:
            lookup_batch(batch)
        elapsed = time.perf_counter() - start_time
        best = min(best, elapsed)
        mean_examined = algorithm.stats.mean_examined
    return Measurement(
        algorithm=spec,
        n_users=stream.n_users,
        packets=len(packets),
        best_seconds=best,
        packets_per_sec=len(packets) / best if best > 0 else 0.0,
        mean_examined=mean_examined,
    )


@dataclasses.dataclass
class GateReport:
    """Outcome of one gate run: the appended entry plus verdicts."""

    entry: Dict[str, object]
    regressions: List[str]
    trajectory_path: str

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render_text(self) -> str:
        lines = [
            f"bench-gate {self.entry['date']}"
            f" (seed {self.entry['config']['seed']},"
            f" duration {self.entry['config']['duration']}s)"
        ]
        lines.append(
            f"  {'algorithm':<24} {'N':>5} {'packets':>8}"
            f" {'pkts/sec':>12} {'PCBs/pkt':>9}"
        )
        for result in self.entry["results"]:
            lines.append(
                f"  {result['algorithm']:<24} {result['n_users']:>5}"
                f" {result['packets']:>8}"
                f" {result['packets_per_sec']:>12,.0f}"
                f" {result['mean_examined']:>9.2f}"
            )
        lines.append("  speedups (fast vs reference):")
        for speedup in self.entry["speedups"]:
            lines.append(
                f"    {speedup['fast']:<24} N={speedup['n_users']:<5}"
                f" {speedup['speedup']:.2f}x"
            )
        if self.regressions:
            lines.append("  REGRESSIONS (>threshold drop in pkts/sec):")
            lines.extend(f"    {item}" for item in self.regressions)
        else:
            lines.append("  no regressions against recorded baseline")
        lines.append(f"  trajectory: {self.trajectory_path}")
        return "\n".join(lines)


def _load_trajectory(path: str) -> Dict[str, object]:
    if not os.path.exists(path):
        return {"entries": []}
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if isinstance(data, list):  # tolerate a bare-list file
        data = {"entries": data}
    data.setdefault("entries", [])
    return data


def _baselines(
    trajectory: Dict[str, object]
) -> Dict[str, float]:
    """Best recorded packets/sec per measurement key.

    The gate must compare against each key's trajectory *maximum*, not
    its latest entry: last-write-wins would let a sequence of
    sub-threshold drops ratchet the baseline down -- each run 9% slower
    than the one before it passes forever, compounding unnoticed.
    Against the maximum, slow drift accumulates until it trips the
    threshold once, exactly as a single large regression would.
    """
    baselines: Dict[str, float] = {}
    for entry in trajectory["entries"]:
        for result in entry.get("results", []):
            config = entry.get("config", {})
            key = (
                f"{result['algorithm']}@n={result['n_users']}"
                f";d={config.get('duration', 0):g}"
                f";seed={config.get('seed', 0)}"
            )
            value = float(result["packets_per_sec"])
            baselines[key] = max(baselines.get(key, value), value)
    return baselines


def run_gate(
    config: GateConfig = GateConfig(),
    trajectory_path: str = "BENCH_trajectory.json",
    *,
    append: bool = True,
    progress: Optional[Callable[[str], None]] = None,
) -> GateReport:
    """Run the sweep, compare against the trajectory, append, report.

    The new entry is appended (and the file rewritten) even when the
    run regresses -- the trajectory is the record, and hiding bad runs
    from it would defeat the point; the nonzero exit is the gate.
    """
    say = progress if progress is not None else (lambda message: None)
    trajectory = _load_trajectory(trajectory_path)
    baselines = _baselines(trajectory)

    results: List[Measurement] = []
    speedups: List[Dict[str, object]] = []
    for n_users in config.n_sweep:
        say(f"recording TPC/A stream N={n_users}")
        stream = record_tpca_stream(n_users, config.duration, config.seed)
        for reference_spec, fast_spec in config.pairs:
            pair_measurements = {}
            for spec in (reference_spec, fast_spec):
                say(f"measuring {spec} at N={n_users}")
                measurement = measure_replay(
                    spec,
                    stream,
                    repeats=config.repeats,
                    chunk=config.chunk,
                )
                results.append(measurement)
                pair_measurements[spec] = measurement
            reference = pair_measurements[reference_spec]
            fast = pair_measurements[fast_spec]
            speedups.append(
                {
                    "reference": reference_spec,
                    "fast": fast_spec,
                    "n_users": n_users,
                    "speedup": round(
                        fast.packets_per_sec
                        / max(reference.packets_per_sec, 1e-9),
                        2,
                    ),
                }
            )

    regressions: List[str] = []
    for measurement in results:
        key = measurement.key(config)
        baseline = baselines.get(key)
        if baseline is None or baseline <= 0:
            continue
        floor = (1.0 - config.threshold) * baseline
        if measurement.packets_per_sec < floor:
            drop = 1.0 - measurement.packets_per_sec / baseline
            regressions.append(
                f"{key}: {measurement.packets_per_sec:,.0f} pkts/sec"
                f" vs baseline {baseline:,.0f} ({drop:.1%} drop)"
            )

    entry: Dict[str, object] = {
        "date": datetime.date.today().isoformat(),
        "python": platform.python_version(),
        "config": {
            "n_sweep": list(config.n_sweep),
            "duration": config.duration,
            "seed": config.seed,
            "repeats": config.repeats,
            "chunk": config.chunk,
            "threshold": config.threshold,
        },
        "results": [measurement.as_dict() for measurement in results],
        "speedups": speedups,
        "regressions": list(regressions),
    }
    if append:
        trajectory["entries"].append(entry)
        with open(trajectory_path, "w", encoding="utf-8") as handle:
            json.dump(trajectory, handle, indent=1)
            handle.write("\n")
    return GateReport(
        entry=entry,
        regressions=regressions,
        trajectory_path=trajectory_path,
    )
