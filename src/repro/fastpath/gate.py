"""The benchmark-regression gate: packets/sec across PRs.

Every earlier ``BENCH_*.json`` artifact is a one-shot snapshot; nothing
compared run N against run N-1, so a wall-clock regression could land
silently as long as decisions stayed right.  ``bench-gate`` closes that
hole: it replays the same recorded TPC/A streams (common random
numbers, the house methodology) through the reference structures and
their ``fast-*`` twins, measures packets demultiplexed per second,
appends a dated entry to ``BENCH_trajectory.json``, and fails when any
measured configuration regresses more than ``threshold`` (default 10%)
against the most recent comparable entry.

Baselines are matched on the full measurement key -- algorithm spec,
connection count, stream duration, and seed -- so a ``--quick`` run
never gates against a full run's numbers.  Timing uses best-of-R
replays of a pre-recorded stream with the structure rebuilt per repeat,
which removes workload generation and warm-cache luck from the clock.

CI runs the gate warn-only (shared runners jitter well past 10%); the
hard gate is for local, same-machine trajectories.
"""

from __future__ import annotations

import dataclasses
import datetime
import json
import os
import platform
import time
from typing import Callable, Dict, List, Optional, Tuple

from ..core.pcb import PCB
from ..core.registry import make_algorithm
from ..workload.record import RecordedStream, record_tpca_stream

__all__ = [
    "CanaryConfig",
    "CanaryReport",
    "DEFAULT_PAIRS",
    "GateConfig",
    "GateReport",
    "MAX_SWEEP_USERS",
    "Measurement",
    "measure_replay",
    "run_canary",
    "run_gate",
    "QUICK_CONFIG",
    "SCALE_CONFIG",
    "SCALE_PAIRS",
]

#: (reference spec, fast twin spec) pairs the standard sweep compares.
DEFAULT_PAIRS: Tuple[Tuple[str, str], ...] = (
    ("linear", "fast-linear"),
    ("bsd", "fast-bsd"),
    ("mtf", "fast-mtf"),
    ("sequent:h=19", "fast-sequent:h=19"),
    ("hashed_mtf:h=19", "fast-hashed_mtf:h=19"),
)

#: Largest connection count the sweep accepts.  The TPC/A address plan
#: (``TPCAConfig.user_tuple``) assigns injective four-tuples well past
#: this, and the O(1) tier is specified to 10^6 connections; anything
#: larger is almost certainly a typo that would grind for hours, so it
#: is rejected up front instead of discovered at the third repeat.
MAX_SWEEP_USERS = 1_000_000


@dataclasses.dataclass(frozen=True)
class GateConfig:
    """Parameters of one bench-gate run."""

    pairs: Tuple[Tuple[str, str], ...] = DEFAULT_PAIRS
    #: Connection counts swept (the paper's N axis).
    n_sweep: Tuple[int, ...] = (100, 300, 1000)
    #: Simulated seconds of TPC/A traffic per stream.
    duration: float = 30.0
    seed: int = 7
    #: Timed replays per configuration; best-of-R is recorded.
    repeats: int = 3
    #: Packets per ``lookup_batch`` call during the replay.
    chunk: int = 256
    #: Fractional packets/sec drop that fails the gate.
    threshold: float = 0.10
    #: When set, every replay runs with a :class:`ConnectionReaper`
    #: (idle timeout in simulated seconds) advancing virtual time
    #: alongside the packet stream, so idle flows are reaped and the
    #: structure's memory stays bounded during million-connection
    #: sweeps.  Reaped runs get their own baseline key: reaping
    #: changes the workload, so they never gate against unreaped runs.
    reap_idle: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.pairs:
            raise ValueError("need at least one (reference, fast) pair")
        if not self.n_sweep:
            raise ValueError("need at least one connection count to sweep")
        for n_users in self.n_sweep:
            if not isinstance(n_users, int) or n_users < 1:
                raise ValueError(
                    f"connection counts must be positive integers,"
                    f" got {n_users!r}"
                )
            if n_users > MAX_SWEEP_USERS:
                raise ValueError(
                    f"connection count {n_users} exceeds the sweep bound"
                    f" {MAX_SWEEP_USERS}"
                )
        if self.repeats < 1:
            raise ValueError(f"repeats must be >= 1, got {self.repeats}")
        if self.chunk < 1:
            raise ValueError(f"chunk must be >= 1, got {self.chunk}")
        if not 0.0 < self.threshold < 1.0:
            raise ValueError(
                f"threshold must be in (0, 1), got {self.threshold}"
            )
        if self.reap_idle is not None and self.reap_idle <= 0:
            raise ValueError(
                f"reap_idle must be positive, got {self.reap_idle}"
            )


#: The reduced configuration behind ``bench-gate --quick``.
QUICK_CONFIG = GateConfig(
    n_sweep=(60, 200), duration=10.0, repeats=2
)

#: The million-connection tier behind ``bench-gate --scale``: the best
#: chained structure against the O(1) cuckoo table at 10^4-10^5
#: connections (pass ``--users 1000000`` for the full tier).  Short
#: streams and one repeat -- at this N the point is the *scaling shape*
#: (chained p99 examined grows with N/H, cuckoo stays flat), not
#: clock precision.
SCALE_PAIRS: Tuple[Tuple[str, str], ...] = (
    ("fast-sequent:h=19", "fast-cuckoo"),
)

SCALE_CONFIG = GateConfig(
    pairs=SCALE_PAIRS,
    n_sweep=(10_000, 100_000),
    duration=4.0,
    repeats=1,
    chunk=512,
)


@dataclasses.dataclass(frozen=True)
class Measurement:
    """Best-of-R replay throughput for one (spec, N) cell."""

    algorithm: str
    n_users: int
    packets: int
    best_seconds: float
    packets_per_sec: float
    mean_examined: float
    #: 99th percentile of PCBs examined per lookup -- deterministic
    #: (unlike the clock), so the canary's second axis.
    p99_examined: float = 0.0

    def key(self, config: GateConfig) -> str:
        """Baseline-matching key: spec + workload parameters."""
        key = (
            f"{self.algorithm}@n={self.n_users}"
            f";d={config.duration:g};seed={config.seed}"
        )
        if config.reap_idle is not None:
            key += f";reap={config.reap_idle:g}"
        return key

    def as_dict(self) -> Dict[str, object]:
        return {
            "algorithm": self.algorithm,
            "n_users": self.n_users,
            "packets": self.packets,
            "best_seconds": round(self.best_seconds, 6),
            "packets_per_sec": round(self.packets_per_sec, 1),
            "mean_examined": round(self.mean_examined, 4),
            "p99_examined": round(self.p99_examined, 1),
        }


def measure_replay(
    spec: str,
    stream: RecordedStream,
    *,
    repeats: int = 3,
    chunk: int = 256,
    reap_idle: Optional[float] = None,
) -> Measurement:
    """Time ``spec`` demultiplexing ``stream``; best-of-``repeats``.

    The structure is rebuilt and repopulated for every repeat (outside
    the timed region), so each timing starts from an identical cold
    state and only the lookup hot path is on the clock.

    With ``reap_idle`` set, a :class:`~repro.lifecycle.reaper
    .ConnectionReaper` rides along: virtual time advances uniformly
    across the replay (``stream.duration`` spread over the chunks) and
    flows idle longer than ``reap_idle`` simulated seconds are removed
    mid-replay, bounding the structure's live population the way a real
    stack's timers would.  Lifecycle hooks are per-lookup by contract,
    so reaped replays time the per-call path; the reaped/unreaped split
    in :meth:`Measurement.key` keeps their baselines separate.
    """
    from ..lifecycle.reaper import ConnectionReaper  # lazy: layering

    packets = list(stream.packets)
    chunks = [
        packets[start:start + chunk]
        for start in range(0, len(packets), chunk)
    ]
    best = float("inf")
    mean_examined = 0.0
    p99_examined = 0.0
    for _ in range(repeats):
        algorithm = make_algorithm(spec)
        for tup in stream.tuples:
            algorithm.insert(PCB(tup))
        reaper = (
            ConnectionReaper(algorithm, idle_timeout=reap_idle)
            if reap_idle is not None
            else None
        )
        dt = stream.duration / len(chunks) if chunks else 0.0
        lookup_batch = algorithm.lookup_batch
        start_time = time.perf_counter()
        for position, batch in enumerate(chunks):
            lookup_batch(batch)
            if reaper is not None:
                reaper.advance((position + 1) * dt)
        elapsed = time.perf_counter() - start_time
        best = min(best, elapsed)
        mean_examined = algorithm.stats.mean_examined
        p99_examined = float(
            algorithm.stats.combined().percentile(0.99)
        )
    return Measurement(
        algorithm=spec,
        n_users=stream.n_users,
        packets=len(packets),
        best_seconds=best,
        packets_per_sec=len(packets) / best if best > 0 else 0.0,
        mean_examined=mean_examined,
        p99_examined=p99_examined,
    )


@dataclasses.dataclass
class GateReport:
    """Outcome of one gate run: the appended entry plus verdicts."""

    entry: Dict[str, object]
    regressions: List[str]
    trajectory_path: str

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render_text(self) -> str:
        lines = [
            f"bench-gate {self.entry['date']}"
            f" (seed {self.entry['config']['seed']},"
            f" duration {self.entry['config']['duration']}s)"
        ]
        lines.append(
            f"  {'algorithm':<24} {'N':>5} {'packets':>8}"
            f" {'pkts/sec':>12} {'PCBs/pkt':>9}"
        )
        for result in self.entry["results"]:
            lines.append(
                f"  {result['algorithm']:<24} {result['n_users']:>5}"
                f" {result['packets']:>8}"
                f" {result['packets_per_sec']:>12,.0f}"
                f" {result['mean_examined']:>9.2f}"
            )
        lines.append("  speedups (fast vs reference):")
        for speedup in self.entry["speedups"]:
            lines.append(
                f"    {speedup['fast']:<24} N={speedup['n_users']:<5}"
                f" {speedup['speedup']:.2f}x"
            )
        if self.regressions:
            lines.append("  REGRESSIONS (>threshold drop in pkts/sec):")
            lines.extend(f"    {item}" for item in self.regressions)
        else:
            lines.append("  no regressions against recorded baseline")
        lines.append(f"  trajectory: {self.trajectory_path}")
        return "\n".join(lines)


def _load_trajectory(path: str) -> Dict[str, object]:
    if not os.path.exists(path):
        return {"entries": []}
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if isinstance(data, list):  # tolerate a bare-list file
        data = {"entries": data}
    data.setdefault("entries", [])
    return data


def _baselines(
    trajectory: Dict[str, object]
) -> Dict[str, float]:
    """Best recorded packets/sec per measurement key.

    The gate must compare against each key's trajectory *maximum*, not
    its latest entry: last-write-wins would let a sequence of
    sub-threshold drops ratchet the baseline down -- each run 9% slower
    than the one before it passes forever, compounding unnoticed.
    Against the maximum, slow drift accumulates until it trips the
    threshold once, exactly as a single large regression would.
    """
    baselines: Dict[str, float] = {}
    for entry in trajectory["entries"]:
        for result in entry.get("results", []):
            config = entry.get("config", {})
            key = (
                f"{result['algorithm']}@n={result['n_users']}"
                f";d={config.get('duration', 0):g}"
                f";seed={config.get('seed', 0)}"
            )
            reap_idle = config.get("reap_idle")
            if reap_idle is not None:
                key += f";reap={reap_idle:g}"
            value = float(result["packets_per_sec"])
            baselines[key] = max(baselines.get(key, value), value)
    return baselines


def run_gate(
    config: GateConfig = GateConfig(),
    trajectory_path: str = "BENCH_trajectory.json",
    *,
    append: bool = True,
    progress: Optional[Callable[[str], None]] = None,
) -> GateReport:
    """Run the sweep, compare against the trajectory, append, report.

    The new entry is appended (and the file rewritten) even when the
    run regresses -- the trajectory is the record, and hiding bad runs
    from it would defeat the point; the nonzero exit is the gate.
    """
    say = progress if progress is not None else (lambda message: None)
    trajectory = _load_trajectory(trajectory_path)
    baselines = _baselines(trajectory)

    results: List[Measurement] = []
    speedups: List[Dict[str, object]] = []
    for n_users in config.n_sweep:
        say(f"recording TPC/A stream N={n_users}")
        stream = record_tpca_stream(n_users, config.duration, config.seed)
        for reference_spec, fast_spec in config.pairs:
            pair_measurements = {}
            for spec in (reference_spec, fast_spec):
                say(f"measuring {spec} at N={n_users}")
                measurement = measure_replay(
                    spec,
                    stream,
                    repeats=config.repeats,
                    chunk=config.chunk,
                    reap_idle=config.reap_idle,
                )
                results.append(measurement)
                pair_measurements[spec] = measurement
            reference = pair_measurements[reference_spec]
            fast = pair_measurements[fast_spec]
            speedups.append(
                {
                    "reference": reference_spec,
                    "fast": fast_spec,
                    "n_users": n_users,
                    "speedup": round(
                        fast.packets_per_sec
                        / max(reference.packets_per_sec, 1e-9),
                        2,
                    ),
                }
            )

    regressions: List[str] = []
    for measurement in results:
        key = measurement.key(config)
        baseline = baselines.get(key)
        if baseline is None or baseline <= 0:
            continue
        floor = (1.0 - config.threshold) * baseline
        if measurement.packets_per_sec < floor:
            drop = 1.0 - measurement.packets_per_sec / baseline
            regressions.append(
                f"{key}: {measurement.packets_per_sec:,.0f} pkts/sec"
                f" vs baseline {baseline:,.0f} ({drop:.1%} drop)"
            )

    entry: Dict[str, object] = {
        "date": datetime.date.today().isoformat(),
        "python": platform.python_version(),
        "config": {
            "n_sweep": list(config.n_sweep),
            "duration": config.duration,
            "seed": config.seed,
            "repeats": config.repeats,
            "chunk": config.chunk,
            "threshold": config.threshold,
            "reap_idle": config.reap_idle,
        },
        "results": [measurement.as_dict() for measurement in results],
        "speedups": speedups,
        "regressions": list(regressions),
    }
    if append:
        trajectory["entries"].append(entry)
        with open(trajectory_path, "w", encoding="utf-8") as handle:
            json.dump(trajectory, handle, indent=1)
            handle.write("\n")
    return GateReport(
        entry=entry,
        regressions=regressions,
        trajectory_path=trajectory_path,
    )


# -- the canary gate ----------------------------------------------------
#
# ``bench-gate --canary`` answers a different question from the sweep:
# not "did the code get slower since last run" but "is this *candidate*
# algorithm safe to promote over the incumbent, on this traffic".  Both
# specs replay the same capture (mirrored traffic: common packets, down
# to the byte), and promotion requires the candidate to hold three
# lines at once:
#
# 1. **decisions** -- found/not-found per packet must match the
#    incumbent exactly; an algorithm that resolves different PCBs is
#    broken, not slow, and no throughput number redeems it;
# 2. **throughput** -- candidate packets/sec within ``pps_margin`` of
#    the incumbent (best-of-R timing, the noisy axis);
# 3. **p99 examined** -- within ``examined_margin`` of the incumbent
#    (plus a 1-PCB absolute grace for tiny tails), the deterministic
#    axis from the paper's own figure of merit.
#
# Live captures recorded by ``repro serve`` are the intended diet --
# this is how a structure earns its promotion on *real* traffic -- but
# any capture file (or a synthetic stream) works.

@dataclasses.dataclass(frozen=True)
class CanaryConfig:
    """Parameters of one canary comparison."""

    candidate: str
    incumbent: str = "fast-sequent:h=19"
    repeats: int = 3
    chunk: int = 256
    #: Fractional packets/sec shortfall the candidate may show.
    pps_margin: float = 0.05
    #: Fractional p99-examined excess the candidate may show.
    examined_margin: float = 0.10

    def __post_init__(self) -> None:
        if not self.candidate:
            raise ValueError("candidate spec must be non-empty")
        if not self.incumbent:
            raise ValueError("incumbent spec must be non-empty")
        if self.repeats < 1:
            raise ValueError(f"repeats must be >= 1, got {self.repeats}")
        if not 0.0 <= self.pps_margin < 1.0:
            raise ValueError(
                f"pps_margin must be in [0, 1), got {self.pps_margin}"
            )
        if self.examined_margin < 0.0:
            raise ValueError(
                f"examined_margin must be >= 0,"
                f" got {self.examined_margin}"
            )


def _found_trace(spec: str, stream: RecordedStream) -> List[bool]:
    """Per-packet found/not-found through ``spec`` (deterministic)."""
    algorithm = make_algorithm(spec)
    for tup in stream.tuples:
        algorithm.insert(PCB(tup))
    return [
        result.found
        for result in algorithm.lookup_batch(list(stream.packets))
    ]


@dataclasses.dataclass
class CanaryReport:
    """Verdict of one canary comparison."""

    config: CanaryConfig
    incumbent: Measurement
    candidate: Measurement
    decisions_match: bool
    blockers: List[str]
    capture: Dict[str, object]

    @property
    def promoted(self) -> bool:
        return not self.blockers

    @property
    def pps_ratio(self) -> float:
        return self.candidate.packets_per_sec / max(
            self.incumbent.packets_per_sec, 1e-9
        )

    def to_json(self) -> Dict[str, object]:
        return {
            "verdict": "promote" if self.promoted else "block",
            "incumbent": self.incumbent.as_dict(),
            "candidate": self.candidate.as_dict(),
            "decisions_match": self.decisions_match,
            "pps_ratio": round(self.pps_ratio, 4),
            "blockers": list(self.blockers),
            "capture": dict(self.capture),
            "margins": {
                "pps": self.config.pps_margin,
                "examined": self.config.examined_margin,
            },
        }

    def render_text(self) -> str:
        lines = [
            f"canary: {self.config.candidate}"
            f" vs incumbent {self.config.incumbent}",
            f"  capture: {self.capture.get('kind', '?')},"
            f" {self.capture.get('packet_count', '?')} packets,"
            f" {self.capture.get('connections', '?')} connections"
            f" (digest {str(self.capture.get('digest', ''))[:12]}...)",
            f"  {'':<12} {'pkts/sec':>12} {'PCBs/pkt':>9} {'p99':>6}",
        ]
        for label, m in (
            ("incumbent", self.incumbent),
            ("candidate", self.candidate),
        ):
            lines.append(
                f"  {label:<12} {m.packets_per_sec:>12,.0f}"
                f" {m.mean_examined:>9.2f} {m.p99_examined:>6.0f}"
            )
        lines.append(
            f"  throughput ratio: {self.pps_ratio:.2f}x"
            f" (floor {1.0 - self.config.pps_margin:.2f}x),"
            f" decisions {'match' if self.decisions_match else 'DIFFER'}"
        )
        if self.promoted:
            lines.append("  verdict: PROMOTE")
        else:
            lines.append("  verdict: BLOCK")
            lines.extend(f"    - {reason}" for reason in self.blockers)
        return "\n".join(lines)


def run_canary(
    stream: RecordedStream,
    config: CanaryConfig,
    *,
    progress: Optional[Callable[[str], None]] = None,
) -> CanaryReport:
    """A/B the candidate against the incumbent on one capture."""
    from ..workload.record import stream_digest

    say = progress if progress is not None else (lambda message: None)
    say(f"replaying capture through incumbent {config.incumbent}")
    incumbent = measure_replay(
        config.incumbent, stream,
        repeats=config.repeats, chunk=config.chunk,
    )
    say(f"replaying capture through candidate {config.candidate}")
    candidate = measure_replay(
        config.candidate, stream,
        repeats=config.repeats, chunk=config.chunk,
    )
    say("comparing decision traces")
    decisions_match = _found_trace(
        config.incumbent, stream
    ) == _found_trace(config.candidate, stream)

    blockers: List[str] = []
    if not decisions_match:
        blockers.append(
            "decision mismatch: candidate resolves different PCBs"
            " than the incumbent on this capture"
        )
    pps_floor = (1.0 - config.pps_margin) * incumbent.packets_per_sec
    if candidate.packets_per_sec < pps_floor:
        shortfall = 1.0 - candidate.packets_per_sec / max(
            incumbent.packets_per_sec, 1e-9
        )
        blockers.append(
            f"throughput: {candidate.packets_per_sec:,.0f} pkts/sec is"
            f" {shortfall:.1%} below incumbent"
            f" {incumbent.packets_per_sec:,.0f}"
            f" (margin {config.pps_margin:.0%})"
        )
    examined_ceiling = max(
        incumbent.p99_examined * (1.0 + config.examined_margin),
        incumbent.p99_examined + 1.0,
    )
    if candidate.p99_examined > examined_ceiling:
        blockers.append(
            f"p99 examined: {candidate.p99_examined:.0f} PCBs exceeds"
            f" ceiling {examined_ceiling:.1f}"
            f" (incumbent {incumbent.p99_examined:.0f},"
            f" margin {config.examined_margin:.0%})"
        )

    return CanaryReport(
        config=config,
        incumbent=incumbent,
        candidate=candidate,
        decisions_match=decisions_match,
        blockers=blockers,
        capture={
            "kind": stream.kind,
            "seed": stream.seed,
            "connections": len(stream.tuples),
            "packet_count": len(stream.packets),
            "duration": stream.duration,
            "digest": stream_digest(stream),
        },
    )
