"""Amortized batched lookups.

Every public ``lookup`` pays the template-method toll: an attribute
load for the profiler, one for the tracer, and a ``LookupRecord``
round-trip into the statistics.  Those costs are per *call*, not per
packet, so a NIC-style coalesced batch can amortize them:
:class:`BatchLookupMixin` overrides the
:meth:`~repro.core.base.DemuxAlgorithm.lookup_batch` entry point (whose
base implementation simply loops ``lookup``) with a tight loop that
hoists the hook checks out of the per-packet path while recording
statistics *identically* -- same records, same order, same histogram.

When a tracer, profiler, or lifecycle reaper is attached the mixin
falls back to the per-call path, because those hooks are defined per
lookup; batching never changes what observability (or reaping)
observes, only how fast the bare hot path runs.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..core.base import LookupResult
from ..core.stats import LookupRecord, PacketKind
from ..packet.addresses import FourTuple

__all__ = ["BatchLookupMixin", "as_packets"]

#: One inbound packet as the batch API consumes it.
Packet = Tuple[FourTuple, PacketKind]


def as_packets(
    keys: Sequence, kind: PacketKind = PacketKind.DATA
) -> List[Packet]:
    """Adapt a sequence of bare four-tuples (or packets) to packets.

    Convenience for callers holding plain key lists: four-tuples get
    the default ``kind``; ``(tuple, kind)`` pairs pass through.
    """
    packets: List[Packet] = []
    for item in keys:
        if isinstance(item, FourTuple):
            packets.append((item, kind))
        else:
            tup, item_kind = item
            packets.append((tup, item_kind))
    return packets


class BatchLookupMixin:
    """Tight-loop ``lookup_batch`` for the fast structures.

    Mixed in *before* :class:`~repro.core.base.DemuxAlgorithm`; relies
    only on the template-method contract (``_lookup`` + ``stats`` +
    optional ``tracer``/``_profiler``) plus the fast path's
    ``fastpath_counters``.
    """

    def lookup_batch(
        self, packets: Sequence[Packet]
    ) -> List[LookupResult]:
        tracer = self.tracer
        if (
            self._profiler is not None
            or self.lifecycle is not None
            or self.spans is not None
            or (tracer is not None and tracer.enabled)
        ):
            # Hooks are per-lookup by contract; take the exact path.
            return [self.lookup(tup, kind) for tup, kind in packets]
        # A structure may resolve the whole batch at once (the numpy
        # scan path); it returns None to take the generic tight loop.
        batch_impl = getattr(self, "_lookup_batch", None)
        results: Optional[List[LookupResult]] = (
            batch_impl(packets) if batch_impl is not None else None
        )
        if results is None:
            lookup = self._lookup
            results = [lookup(tup, kind) for tup, kind in packets]
        record = self.stats.record
        for result in results:
            record(
                LookupRecord(
                    examined=result.examined,
                    cache_hit=result.cache_hit,
                    found=result.pcb is not None,
                    kind=result.kind,
                )
            )
        counters = self.fastpath_counters
        counters.batch_calls += 1
        counters.batched_lookups += len(results)
        return results
