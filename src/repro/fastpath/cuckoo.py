"""A true O(1) demux backend: two-choice cuckoo table with pre-filters.

The chained structures the paper studies -- and their ``fast-`` twins
in :mod:`~repro.fastpath.algorithms` -- all degrade linearly in N/H:
at 10\N{SUPERSCRIPT FIVE}--10\N{SUPERSCRIPT SIX} connections even
``fast-sequent:h=19`` examines thousands of PCBs per packet.
:class:`FastCuckooDemux` bounds the worst case instead, in the style of
*Cuckoo++ Hash Tables* (PAPERS.md):

* **two-choice buckets** -- every key has exactly two candidate
  buckets (derived from an unseeded deterministic mix of its interned
  96-bit key) of ``slots`` entries each, so a lookup touches at most
  ``2 * slots`` slots plus the (tiny, usually empty) stash;
* **per-bucket pre-filter** -- each bucket keeps a counting multiset
  of the fingerprints of keys whose *primary* bucket it is but which
  were displaced into their secondary bucket.  A primary-bucket miss
  whose fingerprint is not in the pre-filter can never be in the
  second bucket, so clean misses and single-bucket hits never touch
  it (Cuckoo++'s trick for miss-heavy demux traffic);
* **bounded-kickout insert with a stash** -- inserts displace
  residents along a deterministic walk of at most ``kick`` steps;
  a walker that exhausts the bound parks in a small stash
  (``stash`` entries) that every lookup checks last;
* **incremental-friendly resize** -- when the stash would overflow or
  occupancy crosses 90%, the table doubles its bucket count and
  re-places every resident in deterministic iteration order.  The
  resize is a pure function of the insertion history, so decision
  traces stay reproducible, and the bucket arrays are rebuilt chunk
  by chunk off a captured item list (no reader-visible intermediate
  state).

Under the paper's pinned counting convention (a full key comparison is
one PCB examined; fingerprint checks, hash computation, and empty
slots cost zero -- Section 3.5 prices hashing as negligible next to
PCB memory traffic) a hit examines at most ``2 * slots + stash`` PCBs
regardless of N, and a pre-filtered miss examines 0.  Fingerprint
collisions can add the odd extra comparison; they are deterministic,
so golden traces pin them too.

Registry spec: ``fast-cuckoo`` (options ``buckets``, ``slots``,
``stash``, ``kick``), composing with sharding as
``sharded-fast-cuckoo:shards=8``.  Decision determinism is enforced by
the golden suite (``tests/test_cuckoo_golden.py``), the dict-oracle
property tier (``tests/property/test_cuckoo_properties.py``), and the
snapshot round-trip tests.
"""

from __future__ import annotations

import dataclasses
import struct
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from ..core.base import DuplicateConnectionError, LookupResult
from ..core.pcb import PCB
from ..core.stats import PacketKind
from ..packet.addresses import FourTuple
from .algorithms import _FastDemuxBase

__all__ = ["CuckooCounters", "FastCuckooDemux"]

#: 48-bit half-key split for the shared-memory wire format (the same
#: split :mod:`repro.fastpath.tables` uses for its numpy mirrors).
_HALF_BITS = 48
_HALF_MASK = (1 << _HALF_BITS) - 1


def _pack_key_pairs(buffer, offset: int, keys: List[int]) -> int:
    """Pack keys as little-endian ``(lo48, hi48)`` uint64 pairs."""
    if keys:
        flat: List[int] = []
        for key in keys:
            flat.append(key & _HALF_MASK)
            flat.append(key >> _HALF_BITS)
        struct.pack_into(f"<{2 * len(keys)}Q", buffer, offset, *flat)
    return offset + 16 * len(keys)

_MASK64 = (1 << 64) - 1


def _mix64(x: int) -> int:
    """The 64-bit finalizer from MurmurHash3 (deterministic, unseeded)."""
    x &= _MASK64
    x = ((x ^ (x >> 33)) * 0xFF51AFD7ED558CCD) & _MASK64
    x = ((x ^ (x >> 33)) * 0xC4CEB9FE1A85EC53) & _MASK64
    return x ^ (x >> 33)


def _spread(key: int) -> int:
    """64 well-mixed bits of the interned 96-bit four-tuple key."""
    return _mix64((key & _MASK64) ^ _mix64(key >> 64))


@dataclasses.dataclass
class CuckooCounters:
    """Cuckoo bookkeeping, separate from the pinned ``DemuxStats``.

    Like :class:`~repro.fastpath.keycache.FastpathCounters`, these
    never feed the paper's figure of merit; they exist so the
    observability plane can see how hard the table is working
    (kickout pressure, stash traffic, pre-filter effectiveness).
    """

    #: Individual resident displacements during insert walks.
    kickouts: int = 0
    #: Insert walks that displaced at least one resident.
    kickout_chains: int = 0
    #: Longest displacement walk seen (bounded by ``kick`` by design).
    max_kick_chain: int = 0
    #: Walkers parked in the stash after exhausting the kick bound.
    stash_inserts: int = 0
    #: Stash entries re-placed into buckets freed by removals.
    stash_drains: int = 0
    #: Primary-bucket misses where the pre-filter proved the second
    #: bucket could not hold the key (the probe it exists to avoid).
    prefilter_skips: int = 0
    #: Primary-bucket misses that had to probe the second bucket.
    prefilter_passes: int = 0
    #: Table doublings (stash overflow or occupancy > 90%).
    resizes: int = 0

    def as_dict(self) -> Dict[str, int]:
        """JSON-ready snapshot."""
        return {
            "kickouts": self.kickouts,
            "kickout_chains": self.kickout_chains,
            "max_kick_chain": self.max_kick_chain,
            "stash_inserts": self.stash_inserts,
            "stash_drains": self.stash_drains,
            "prefilter_skips": self.prefilter_skips,
            "prefilter_passes": self.prefilter_passes,
            "resizes": self.resizes,
        }


class FastCuckooDemux(_FastDemuxBase):
    """Two-choice cuckoo table with Cuckoo++-style bucket pre-filters."""

    name = "fast-cuckoo"

    def __init__(
        self,
        buckets: int = 16,
        slots: int = 4,
        stash: int = 8,
        kick: int = 64,
    ) -> None:
        if buckets < 2:
            raise ValueError(f"buckets must be >= 2, got {buckets}")
        if slots < 1:
            raise ValueError(f"slots must be >= 1, got {slots}")
        if stash < 1:
            raise ValueError(f"stash must be >= 1, got {stash}")
        if kick < 1:
            raise ValueError(f"kick must be >= 1, got {kick}")
        super().__init__()
        self.cuckoo_counters = CuckooCounters()
        self._bucket_size = slots
        self._stash_bound = stash
        self._max_kicks = kick
        self._initial_buckets = buckets
        self._kick_cursor = 0
        self._alloc(buckets)

    # -- geometry -------------------------------------------------------

    def _alloc(self, nbuckets: int) -> None:
        """Fresh empty arrays at ``nbuckets`` (init, resize, restore)."""
        self._nbuckets = nbuckets
        capacity = nbuckets * self._bucket_size
        self._slot_keys: List[Optional[int]] = [None] * capacity
        self._slot_pcbs: List[Optional[PCB]] = [None] * capacity
        #: Per-slot fingerprints; 0 marks an empty slot (fingerprints
        #: are 1..255, so the sentinel can never collide).
        self._slot_fps: List[int] = [0] * capacity
        #: Per-bucket counting multiset: fingerprint -> number of keys
        #: whose primary bucket is this one but who live in their
        #: secondary bucket.  Invariant re-derivable from the layout.
        self._prefilter: List[Dict[int, int]] = [
            {} for _ in range(nbuckets)
        ]
        self._stash: List[Tuple[int, PCB, int]] = []

    def _geometry(self, key: int) -> Tuple[int, int, int]:
        """``(fingerprint, primary bucket, secondary bucket)`` of a key.

        A pure unseeded function of the key and the current bucket
        count; the secondary bucket is distinct from the primary by
        construction (``nbuckets >= 2`` always).
        """
        h = _spread(key)
        fp = (h >> 8) % 255 + 1
        nb = self._nbuckets
        b1 = h % nb
        b2 = (b1 + 1 + (h >> 32) % (nb - 1)) % nb
        return fp, b1, b2

    @property
    def nbuckets(self) -> int:
        """Current bucket count (doubles on resize)."""
        return self._nbuckets

    @property
    def bucket_size(self) -> int:
        """Slots per bucket (fixed for the structure's lifetime)."""
        return self._bucket_size

    @property
    def stash_bound(self) -> int:
        """Maximum stash entries before a resize is forced."""
        return self._stash_bound

    @property
    def max_kicks(self) -> int:
        """Displacement-walk bound per insert."""
        return self._max_kicks

    @property
    def capacity(self) -> int:
        """Total bucket slots (``nbuckets * bucket_size``)."""
        return self._nbuckets * self._bucket_size

    @property
    def load_factor(self) -> float:
        """Live connections over bucket capacity (stash included)."""
        return len(self._present) / self.capacity

    @property
    def stash_occupancy(self) -> int:
        """Entries currently parked in the stash."""
        return len(self._stash)

    def cuckoo_metrics(self) -> Dict[str, float]:
        """Counters plus derived gauges, for the observability plane."""
        data: Dict[str, float] = dict(self.cuckoo_counters.as_dict())
        data["stash_occupancy"] = len(self._stash)
        data["load_factor"] = round(self.load_factor, 4)
        gated = (
            self.cuckoo_counters.prefilter_skips
            + self.cuckoo_counters.prefilter_passes
        )
        data["prefilter_skip_rate"] = (
            round(self.cuckoo_counters.prefilter_skips / gated, 4)
            if gated
            else 0.0
        )
        return data

    def describe(self) -> str:
        return (
            f"{self.name} ({self._nbuckets}x{self._bucket_size} slots,"
            f" {len(self)} PCBs, load {self.load_factor:.2f},"
            f" stash {len(self._stash)}/{self._stash_bound})"
        )

    # -- slot primitives ------------------------------------------------

    def _put(self, index: int, key: int, pcb: PCB, fp: int) -> None:
        self._slot_keys[index] = key
        self._slot_pcbs[index] = pcb
        self._slot_fps[index] = fp

    def _clear(self, index: int) -> None:
        self._slot_keys[index] = None
        self._slot_pcbs[index] = None
        self._slot_fps[index] = 0

    def _free_in(self, bucket: int) -> int:
        """Index of the first empty slot in ``bucket``, or -1."""
        base = bucket * self._bucket_size
        fps = self._slot_fps
        for index in range(base, base + self._bucket_size):
            if fps[index] == 0:
                return index
        return -1

    def _find_in(self, bucket: int, key: int) -> int:
        """Index of ``key`` in ``bucket``, or -1 (no stats touched)."""
        base = bucket * self._bucket_size
        keys = self._slot_keys
        for index in range(base, base + self._bucket_size):
            if keys[index] == key:
                return index
        return -1

    def _prefilter_add(self, bucket: int, fp: int) -> None:
        table = self._prefilter[bucket]
        table[fp] = table.get(fp, 0) + 1

    def _prefilter_remove(self, bucket: int, fp: int) -> None:
        table = self._prefilter[bucket]
        count = table.get(fp, 0) - 1
        if count > 0:
            table[fp] = count
        else:
            table.pop(fp, None)

    # -- the decision paths ---------------------------------------------

    def _lookup(self, tup: FourTuple, kind: PacketKind) -> LookupResult:
        key, _ = self._keycache.probe(tup)
        fp, b1, b2 = self._geometry(key)
        keys = self._slot_keys
        fps = self._slot_fps
        slots = self._bucket_size
        examined = 0
        base = b1 * slots
        for index in range(base, base + slots):
            if fps[index] == fp:
                examined += 1
                if keys[index] == key:
                    return LookupResult(
                        self._slot_pcbs[index], examined,
                        cache_hit=False, kind=kind,
                    )
        # Primary bucket missed: the pre-filter proves whether the
        # secondary bucket can possibly hold this key.
        if self._prefilter[b1].get(fp):
            self.cuckoo_counters.prefilter_passes += 1
            base = b2 * slots
            for index in range(base, base + slots):
                if fps[index] == fp:
                    examined += 1
                    if keys[index] == key:
                        return LookupResult(
                            self._slot_pcbs[index], examined,
                            cache_hit=False, kind=kind,
                        )
        else:
            self.cuckoo_counters.prefilter_skips += 1
        if self._stash:
            for stash_key, stash_pcb, stash_fp in self._stash:
                if stash_fp == fp:
                    examined += 1
                    if stash_key == key:
                        return LookupResult(
                            stash_pcb, examined,
                            cache_hit=False, kind=kind,
                        )
        return LookupResult(None, examined, cache_hit=False, kind=kind)

    def _insert(self, pcb: PCB) -> None:
        key, _ = self._keycache.entry(pcb.four_tuple)
        if key in self._present:
            raise DuplicateConnectionError(
                f"duplicate connection {pcb.four_tuple}"
            )
        # Proactive growth: two-choice cuckoo with 4-slot buckets
        # sustains ~95% occupancy, but kickout walks lengthen sharply
        # past 90% -- double before the walk gets pathological.
        if 10 * (len(self._present) + 1) > 9 * self.capacity:
            self._resize(self._nbuckets * 2)
        if not self._place(key, pcb):
            self._resize(self._nbuckets * 2)
        self._present.add(key)

    def _remove(self, tup: FourTuple) -> PCB:
        key, _ = self._keycache.probe(tup)
        if key not in self._present:
            raise KeyError(tup)
        fp, b1, b2 = self._geometry(key)
        index = self._find_in(b1, key)
        if index >= 0:
            pcb = self._slot_pcbs[index]
            self._clear(index)
        else:
            index = self._find_in(b2, key)
            if index >= 0:
                pcb = self._slot_pcbs[index]
                self._clear(index)
                self._prefilter_remove(b1, fp)
            else:
                pcb = self._stash_remove(key)
        self._present.discard(key)
        # Same eviction contract as every fast structure: the interned
        # memo dies with the connection (see KeyCache).
        self._keycache.evict(tup)
        self._drain_stash()
        return pcb

    def _stash_remove(self, key: int) -> PCB:
        for position, (stash_key, pcb, _fp) in enumerate(self._stash):
            if stash_key == key:
                del self._stash[position]
                return pcb
        # _present said live, buckets and stash disagree: impossible
        # unless internal state is corrupt.
        raise AssertionError(f"key {key:#x} live but not resident")

    # -- placement ------------------------------------------------------

    def _place(self, key: int, pcb: PCB) -> bool:
        """Place a key; ``False`` if it overflowed the stash bound.

        The caller resizes on ``False``.  Placement order (primary
        free slot, secondary free slot, bounded kickout walk, stash)
        and the rotating victim cursor are deterministic, so the
        physical layout is a pure function of the insertion history.
        """
        fp, b1, b2 = self._geometry(key)
        if self._place_free(key, pcb, fp, b1, b2):
            return True
        self._kick_walk(key, pcb, fp, b1)
        return len(self._stash) <= self._stash_bound

    def _place_free(
        self, key: int, pcb: PCB, fp: int, b1: int, b2: int
    ) -> bool:
        index = self._free_in(b1)
        if index >= 0:
            self._put(index, key, pcb, fp)
            return True
        index = self._free_in(b2)
        if index >= 0:
            self._put(index, key, pcb, fp)
            self._prefilter_add(b1, fp)
            return True
        return False

    def _kick_walk(self, key: int, pcb: PCB, fp: int, b1: int) -> None:
        """Displace residents until someone finds a free slot.

        Terminates in at most ``max_kicks`` displacements (satellite
        property: kickout-chain termination); the final walker parks
        in the stash if the bound is exhausted.
        """
        counters = self.cuckoo_counters
        counters.kickout_chains += 1
        slots = self._bucket_size
        cur_key, cur_pcb, cur_fp, cur_b1 = key, pcb, fp, b1
        target = b1
        for depth in range(1, self._max_kicks + 1):
            index = target * slots + self._kick_cursor % slots
            self._kick_cursor += 1
            vic_key = self._slot_keys[index]
            vic_pcb = self._slot_pcbs[index]
            vic_fp = self._slot_fps[index]
            _fp, vic_b1, vic_b2 = self._geometry(vic_key)
            self._put(index, cur_key, cur_pcb, cur_fp)
            if target != cur_b1:
                self._prefilter_add(cur_b1, cur_fp)
            if target != vic_b1:
                self._prefilter_remove(vic_b1, vic_fp)
            counters.kickouts += 1
            cur_key, cur_pcb, cur_fp, cur_b1 = (
                vic_key, vic_pcb, vic_fp, vic_b1,
            )
            target = vic_b2 if target == vic_b1 else vic_b1
            free = self._free_in(target)
            if free >= 0:
                self._put(free, cur_key, cur_pcb, cur_fp)
                if target != cur_b1:
                    self._prefilter_add(cur_b1, cur_fp)
                if depth > counters.max_kick_chain:
                    counters.max_kick_chain = depth
                return
        if self._max_kicks > counters.max_kick_chain:
            counters.max_kick_chain = self._max_kicks
        counters.stash_inserts += 1
        self._stash.append((cur_key, cur_pcb, cur_fp))

    def _drain_stash(self) -> None:
        """Move stash entries into slots a removal just freed.

        One deterministic pass in stash order, free-slot placement
        only (no kickouts on the remove path); entries that still
        don't fit stay stashed in order.
        """
        if not self._stash:
            return
        remaining: List[Tuple[int, PCB, int]] = []
        for stash_key, stash_pcb, stash_fp in self._stash:
            _fp, b1, b2 = self._geometry(stash_key)
            if self._place_free(stash_key, stash_pcb, stash_fp, b1, b2):
                self.cuckoo_counters.stash_drains += 1
            else:
                remaining.append((stash_key, stash_pcb, stash_fp))
        self._stash = remaining

    def _resize(self, nbuckets: int) -> None:
        """Double (and re-place everything) until the population fits.

        Residents are captured in deterministic iteration order and
        re-placed through the normal placement path at the new
        geometry; a rebuild that would itself overflow the stash
        doubles again.  Decision state after a resize is therefore
        still a pure function of the insertion history.
        """
        items: List[Tuple[int, PCB]] = [
            (key, pcb) for key, pcb in self._iter_items()
        ]
        while True:
            self.cuckoo_counters.resizes += 1
            self._alloc(nbuckets)
            fits = True
            for key, pcb in items:
                if not self._place(key, pcb):
                    fits = False
                    break
            if fits and len(self._stash) <= self._stash_bound:
                return
            nbuckets *= 2

    def _iter_items(self) -> Iterator[Tuple[int, PCB]]:
        """(key, PCB) pairs in deterministic structure order."""
        keys = self._slot_keys
        fps = self._slot_fps
        pcbs = self._slot_pcbs
        for index in range(len(keys)):
            if fps[index]:
                yield keys[index], pcbs[index]
        for key, pcb, _fp in self._stash:
            yield key, pcb

    def __iter__(self) -> Iterator[PCB]:
        """Bucket-major slot order, then stash order (deterministic)."""
        for _key, pcb in self._iter_items():
            yield pcb

    # -- shared-memory export/attach ------------------------------------

    #: Export header: nbuckets, bucket_size, stash_bound, max_kicks,
    #: kick_cursor, stash length -- six little-endian uint64s.
    _SHARED_HEADER = struct.Struct("<6Q")

    def shared_size(self) -> int:
        """Bytes :meth:`export_shared` writes for the current layout."""
        return (
            self._SHARED_HEADER.size
            + self.capacity  # per-slot occupancy fingerprints
            + 16 * self.capacity  # (lo48, hi48) key pairs
            + 16 * len(self._stash)
        )

    def export_shared(self, buffer, offset: int = 0) -> int:
        """Pack the physical slot layout into ``buffer`` at ``offset``.

        The layout -- not an insert stream -- is what crosses the
        process boundary: kickout history cannot be replayed, so the
        attaching side re-imposes each slot verbatim (the same
        contract as the snapshot restore hooks).  PCBs stay
        process-local; keys are the 96-bit bijection.  Returns the
        offset past the written block.
        """
        capacity = self.capacity
        offset = self._pack_header(buffer, offset)
        struct.pack_into(
            f"<{capacity}B", buffer, offset, *self._slot_fps
        )
        offset += capacity
        offset = _pack_key_pairs(
            buffer,
            offset,
            [key if key is not None else 0 for key in self._slot_keys],
        )
        return _pack_key_pairs(
            buffer, offset, [key for key, _pcb, _fp in self._stash]
        )

    def _pack_header(self, buffer, offset: int) -> int:
        self._SHARED_HEADER.pack_into(
            buffer,
            offset,
            self._nbuckets,
            self._bucket_size,
            self._stash_bound,
            self._max_kicks,
            self._kick_cursor,
            len(self._stash),
        )
        return offset + self._SHARED_HEADER.size

    @classmethod
    def attach_shared(
        cls,
        buffer,
        offset: int,
        pcb_for: Callable[[int], "PCB"],
    ) -> Tuple["FastCuckooDemux", int]:
        """Rebuild a structure from an :meth:`export_shared` block.

        ``pcb_for(key)`` supplies the attaching process's own PCB for
        each live key.  Placement is re-imposed slot by slot through
        :meth:`restore_slot`/:meth:`restore_stash`, which re-derive
        the pre-filters and validate home buckets, so a corrupt block
        raises instead of silently mis-homing a flow.  Returns
        ``(structure, offset_past_block)``.
        """
        (
            nbuckets,
            bucket_size,
            stash_bound,
            max_kicks,
            kick_cursor,
            stash_len,
        ) = cls._SHARED_HEADER.unpack_from(buffer, offset)
        offset += cls._SHARED_HEADER.size
        structure = cls(
            buckets=nbuckets,
            slots=bucket_size,
            stash=stash_bound,
            kick=max_kicks,
        )
        capacity = structure.capacity
        fps = struct.unpack_from(f"<{capacity}B", buffer, offset)
        offset += capacity
        for index in range(capacity):
            lo, hi = struct.unpack_from("<2Q", buffer, offset)
            offset += 16
            if fps[index]:
                structure.restore_slot(
                    index, pcb_for((hi << 48) | lo)
                )
        for _ in range(stash_len):
            lo, hi = struct.unpack_from("<2Q", buffer, offset)
            offset += 16
            structure.restore_stash(pcb_for((hi << 48) | lo))
        structure._kick_cursor = kick_cursor
        return structure, offset

    # -- snapshot restore hooks (see repro.recovery.snapshot) -----------

    def restore_slot(self, index: int, pcb: PCB) -> None:
        """Re-impose one captured bucket slot verbatim.

        Kickout history cannot be replayed from an insert stream, so
        restore re-creates the physical layout instead; pre-filters
        are re-derived here (they are a pure function of placement).
        """
        key, _ = self._keycache.entry(pcb.four_tuple)
        fp, b1, b2 = self._geometry(key)
        bucket = index // self._bucket_size
        if bucket not in (b1, b2):
            raise ValueError(
                f"slot {index} is in bucket {bucket}, not a home bucket"
                f" of {pcb.four_tuple}"
            )
        if self._slot_fps[index]:
            raise ValueError(f"slot {index} restored twice")
        self._put(index, key, pcb, fp)
        if bucket != b1:
            self._prefilter_add(b1, fp)
        self._present.add(key)

    def restore_stash(self, pcb: PCB) -> None:
        """Re-impose one captured stash entry (in capture order)."""
        if len(self._stash) >= self._stash_bound:
            raise ValueError(
                f"stash overflows its bound {self._stash_bound} on restore"
            )
        key, _ = self._keycache.entry(pcb.four_tuple)
        fp, _b1, _b2 = self._geometry(key)
        self._stash.append((key, pcb, fp))
        self._present.add(key)
