"""Publish fast-path counters through the observability registry.

The fast structures keep their own bookkeeping
(:class:`~repro.fastpath.keycache.FastpathCounters`: key interning,
chain-memo traffic, batch amortization) separate from the pinned
``DemuxStats``.  :func:`publish_fastpath` exports those counters as
gauges into a :class:`repro.obs.metrics.MetricsRegistry`, alongside the
demux statistics the existing exporters already publish, so a
``simulate --metrics-out`` run on a ``fast-*`` spec shows how hard the
fast-path machinery worked.

Duck-typed like the other exporters: any object with a
``fastpath_counters`` attribute participates; everything else is a
no-op (the function returns ``False`` so callers can tell).
"""

from __future__ import annotations

from typing import Optional

__all__ = ["publish_fastpath"]


def publish_fastpath(
    registry, algorithm, *, label: Optional[str] = None
) -> bool:
    """Export ``algorithm``'s fast-path counters into ``registry``.

    Returns ``True`` when the algorithm carries fast-path counters
    (itself, or any shard of a sharded facade), ``False`` otherwise.
    """
    published = False
    name = label if label is not None else getattr(algorithm, "name", "demux")
    counters = getattr(algorithm, "fastpath_counters", None)
    if counters is not None:
        gauges = registry.gauge(
            "fastpath_counters",
            "fast-path key interning and batch amortization",
        )
        for counter_name, value in counters.as_dict().items():
            gauges.set(value, algorithm=name, counter=counter_name)
        published = True
    published |= _publish_cuckoo(registry, algorithm, name, shard=None)

    shards = getattr(algorithm, "shards", None)
    if shards is not None:
        for index, shard in enumerate(shards):
            published |= _publish_cuckoo(
                registry, shard, name, shard=str(index)
            )
            shard_counters = getattr(shard, "fastpath_counters", None)
            if shard_counters is None:
                continue
            gauges = registry.gauge(
                "fastpath_shard_counters",
                "per-shard fast-path counters",
            )
            for counter_name, value in shard_counters.as_dict().items():
                gauges.set(
                    value,
                    algorithm=name,
                    shard=str(index),
                    counter=counter_name,
                )
            published = True
    return published


def _publish_cuckoo(registry, algorithm, name: str, *, shard) -> bool:
    """Export cuckoo table health (kickouts, stash, pre-filter rate).

    Duck-typed on ``cuckoo_metrics`` like the rest of the exporter;
    shardless structures publish without a ``shard`` label so existing
    dashboards keying on (algorithm, metric) keep working.
    """
    metrics_fn = getattr(algorithm, "cuckoo_metrics", None)
    if metrics_fn is None:
        return False
    gauges = registry.gauge(
        "cuckoo_table",
        "cuckoo table health: kickouts, stash, pre-filter, load",
    )
    labels = {"algorithm": name}
    if shard is not None:
        labels["shard"] = shard
    for metric_name, value in metrics_fn().items():
        gauges.set(value, metric=metric_name, **labels)
    return True
