"""Flat array-backed slot tables for the demux fast path.

The reference structures store PCBs in Python lists and walk them with
an interpreted ``for`` loop comparing four-tuples.  A :class:`SlotTable`
keeps the same *logical* list as two parallel flat arrays -- interned
integer keys and their PCBs -- so the scan that the paper prices as
"PCBs examined" becomes a single C-speed ``list.index`` over small
integers.  Because the interned key is a bijection of the four-tuple,
the index found (and therefore the examined count, the found PCB, and
every cache/move-to-front decision derived from it) is exactly what the
reference scan computes.

:class:`CachedSlot` is the flat-array rendering of the paper's
single-entry caches: one interned key plus one PCB reference, probed
with a single integer comparison.
"""

from __future__ import annotations

import struct
from typing import Callable, List, Optional, Sequence, Tuple

from ..core.pcb import PCB

try:  # numpy is a hard dependency, but the fallback keeps the demux
    import numpy as _np  # alive (and decision-identical) without it.
except ImportError:  # pragma: no cover - exercised via monkeypatch
    _np = None

__all__ = ["CachedSlot", "SlotTable"]

#: The interned key is 96 bits; numpy has no uint96, so the mirror
#: arrays split it into two uint64 halves of 48 bits each (both halves
#: fit with headroom, and equality of both halves is key equality).
_HALF_BITS = 48
_HALF_MASK = (1 << _HALF_BITS) - 1

#: Below this table size ``list.index`` beats the mirror upkeep.
_VECTOR_MIN_TABLE = 16

#: Comparison-matrix budget (query rows x table columns) per block, so
#: a huge batch against a huge table stays cache- and memory-friendly.
_VECTOR_BLOCK = 1 << 22


class SlotTable:
    """One logical PCB list as parallel ``keys``/``pcbs`` arrays.

    Invariant: ``keys[i]`` is always ``pcbs[i].four_tuple.key_bits()``;
    both arrays mutate together, head-first like the historical BSD
    list (new entries at index 0).

    For batched lookups the table lazily maintains a numpy mirror of
    ``keys`` (two uint64 half-key arrays, rebuilt only after a
    mutation), so :meth:`scan_batch` resolves a whole chunk with one
    vectorized comparison instead of one ``list.index`` per packet.
    """

    __slots__ = (
        "keys", "pcbs", "_version", "_mirror_version",
        "_mirror_lo", "_mirror_hi",
    )

    def __init__(self) -> None:
        self.keys: List[int] = []
        self.pcbs: List[PCB] = []
        #: Bumped on every mutation; the numpy mirror notes the version
        #: it was built at and rebuilds only when stale.
        self._version = 0
        self._mirror_version = -1
        self._mirror_lo = None
        self._mirror_hi = None

    def __len__(self) -> int:
        return len(self.keys)

    def scan(self, key: int) -> Tuple[int, int]:
        """Scan for ``key``; returns ``(index, examined)``.

        ``index`` is -1 on a miss; ``examined`` follows the pinned
        counting convention -- position + 1 on a hit, the full table
        length on a miss -- exactly as the reference linear walk.
        """
        try:
            index = self.keys.index(key)
        except ValueError:
            return -1, len(self.keys)
        return index, index + 1

    def scan_batch(
        self, keys: Sequence[int]
    ) -> List[Tuple[int, int]]:
        """Vectorized :meth:`scan` of many keys against one table state.

        Returns one ``(index, examined)`` pair per query key with
        *exactly* the semantics of calling :meth:`scan` in a loop --
        first-match index (or -1) and the pinned examined count -- so
        callers may substitute it freely anywhere the table is not
        mutated between the scans.  Uses the numpy mirror when numpy is
        available and the table is big enough to profit; otherwise (or
        when numpy is absent) falls back to the loop, decision-
        identically.
        """
        n = len(self.keys)
        if _np is None or n < _VECTOR_MIN_TABLE or len(keys) < 2:
            return [self.scan(key) for key in keys]
        mirror_lo, mirror_hi = self._mirrors()
        nqueries = len(keys)
        query_lo = _np.fromiter(
            (key & _HALF_MASK for key in keys),
            dtype=_np.uint64, count=nqueries,
        )
        query_hi = _np.fromiter(
            (key >> _HALF_BITS for key in keys),
            dtype=_np.uint64, count=nqueries,
        )
        results: List[Tuple[int, int]] = []
        step = max(1, _VECTOR_BLOCK // n)
        for start in range(0, nqueries, step):
            equal = mirror_lo[None, :] == query_lo[start:start + step, None]
            equal &= mirror_hi[None, :] == query_hi[start:start + step, None]
            found = equal.any(axis=1)
            first = equal.argmax(axis=1)
            for hit, index in zip(found.tolist(), first.tolist()):
                results.append((index, index + 1) if hit else (-1, n))
        return results

    def _mirrors(self):
        """The (lo, hi) uint64 half-key arrays, rebuilt if stale."""
        if self._mirror_version != self._version:
            keys = self.keys
            n = len(keys)
            self._mirror_lo = _np.fromiter(
                (key & _HALF_MASK for key in keys),
                dtype=_np.uint64, count=n,
            )
            self._mirror_hi = _np.fromiter(
                (key >> _HALF_BITS for key in keys),
                dtype=_np.uint64, count=n,
            )
            self._mirror_version = self._version
        return self._mirror_lo, self._mirror_hi

    # -- shared-memory export/attach ------------------------------------

    def shared_size(self) -> int:
        """Bytes :meth:`export_shared` writes for this table."""
        return 16 * len(self.keys)

    def export_shared(self, buffer, offset: int = 0) -> int:
        """Pack the key array into ``buffer`` at ``offset``.

        Wire format: one little-endian ``(lo48, hi48)`` uint64 pair
        per entry, in table order -- the same half-key split the numpy
        mirrors use, so an attaching process can serve vectorized
        scans as views straight over the shared buffer.  Returns the
        offset past the written block.  PCB references are *not*
        exported (they are process-local); the attaching side rebuilds
        them from the keys, which are a bijection of the four-tuple.
        """
        n = len(self.keys)
        if n:
            flat: List[int] = []
            for key in self.keys:
                flat.append(key & _HALF_MASK)
                flat.append(key >> _HALF_BITS)
            struct.pack_into(f"<{2 * n}Q", buffer, offset, *flat)
        return offset + 16 * n

    @classmethod
    def attach_shared(
        cls,
        buffer,
        offset: int,
        count: int,
        pcb_for: Callable[[int], PCB],
    ) -> Tuple["SlotTable", int]:
        """Rebuild a table from an :meth:`export_shared` block.

        ``pcb_for(key)`` supplies the PCB for each rebuilt entry (the
        attaching process owns its own PCB objects).  When numpy is
        available the vectorized-scan mirrors are installed as views
        *over the shared buffer itself* -- the attached table's first
        batched scans read key halves directly out of shared memory
        with zero copies; the first mutation bumps the version and the
        mirrors rebuild privately, exactly like any stale mirror.
        Returns ``(table, offset_past_block)``.
        """
        table = cls()
        if count:
            flat = struct.unpack_from(f"<{2 * count}Q", buffer, offset)
            table.keys = [
                (flat[2 * i + 1] << _HALF_BITS) | flat[2 * i]
                for i in range(count)
            ]
            table.pcbs = [pcb_for(key) for key in table.keys]
            if _np is not None:
                pairs = _np.frombuffer(
                    buffer, dtype=_np.uint64, count=2 * count, offset=offset
                )
                table._mirror_lo = pairs[0::2]
                table._mirror_hi = pairs[1::2]
                table._mirror_version = table._version
        return table, offset + 16 * count

    def push_front(self, key: int, pcb: PCB) -> None:
        """Insert at the head (historical BSD insert position)."""
        self.keys.insert(0, key)
        self.pcbs.insert(0, pcb)
        self._version += 1

    def remove_key(self, key: int) -> PCB:
        """Remove and return the PCB stored under ``key``.

        Raises ``ValueError`` if absent; callers gate on their own
        membership set first, mirroring the reference structures.
        """
        index = self.keys.index(key)
        del self.keys[index]
        pcb = self.pcbs[index]
        del self.pcbs[index]
        self._version += 1
        return pcb

    def move_to_front(self, index: int) -> None:
        """Hoist the entry at ``index`` to the head (MTF heuristic)."""
        if index:
            key = self.keys[index]
            del self.keys[index]
            self.keys.insert(0, key)
            pcb = self.pcbs[index]
            del self.pcbs[index]
            self.pcbs.insert(0, pcb)
            self._version += 1


class CachedSlot:
    """A single-entry cache as an (interned key, PCB) pair.

    ``key`` is ``None`` while the slot is empty -- probing an empty
    slot costs nothing, per the counting convention.
    """

    __slots__ = ("key", "pcb")

    def __init__(self) -> None:
        self.key: Optional[int] = None
        self.pcb: Optional[PCB] = None

    def set(self, key: int, pcb: PCB) -> None:
        self.key = key
        self.pcb = pcb

    def clear(self) -> None:
        self.key = None
        self.pcb = None

    def invalidate_if(self, key: int) -> None:
        """Clear the slot when it caches ``key`` (removal hygiene)."""
        if self.key == key:
            self.clear()
