"""Flat array-backed slot tables for the demux fast path.

The reference structures store PCBs in Python lists and walk them with
an interpreted ``for`` loop comparing four-tuples.  A :class:`SlotTable`
keeps the same *logical* list as two parallel flat arrays -- interned
integer keys and their PCBs -- so the scan that the paper prices as
"PCBs examined" becomes a single C-speed ``list.index`` over small
integers.  Because the interned key is a bijection of the four-tuple,
the index found (and therefore the examined count, the found PCB, and
every cache/move-to-front decision derived from it) is exactly what the
reference scan computes.

:class:`CachedSlot` is the flat-array rendering of the paper's
single-entry caches: one interned key plus one PCB reference, probed
with a single integer comparison.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.pcb import PCB

__all__ = ["CachedSlot", "SlotTable"]


class SlotTable:
    """One logical PCB list as parallel ``keys``/``pcbs`` arrays.

    Invariant: ``keys[i]`` is always ``pcbs[i].four_tuple.key_bits()``;
    both arrays mutate together, head-first like the historical BSD
    list (new entries at index 0).
    """

    __slots__ = ("keys", "pcbs")

    def __init__(self) -> None:
        self.keys: List[int] = []
        self.pcbs: List[PCB] = []

    def __len__(self) -> int:
        return len(self.keys)

    def scan(self, key: int) -> Tuple[int, int]:
        """Scan for ``key``; returns ``(index, examined)``.

        ``index`` is -1 on a miss; ``examined`` follows the pinned
        counting convention -- position + 1 on a hit, the full table
        length on a miss -- exactly as the reference linear walk.
        """
        try:
            index = self.keys.index(key)
        except ValueError:
            return -1, len(self.keys)
        return index, index + 1

    def push_front(self, key: int, pcb: PCB) -> None:
        """Insert at the head (historical BSD insert position)."""
        self.keys.insert(0, key)
        self.pcbs.insert(0, pcb)

    def remove_key(self, key: int) -> PCB:
        """Remove and return the PCB stored under ``key``.

        Raises ``ValueError`` if absent; callers gate on their own
        membership set first, mirroring the reference structures.
        """
        index = self.keys.index(key)
        del self.keys[index]
        pcb = self.pcbs[index]
        del self.pcbs[index]
        return pcb

    def move_to_front(self, index: int) -> None:
        """Hoist the entry at ``index`` to the head (MTF heuristic)."""
        if index:
            key = self.keys[index]
            del self.keys[index]
            self.keys.insert(0, key)
            pcb = self.pcbs[index]
            del self.pcbs[index]
            self.pcbs.insert(0, pcb)


class CachedSlot:
    """A single-entry cache as an (interned key, PCB) pair.

    ``key`` is ``None`` while the slot is empty -- probing an empty
    slot costs nothing, per the counting convention.
    """

    __slots__ = ("key", "pcb")

    def __init__(self) -> None:
        self.key: Optional[int] = None
        self.pcb: Optional[PCB] = None

    def set(self, key: int, pcb: PCB) -> None:
        self.key = key
        self.pcb = pcb

    def clear(self) -> None:
        self.key = None
        self.pcb = None

    def invalidate_if(self, key: int) -> None:
        """Clear the slot when it caches ``key`` (removal hygiene)."""
        if self.key == key:
            self.clear()
