"""The demux fast path: same decisions, fewer interpreter cycles.

The reference structures in :mod:`repro.core` are written to mirror the
paper's prose; they pay Python object-graph overhead (four-tuple
``__eq__`` per probe, a CRC per packet, template-method tolls per call)
that swamps the algorithmic differences the paper is about.  This
package re-implements the hot family -- linear, BSD, MTF, Sequent
hashed, hashed-MTF -- on flat array-backed slot tables with interned
integer keys and batched lookups, provably decision-identical to the
references, plus the fast-path-only O(1) cuckoo table for the
million-connection tier:

* :mod:`~repro.fastpath.keycache` -- four-tuple interning + chain memo;
* :mod:`~repro.fastpath.tables` -- flat slot tables and cache slots
  (with the numpy-vectorized batch scan);
* :mod:`~repro.fastpath.algorithms` -- the five ``fast-*`` structures;
* :mod:`~repro.fastpath.cuckoo` -- the two-choice cuckoo table with
  per-bucket pre-filters (``fast-cuckoo``, no reference twin);
* :mod:`~repro.fastpath.batch` -- the amortized ``lookup_batch`` loop;
* :mod:`~repro.fastpath.conformance` -- golden decision traces;
* :mod:`~repro.fastpath.gate` -- the cross-PR ``bench-gate`` harness;
* :mod:`~repro.fastpath.metrics` -- observability export of fast-path
  counters.

Registry specs: ``fast-sequent:h=51,hash=crc16``,
``sharded-fast-sequent:shards=8,steer=hash``, etc.  See
``docs/fastpath.md``.
"""

from .algorithms import (
    FAST_ALGORITHMS,
    FastBSDDemux,
    FastHashedMTFDemux,
    FastLinearDemux,
    FastMTFDemux,
    FastSequentDemux,
)
from .batch import BatchLookupMixin, as_packets
from .conformance import (
    decision_trace,
    golden_stream,
    resumed_decision_trace,
    resumed_mutation_trace,
    stray_tuple,
)
from .cuckoo import CuckooCounters, FastCuckooDemux
from .gate import (
    DEFAULT_PAIRS,
    GateConfig,
    GateReport,
    MAX_SWEEP_USERS,
    Measurement,
    QUICK_CONFIG,
    SCALE_CONFIG,
    SCALE_PAIRS,
    measure_replay,
    run_gate,
)
from .keycache import FastpathCounters, KeyCache
from .metrics import publish_fastpath
from .tables import CachedSlot, SlotTable

__all__ = [
    "BatchLookupMixin",
    "CachedSlot",
    "CuckooCounters",
    "DEFAULT_PAIRS",
    "FAST_ALGORITHMS",
    "FastBSDDemux",
    "FastCuckooDemux",
    "FastHashedMTFDemux",
    "FastLinearDemux",
    "FastMTFDemux",
    "FastSequentDemux",
    "FastpathCounters",
    "GateConfig",
    "GateReport",
    "KeyCache",
    "MAX_SWEEP_USERS",
    "Measurement",
    "QUICK_CONFIG",
    "SCALE_CONFIG",
    "SCALE_PAIRS",
    "SlotTable",
    "as_packets",
    "decision_trace",
    "golden_stream",
    "measure_replay",
    "publish_fastpath",
    "resumed_decision_trace",
    "resumed_mutation_trace",
    "run_gate",
    "stray_tuple",
]
