"""Four-tuple key interning for the demux fast path.

The reference structures compare :class:`~repro.packet.addresses.FourTuple`
objects on every probe, which costs a Python-level ``__eq__`` per field,
and the hashed structures additionally run a table-driven CRC over the
packed 96-bit key on every packet.  Both costs are pure interpreter
overhead -- the paper's cost model charges neither (Section 3.5 treats
hash computation as negligible next to PCB memory traffic) -- so the
fast path is free to eliminate them *as long as every algorithmic
decision stays identical*.

:class:`KeyCache` does that elimination:

* each four-tuple is interned to its packed 96-bit **integer key**
  (:meth:`FourTuple.key_bits`), a bijection, so integer equality is
  exactly tuple equality and slot tables can scan C-speed int lists;
* for chained structures, the chain index (a deterministic pure
  function of the tuple) is memoized alongside the key, so the CRC runs
  once per distinct tuple instead of once per packet.

Counters land in :class:`FastpathCounters`, which the owning algorithm
exposes as ``fastpath_counters`` and :func:`repro.fastpath.metrics.
publish_fastpath` exports through the observability registry.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Optional, Tuple

from ..packet.addresses import FourTuple

__all__ = ["FastpathCounters", "KeyCache"]


@dataclasses.dataclass
class FastpathCounters:
    """Fast-path bookkeeping, separate from the pinned ``DemuxStats``.

    These counters never feed the paper's figure of merit; they exist
    so the observability layer can report how hard the fast-path
    machinery itself is working.
    """

    #: Distinct four-tuples interned (key-cache misses).
    interned_keys: int = 0
    #: Lookups served from the intern table (key-cache hits).
    key_cache_hits: int = 0
    #: Interned entries evicted on connection removal.
    evicted_keys: int = 0
    #: Probes of never-interned tuples whose key was computed on the
    #: fly and *not* stored (miss lookups on absent connections).
    transient_probes: int = 0
    #: ``lookup_batch`` invocations that took the amortized loop.
    batch_calls: int = 0
    #: Individual lookups served through the amortized loop.
    batched_lookups: int = 0

    def as_dict(self) -> Dict[str, int]:
        """JSON-ready snapshot."""
        return {
            "interned_keys": self.interned_keys,
            "key_cache_hits": self.key_cache_hits,
            "evicted_keys": self.evicted_keys,
            "transient_probes": self.transient_probes,
            "batch_calls": self.batch_calls,
            "batched_lookups": self.batched_lookups,
        }


class KeyCache:
    """Intern table: four-tuple -> (96-bit int key, chain index).

    ``chain_fn`` is the structure's chain assignment (``None`` for
    unchained structures, whose entries all report chain 0).  The memo
    is sound because every hash function in :mod:`repro.hashing` is a
    deterministic, unseeded pure function of the tuple, and the chain
    count is fixed for the structure's lifetime.

    Memory-bounds contract: only :meth:`entry` (the insert path) may
    store a memo; :meth:`probe` (the lookup/remove path) computes the
    pair on the fly for unknown tuples without storing, and
    :meth:`evict` drops the memo when its connection is removed.  The
    owning structure therefore holds exactly one interned entry per
    *live* connection -- heavy insert/remove churn and miss-lookup
    floods cannot grow the table (see docs/fastpath.md, "Memory
    bounds").  Because key and chain are pure functions of the tuple,
    evicting and later recomputing an entry can never change a
    decision.
    """

    __slots__ = ("_entries", "_chain_fn", "counters")

    def __init__(
        self,
        chain_fn: Optional[Callable[[FourTuple], int]] = None,
        counters: Optional[FastpathCounters] = None,
    ):
        self._entries: Dict[FourTuple, Tuple[int, int]] = {}
        self._chain_fn = chain_fn
        self.counters = counters if counters is not None else FastpathCounters()

    def __len__(self) -> int:
        return len(self._entries)

    def entry(self, tup: FourTuple) -> Tuple[int, int]:
        """The ``(key, chain)`` pair for ``tup``, interning it.

        The *insert* path: the connection is becoming live, so the
        memo is stored for the packets that will follow.
        """
        entry = self._entries.get(tup)
        if entry is None:
            entry = self._compute(tup)
            self._entries[tup] = entry
            self.counters.interned_keys += 1
        else:
            self.counters.key_cache_hits += 1
        return entry

    def probe(self, tup: FourTuple) -> Tuple[int, int]:
        """The ``(key, chain)`` pair for ``tup``, *without* interning.

        The *lookup/remove* path: a tuple that is not already interned
        is either a miss or a teardown, so storing a memo for it would
        leak one entry per stray packet.  Live tuples hit the same
        dict read as :meth:`entry`; unknown ones pay one throwaway key
        computation.
        """
        entry = self._entries.get(tup)
        if entry is None:
            self.counters.transient_probes += 1
            return self._compute(tup)
        self.counters.key_cache_hits += 1
        return entry

    def evict(self, tup: FourTuple) -> bool:
        """Drop ``tup``'s interned entry (connection removed).

        Returns ``True`` if an entry was present.  Safe to call for
        never-interned tuples (idempotent).
        """
        if self._entries.pop(tup, None) is not None:
            self.counters.evicted_keys += 1
            return True
        return False

    def _compute(self, tup: FourTuple) -> Tuple[int, int]:
        chain = self._chain_fn(tup) if self._chain_fn is not None else 0
        return (tup.key_bits(), chain)

    def key_of(self, tup: FourTuple) -> int:
        """The 96-bit integer key for ``tup`` (non-interning)."""
        return self.probe(tup)[0]

    def chain_of(self, tup: FourTuple) -> int:
        """The chain index for ``tup`` (0 when unchained; non-interning)."""
        return self.probe(tup)[1]
