"""Discrete-event simulation substrate.

A deterministic event heap (:class:`Simulator`), named RNG streams for
common-random-number experiment design (:class:`RngRegistry`), a star
network of fixed-latency links (:class:`Network`), and optional tracing
(:class:`Tracer`).
"""

from .engine import Event, SimulationError, Simulator
from .network import Host, Link, Network
from .pcap import PcapReader, PcapWriter, network_tap
from .rng import RngRegistry, derive_seed
from .trace import TraceRecord, Tracer

__all__ = [
    "Event",
    "Host",
    "Link",
    "Network",
    "PcapReader",
    "PcapWriter",
    "RngRegistry",
    "SimulationError",
    "Simulator",
    "TraceRecord",
    "Tracer",
    "derive_seed",
    "network_tap",
]
