"""A simulated network: hosts joined by fixed-latency links.

The paper's model needs exactly one network property -- the round-trip
time ``D`` between clients and the server (it enters the Partridge/Pink
analysis, Eqs. 8-16) -- so the network is a star of point-to-point
links with configurable one-way delay, optional jitter, and optional
loss (off by default; the paper assumes "negligible loss rates").
Packets are delivered in FIFO order per link even under jitter, as on
a real LAN segment.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Protocol, Union

from ..packet.addresses import IPv4Address
from ..packet.builder import Packet
from .engine import Simulator

__all__ = ["Host", "Link", "Network"]


class Host(Protocol):
    """Anything that can be attached to the network."""

    @property
    def address(self) -> IPv4Address:
        """The host's IP address (one per host in this model)."""
        ...

    def deliver(self, packet: Packet) -> None:
        """Called by the network when a packet arrives."""
        ...


class Link:
    """A point-to-point link with one-way delay and FIFO ordering.

    ``loss_rate == 1.0`` is a blackhole: every packet is counted and
    dropped, and no rng is required (total loss needs no dice).  Rates
    strictly between 0 and 1 draw from ``rng`` per packet.
    """

    def __init__(
        self,
        sim: Simulator,
        delay: float,
        *,
        jitter: float = 0.0,
        loss_rate: float = 0.0,
        rng=None,
    ):
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        if jitter < 0:
            raise ValueError(f"jitter must be non-negative, got {jitter}")
        if not 0.0 <= loss_rate <= 1.0:
            raise ValueError(f"loss rate must be in [0, 1], got {loss_rate}")
        if (jitter > 0.0 or 0.0 < loss_rate < 1.0) and rng is None:
            raise ValueError("jitter/loss need an rng stream")
        self._sim = sim
        self._delay = delay
        self._jitter = jitter
        self._loss_rate = loss_rate
        self._rng = rng
        self._last_arrival = 0.0
        self.packets_sent = 0
        self.packets_dropped = 0

    @property
    def delay(self) -> float:
        return self._delay

    def _drops_packet(self) -> bool:
        """Per-packet link-level loss decision."""
        if not self._loss_rate:
            return False
        if self._loss_rate >= 1.0:  # blackhole
            return True
        return self._rng.random() < self._loss_rate

    def _schedule_delivery(
        self,
        packet,
        deliver: Callable[[Packet], None],
        *,
        extra_delay: float = 0.0,
        fifo: bool = True,
    ) -> None:
        """Schedule one delivery after the link latency (plus jitter).

        ``fifo=False`` exempts this delivery from the FIFO clamp -- the
        fault injector uses it for delay-spike reordering, where a held
        packet is meant to be overtaken by its successors.
        """
        latency = self._delay + extra_delay
        if self._jitter:
            latency += self._rng.uniform(0.0, self._jitter)
        arrival = self._sim.now + latency
        if fifo:
            # FIFO: a jittered packet never overtakes its predecessor.
            arrival = max(arrival, self._last_arrival)
            self._last_arrival = arrival
        self._sim.schedule_at(arrival, deliver, packet)

    def transmit(self, packet: Packet, deliver: Callable[[Packet], None]) -> None:
        """Schedule delivery of ``packet`` after the link delay."""
        self.packets_sent += 1
        if self._drops_packet():
            self.packets_dropped += 1
            return
        self._schedule_delivery(packet, deliver)


class Network:
    """A set of hosts, each reachable via its own link.

    ``default_delay`` is the one-way latency used for hosts attached
    without an explicit link, i.e. D/2 for the paper's round-trip D.
    ``link_factory(sim, delay)``, when given, builds those default
    links instead -- the hook the fault injector uses to put a
    :class:`~repro.faults.injector.FaultyLink` in front of every host.
    """

    def __init__(
        self,
        sim: Simulator,
        *,
        default_delay: float = 0.0005,
        link_factory: Optional[Callable[[Simulator, float], Link]] = None,
    ):
        self._sim = sim
        self._default_delay = default_delay
        self._link_factory = link_factory
        self._hosts: Dict[IPv4Address, Host] = {}
        self._links: Dict[IPv4Address, Link] = {}
        self.packets_delivered = 0
        self.packets_to_nowhere = 0

    def attach(self, host: Host, link: Optional[Link] = None) -> None:
        """Add a host; duplicate addresses are an error."""
        addr = host.address
        if addr in self._hosts:
            raise ValueError(f"address {addr} already attached")
        self._hosts[addr] = host
        if link is None:
            if self._link_factory is not None:
                link = self._link_factory(self._sim, self._default_delay)
            else:
                link = Link(self._sim, self._default_delay)
        self._links[addr] = link

    def detach(self, address: Union[str, IPv4Address]) -> None:
        address = IPv4Address(address)
        self._hosts.pop(address)  # KeyError if absent, intentionally
        self._links.pop(address)

    def host(self, address: Union[str, IPv4Address]) -> Host:
        return self._hosts[IPv4Address(address)]

    def link_to(self, address: Union[str, IPv4Address]) -> Link:
        return self._links[IPv4Address(address)]

    def send(self, packet: Packet) -> None:
        """Route ``packet`` to the host owning its destination address.

        Packets to unattached addresses are counted and dropped (the
        LAN has no router to ICMP back through).
        """
        dst = packet.ip.dst
        host = self._hosts.get(dst)
        if host is None:
            self.packets_to_nowhere += 1
            return
        link = self._links[dst]

        def deliver(pkt: Packet) -> None:
            self.packets_delivered += 1
            host.deliver(pkt)

        link.transmit(packet, deliver)
