"""Named, independent random-number streams.

Every stochastic component of a simulation (each user's think time, the
response-time jitter, the workload mix) draws from its own named stream
derived deterministically from one master seed.  This gives *common
random numbers* across experiment arms: comparing BSD against Sequent
on "the same" TPC/A day means user 1374's think times are identical in
both runs, so observed cost differences are the algorithm's, not the
dice's.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

__all__ = ["RngRegistry", "derive_seed"]


def derive_seed(master_seed: int, name: str) -> int:
    """Stable 64-bit sub-seed from (master seed, stream name).

    Uses SHA-256 rather than ``hash()`` so sub-seeds survive
    interpreter restarts and PYTHONHASHSEED -- which also makes this
    the seed-splitting primitive for *process-parallel* experiment
    runners (:mod:`repro.smp.parallel`): every worker derives the same
    per-task seed from the master, in any process, in any order.
    """
    if not isinstance(master_seed, int):
        raise TypeError(f"seed must be an int, got {type(master_seed).__name__}")
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """A factory of independent ``random.Random`` streams.

    Streams are keyed by name; the same (master seed, name) pair always
    yields an identically seeded generator, in any order of creation.
    """

    def __init__(self, master_seed: int = 0):
        if not isinstance(master_seed, int):
            raise TypeError(f"seed must be an int, got {type(master_seed).__name__}")
        self._master_seed = master_seed
        self._streams: Dict[str, random.Random] = {}

    @property
    def master_seed(self) -> int:
        return self._master_seed

    def stream(self, name: str) -> random.Random:
        """The stream for ``name``, created on first use."""
        if name not in self._streams:
            self._streams[name] = random.Random(self._derive(name))
        return self._streams[name]

    def _derive(self, name: str) -> int:
        """Stable sub-seed for ``name`` (see :func:`derive_seed`)."""
        return derive_seed(self._master_seed, name)

    def spawn(self, suffix: str) -> "RngRegistry":
        """A registry whose streams are all distinct from this one's.

        Used when one experiment runs several sub-simulations that must
        not share randomness (e.g. replications r0, r1, ...).
        """
        return RngRegistry(self._derive(f"spawn:{suffix}"))

    def __repr__(self) -> str:
        return (
            f"RngRegistry(seed={self._master_seed},"
            f" streams={sorted(self._streams)})"
        )
