"""A deterministic discrete-event simulation engine.

Small, boring, and exactly what the reproduction needs: a time-ordered
event heap with stable FIFO tie-breaking, cancellation, and run-until
controls.  Determinism matters more than features here -- two runs with
the same seed must replay the identical event sequence so that paper
experiments are reproducible to the last PCB examined.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional

__all__ = ["SimulationError", "Event", "Simulator"]


class SimulationError(Exception):
    """Raised for scheduling in the past, re-running, and similar misuse."""


class Event:
    """A scheduled callback.  Returned by :meth:`Simulator.schedule`."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callable, args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def __lt__(self, other: "Event") -> bool:
        # Earlier time first; FIFO within a timestamp (seq strictly
        # increases), so same-time events run in scheduling order.
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.callback, "__name__", repr(self.callback))
        return f"<Event t={self.time:.6f} {name} {state}>"


class Simulator:
    """Event loop with a virtual clock starting at 0.0 seconds."""

    def __init__(
        self, *, probe: Optional[Callable[[Event], None]] = None
    ) -> None:
        self._now = 0.0
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._events_run = 0
        self._probe = probe

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def probe(self) -> Optional[Callable[[Event], None]]:
        """Observer called with each event as it is dispatched.

        Fires after the clock has advanced to the event's time and
        before its callback runs, so the probe sees exactly the
        dispatch order (a :class:`repro.obs.Tracer` installs itself
        here via ``attach_simulator``).  Probes must not mutate the
        event; scheduling new events from a probe is allowed.  ``None``
        (the default) keeps dispatch on the bare path.
        """
        return self._probe

    @probe.setter
    def probe(self, callback: Optional[Callable[[Event], None]]) -> None:
        self._probe = callback

    @property
    def events_run(self) -> int:
        """Total events executed so far."""
        return self._events_run

    @property
    def pending(self) -> int:
        """Events still scheduled (including cancelled-but-unpopped)."""
        return sum(1 for event in self._heap if not event.cancelled)

    def schedule(self, delay: float, callback: Callable, *args: Any) -> Event:
        """Run ``callback(*args)`` ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}s in the past")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable, *args: Any) -> Event:
        """Run ``callback(*args)`` at absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time:.6f}, now is {self._now:.6f}"
            )
        event = Event(time, next(self._seq), callback, args)
        heapq.heappush(self._heap, event)
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a pending event (lazily; popped events are skipped)."""
        event.cancelled = True

    def step(self) -> bool:
        """Run the next pending event.  Returns False if none remain."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            self._events_run += 1
            probe = self._probe
            if probe is not None:
                probe(event)
            event.callback(*event.args)
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> float:
        """Drain the event heap.

        ``until`` stops the clock at that virtual time (events beyond it
        stay pending, and the clock advances to exactly ``until``);
        ``max_events`` bounds the number of callbacks as a runaway
        guard.  Returns the final virtual time.
        """
        if until is not None and until < self._now:
            raise SimulationError(
                f"cannot run until {until:.6f}, now is {self._now:.6f}"
            )
        executed = 0
        while self._heap:
            if max_events is not None and executed >= max_events:
                break
            head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                continue
            if until is not None and head.time > until:
                break
            self.step()
            executed += 1
        if until is not None and self._now < until:
            self._now = until
        return self._now
