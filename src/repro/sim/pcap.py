"""pcap capture of simulated traffic.

Writes classic libpcap files (magic 0xA1B2C3D4, LINKTYPE_ETHERNET)
that Wireshark/tcpdump open directly, so a full-stack simulation run
can be inspected with standard tooling.  Packets are framed in
synthetic Ethernet (MACs derived from the IPv4 addresses) since the
simulated network routes on IP alone.

Usage::

    writer = PcapWriter(path)
    network_tap(network, writer)   # capture everything a Network sends
    ... run the simulation ...
    writer.close()

A matching :class:`PcapReader` parses the files back (used by tests to
round-trip, and handy for offline analysis without wireshark).
"""

from __future__ import annotations

import pathlib
import struct
from typing import BinaryIO, Iterator, List, Tuple, Union

from ..packet.builder import Packet, parse_packet
from ..packet.ethernet import EthernetFrame, EtherType, MACAddress

__all__ = ["PcapWriter", "PcapReader", "network_tap"]

_MAGIC = 0xA1B2C3D4
_VERSION_MAJOR = 2
_VERSION_MINOR = 4
_LINKTYPE_ETHERNET = 1
_SNAPLEN = 65535

_GLOBAL_HEADER = struct.Struct("<IHHiIII")
_RECORD_HEADER = struct.Struct("<IIII")


def _mac_for(ip_packed: bytes) -> MACAddress:
    """A stable synthetic MAC for an IPv4 address (locally administered)."""
    return MACAddress(b"\x02\x00" + ip_packed)


class PcapWriter:
    """Writes packets to a libpcap file as they are captured."""

    def __init__(self, path: Union[str, pathlib.Path]):
        self._path = pathlib.Path(path)
        self._file: BinaryIO = open(self._path, "wb")
        self._file.write(
            _GLOBAL_HEADER.pack(
                _MAGIC, _VERSION_MAJOR, _VERSION_MINOR,
                0, 0, _SNAPLEN, _LINKTYPE_ETHERNET,
            )
        )
        self.packets_written = 0
        self._closed = False

    @property
    def path(self) -> pathlib.Path:
        return self._path

    def write(self, timestamp: float, packet: Packet) -> None:
        """Capture one simulated packet at virtual time ``timestamp``."""
        if self._closed:
            raise ValueError("writer is closed")
        frame = EthernetFrame(
            dst=_mac_for(packet.ip.dst.packed),
            src=_mac_for(packet.ip.src.packed),
            ethertype=EtherType.IPV4,
            payload=packet.build(),
        )
        wire = frame.build()[:-4]  # pcap stores no FCS
        seconds = int(timestamp)
        micros = int(round((timestamp - seconds) * 1_000_000))
        if micros >= 1_000_000:  # rounding carried into the next second
            seconds += 1
            micros -= 1_000_000
        self._file.write(
            _RECORD_HEADER.pack(seconds, micros, len(wire), len(wire))
        )
        self._file.write(wire)
        self.packets_written += 1

    def close(self) -> None:
        if not self._closed:
            self._file.close()
            self._closed = True

    def __enter__(self) -> "PcapWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class PcapReader:
    """Parses a classic-format pcap file back into packets."""

    def __init__(self, path: Union[str, pathlib.Path]):
        self._path = pathlib.Path(path)

    def __iter__(self) -> Iterator[Tuple[float, Packet]]:
        with open(self._path, "rb") as handle:
            header = handle.read(_GLOBAL_HEADER.size)
            if len(header) < _GLOBAL_HEADER.size:
                raise ValueError(f"{self._path}: truncated pcap header")
            magic, _, _, _, _, _, linktype = _GLOBAL_HEADER.unpack(header)
            if magic != _MAGIC:
                raise ValueError(f"{self._path}: bad pcap magic {magic:#x}")
            if linktype != _LINKTYPE_ETHERNET:
                raise ValueError(f"{self._path}: unsupported linktype {linktype}")
            while True:
                record = handle.read(_RECORD_HEADER.size)
                if not record:
                    return
                if len(record) < _RECORD_HEADER.size:
                    raise ValueError(f"{self._path}: truncated record header")
                seconds, micros, captured, _ = _RECORD_HEADER.unpack(record)
                data = handle.read(captured)
                if len(data) < captured:
                    raise ValueError(f"{self._path}: truncated packet body")
                # Ethernet without FCS: parse header fields manually.
                ethertype = int.from_bytes(data[12:14], "big")
                if ethertype != EtherType.IPV4:
                    continue  # non-IP frames are skipped, not an error
                packet = parse_packet(data[14:])
                yield seconds + micros / 1_000_000, packet

    def read_all(self) -> List[Tuple[float, Packet]]:
        return list(self)


def network_tap(network, writer: PcapWriter):
    """Capture every packet a :class:`~repro.sim.network.Network` sends.

    Wraps ``network.send`` in place; returns the original so callers
    can un-tap.  Packets are stamped at *send* time (the simulated
    clock when they entered the wire).
    """
    original_send = network.send

    def tapped(packet: Packet) -> None:
        writer.write(network._sim.now, packet)
        original_send(packet)

    network.send = tapped
    return original_send
