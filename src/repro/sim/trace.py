"""Lightweight tracing for simulations.

A :class:`Tracer` collects timestamped records -- packet deliveries,
lookups, state transitions -- behind an on/off switch so hot paths pay
one attribute check when tracing is off.  Experiments use it to dump
event timelines when a run's statistics look wrong, and a couple of
integration tests assert on traced sequences directly.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = ["TraceRecord", "Tracer"]


@dataclasses.dataclass(frozen=True)
class TraceRecord:
    """One traced occurrence."""

    time: float
    category: str
    message: str
    data: Tuple[Tuple[str, Any], ...] = ()

    def __str__(self) -> str:
        extra = " ".join(f"{k}={v}" for k, v in self.data)
        return f"[{self.time:12.6f}] {self.category}: {self.message} {extra}".rstrip()


class Tracer:
    """Collects :class:`TraceRecord` objects, with category filtering."""

    def __init__(self, *, enabled: bool = False, max_records: int = 1_000_000):
        if max_records <= 0:
            raise ValueError("max_records must be positive")
        self.enabled = enabled
        self._max_records = max_records
        self._records: List[TraceRecord] = []
        self._category_filter: Optional[frozenset] = None
        self.dropped = 0

    def restrict(self, *categories: str) -> None:
        """Only record the given categories (empty = record everything)."""
        self._category_filter = frozenset(categories) if categories else None

    def record(self, time: float, category: str, message: str, **data: Any) -> None:
        """Add a record (no-op when disabled or filtered)."""
        if not self.enabled:
            return
        if self._category_filter and category not in self._category_filter:
            return
        if len(self._records) >= self._max_records:
            self.dropped += 1
            return
        self._records.append(
            TraceRecord(time, category, message, tuple(sorted(data.items())))
        )

    @property
    def records(self) -> List[TraceRecord]:
        return list(self._records)

    def by_category(self) -> Dict[str, List[TraceRecord]]:
        grouped: Dict[str, List[TraceRecord]] = {}
        for record in self._records:
            grouped.setdefault(record.category, []).append(record)
        return grouped

    def matching(self, predicate: Callable[[TraceRecord], bool]) -> List[TraceRecord]:
        return [record for record in self._records if predicate(record)]

    def clear(self) -> None:
        self._records.clear()
        self.dropped = 0

    def dump(self, limit: Optional[int] = None) -> str:
        """The trace as printable text (last ``limit`` records)."""
        records = self._records if limit is None else self._records[-limit:]
        return "\n".join(str(record) for record in records)
