"""Record a workload's inbound packet stream for later replay.

The SMP experiments (:mod:`repro.smp`) need the *same* packet sequence
replayed through many configurations -- sharded vs. not, batched vs.
not -- so that every comparison is paired: common random numbers, down
to the individual packet.  :class:`PacketRecorder` is a demux algorithm
that stores nothing but the arrival sequence; driving the ordinary
TPC/A simulation with it yields a :class:`RecordedStream` that any
configuration can replay deterministically, in any process.

Streams also persist to disk as *capture files*
(:func:`save_stream` / :func:`load_stream`): versioned JSON with a
SHA-256 content digest over the tuples and packets.  The live-serving
front end (:mod:`repro.serve`) records real socket traffic into the
same format, so a capture's provenance -- synthetic TPC/A or a live
run -- is carried in its header (``kind``) while every consumer
(``bench-gate`` replays, golden decision traces, the canary gate)
reads both identically.  ``load_stream`` re-verifies the digest and
the structure, so a truncated or hand-edited capture is rejected at
the door rather than silently replaying garbage.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..core.base import DemuxAlgorithm, DuplicateConnectionError, LookupResult
from ..core.pcb import PCB
from ..core.stats import PacketKind
from ..packet.addresses import AddressError, FourTuple
from .thinktime import ThinkTimeModel
from .tpca import TPCAConfig, TPCADemuxSimulation

__all__ = [
    "CAPTURE_FORMAT",
    "CAPTURE_VERSION",
    "CaptureFormatError",
    "PacketRecorder",
    "RecordedStream",
    "load_stream",
    "record_tpca_stream",
    "save_stream",
    "stream_digest",
    "stream_info",
]

#: Format tag every capture file carries; anything else is rejected.
CAPTURE_FORMAT = "repro-recorded-stream"

#: Current capture format version.  Readers accept exactly the versions
#: in :data:`SUPPORTED_CAPTURE_VERSIONS`; bump this when the payload
#: layout changes so old tools fail loudly on new files (and vice
#: versa) instead of misreading them.
CAPTURE_VERSION = 1

SUPPORTED_CAPTURE_VERSIONS = (1,)


class CaptureFormatError(ValueError):
    """A capture file is malformed, unsupported, or corrupt."""


class PacketRecorder(DemuxAlgorithm):
    """A demux 'algorithm' that records arrivals instead of searching.

    Lookups are dictionary hits (examined is reported as 0: nothing is
    scanned, and the recorder's statistics are never the experiment's
    subject); the payoff is the ``packets`` list -- every
    ``(four_tuple, kind)`` the workload delivered, in arrival order.
    """

    name = "recorder"

    def __init__(self) -> None:
        super().__init__()
        self._pcbs: Dict[FourTuple, PCB] = {}
        self.packets: List[Tuple[FourTuple, PacketKind]] = []

    def _insert(self, pcb: PCB) -> None:
        if pcb.four_tuple in self._pcbs:
            raise DuplicateConnectionError(
                f"duplicate connection {pcb.four_tuple}"
            )
        self._pcbs[pcb.four_tuple] = pcb

    def _remove(self, tup: FourTuple) -> PCB:
        return self._pcbs.pop(tup)

    def _lookup(self, tup: FourTuple, kind: PacketKind) -> LookupResult:
        self.packets.append((tup, kind))
        return LookupResult(
            self._pcbs.get(tup), examined=0, cache_hit=False, kind=kind
        )

    def __len__(self) -> int:
        return len(self._pcbs)

    def __iter__(self) -> Iterator[PCB]:
        return iter(self._pcbs.values())


@dataclasses.dataclass(frozen=True)
class RecordedStream:
    """One workload run, flattened to connections + packet arrivals."""

    #: Server-side four-tuple of every installed connection.
    tuples: Tuple[FourTuple, ...]
    #: Inbound packets in arrival order.
    packets: Tuple[Tuple[FourTuple, PacketKind], ...]
    n_users: int
    duration: float
    seed: int
    #: Provenance: ``"synthetic-tpca"`` for streams manufactured by
    #: :func:`record_tpca_stream`, ``"live-capture"`` for traffic the
    #: serving front end recorded off real sockets.
    kind: str = "synthetic-tpca"

    def __len__(self) -> int:
        return len(self.packets)


def record_tpca_stream(
    n_users: int,
    duration: float,
    seed: int,
    *,
    packets_per_exchange: int = 1,
    think_model: Optional[ThinkTimeModel] = None,
    max_packets: Optional[int] = None,
) -> RecordedStream:
    """Run the demux-level TPC/A workload and keep only its packets.

    No warm-up phase: replays measure whole streams, and dropping a
    prefix here would only shrink the paired sample.  The result is a
    pure function of the arguments -- byte-identical in any process.
    """
    kwargs = {}
    if think_model is not None:
        kwargs["think_model"] = think_model
    config = TPCAConfig(
        n_users=n_users,
        duration=duration,
        warmup=0.0,
        seed=seed,
        packets_per_exchange=packets_per_exchange,
        **kwargs,
    )
    recorder = PacketRecorder()
    TPCADemuxSimulation(config, recorder).run()
    packets = recorder.packets
    if max_packets is not None:
        packets = packets[:max_packets]
    return RecordedStream(
        tuples=tuple(config.user_tuple(i) for i in range(n_users)),
        packets=tuple(packets),
        n_users=n_users,
        duration=duration,
        seed=seed,
    )


# -- the capture file format -------------------------------------------


def _tuple_payload(tup: FourTuple) -> List[object]:
    return [
        str(tup.local_addr),
        tup.local_port,
        str(tup.remote_addr),
        tup.remote_port,
    ]


def _stream_payload(stream: RecordedStream) -> Dict[str, Any]:
    """The digestable body: tuples plus index-compressed packets."""
    index = {tup: position for position, tup in enumerate(stream.tuples)}
    packets = []
    for tup, kind in stream.packets:
        slot = index.get(tup)
        if slot is None:
            # A packet for a never-installed connection (live strays);
            # carried inline so replay sees the same miss.
            packets.append([_tuple_payload(tup), kind.value])
        else:
            packets.append([slot, kind.value])
    return {
        "tuples": [_tuple_payload(tup) for tup in stream.tuples],
        "packets": packets,
    }


def stream_digest(stream: RecordedStream) -> str:
    """SHA-256 over the canonical JSON body.

    Two streams with equal digests replay identically through every
    structure -- the byte-identity check the record/replay determinism
    tests (and ``record-info``) rely on.
    """
    body = json.dumps(
        _stream_payload(stream), separators=(",", ":"), sort_keys=True
    )
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


def save_stream(stream: RecordedStream, path: str) -> str:
    """Write ``stream`` as a versioned capture file; returns the digest."""
    digest = stream_digest(stream)
    document = {
        "format": CAPTURE_FORMAT,
        "version": CAPTURE_VERSION,
        "kind": stream.kind,
        "seed": stream.seed,
        "n_users": stream.n_users,
        "duration": stream.duration,
        "packet_count": len(stream.packets),
        "digest": digest,
    }
    document.update(_stream_payload(stream))
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, separators=(",", ": "), indent=0)
        handle.write("\n")
    return digest


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise CaptureFormatError(message)


def _parse_capture(document: Any, *, source: str) -> RecordedStream:
    _require(isinstance(document, dict), f"{source}: not a JSON object")
    fmt = document.get("format")
    _require(
        fmt == CAPTURE_FORMAT,
        f"{source}: format {fmt!r} is not {CAPTURE_FORMAT!r}",
    )
    version = document.get("version")
    _require(
        version in SUPPORTED_CAPTURE_VERSIONS,
        f"{source}: unsupported capture version {version!r}"
        f" (supported: {list(SUPPORTED_CAPTURE_VERSIONS)})",
    )
    for field, kind_ in (("seed", int), ("n_users", int),
                         ("duration", (int, float)), ("kind", str),
                         ("tuples", list), ("packets", list)):
        _require(
            isinstance(document.get(field), kind_)
            and not isinstance(document.get(field), bool),
            f"{source}: missing or malformed {field!r} field",
        )

    def parse_tuple(payload: object, what: str) -> FourTuple:
        _require(
            isinstance(payload, list) and len(payload) == 4,
            f"{source}: malformed {what} {payload!r}",
        )
        try:
            return FourTuple(payload[0], payload[1], payload[2], payload[3])
        except (AddressError, TypeError) as exc:
            raise CaptureFormatError(
                f"{source}: bad {what} {payload!r}: {exc}"
            ) from None

    tuples = tuple(
        parse_tuple(payload, "connection tuple")
        for payload in document["tuples"]
    )
    kinds = {kind.value: kind for kind in PacketKind}
    packets: List[Tuple[FourTuple, PacketKind]] = []
    for entry in document["packets"]:
        _require(
            isinstance(entry, list) and len(entry) == 2,
            f"{source}: malformed packet entry {entry!r}",
        )
        target, kind_text = entry
        _require(
            kind_text in kinds,
            f"{source}: unknown packet kind {kind_text!r}",
        )
        if isinstance(target, int) and not isinstance(target, bool):
            _require(
                0 <= target < len(tuples),
                f"{source}: packet references tuple {target},"
                f" but only {len(tuples)} are installed",
            )
            tup = tuples[target]
        else:
            tup = parse_tuple(target, "stray packet tuple")
        packets.append((tup, kinds[kind_text]))

    stream = RecordedStream(
        tuples=tuples,
        packets=tuple(packets),
        n_users=document["n_users"],
        duration=float(document["duration"]),
        seed=document["seed"],
        kind=document["kind"],
    )
    declared_count = document.get("packet_count")
    if declared_count is not None:
        _require(
            declared_count == len(packets),
            f"{source}: header says {declared_count} packets,"
            f" body has {len(packets)}",
        )
    declared_digest = document.get("digest")
    if declared_digest is not None:
        actual = stream_digest(stream)
        _require(
            actual == declared_digest,
            f"{source}: content digest mismatch"
            f" (header {declared_digest[:12]}..., body {actual[:12]}...)"
            " -- the capture was truncated or edited",
        )
    return stream


def load_stream(path: str) -> RecordedStream:
    """Read and validate a capture file written by :func:`save_stream`.

    Raises :class:`CaptureFormatError` for anything that is not a
    well-formed, digest-clean capture of a supported version.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except json.JSONDecodeError as exc:
        raise CaptureFormatError(f"{path}: not valid JSON: {exc}") from None
    return _parse_capture(document, source=path)


def stream_info(path: str) -> Dict[str, Any]:
    """Validated header facts of a capture (the ``record-info`` view)."""
    stream = load_stream(path)
    return {
        "path": path,
        "format": CAPTURE_FORMAT,
        "version": CAPTURE_VERSION,
        "kind": stream.kind,
        "seed": stream.seed,
        "digest": stream_digest(stream),
        "connections": len(stream.tuples),
        "packet_count": len(stream.packets),
        "duration": stream.duration,
    }
