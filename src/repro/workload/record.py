"""Record a workload's inbound packet stream for later replay.

The SMP experiments (:mod:`repro.smp`) need the *same* packet sequence
replayed through many configurations -- sharded vs. not, batched vs.
not -- so that every comparison is paired: common random numbers, down
to the individual packet.  :class:`PacketRecorder` is a demux algorithm
that stores nothing but the arrival sequence; driving the ordinary
TPC/A simulation with it yields a :class:`RecordedStream` that any
configuration can replay deterministically, in any process.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterator, List, Optional, Tuple

from ..core.base import DemuxAlgorithm, DuplicateConnectionError, LookupResult
from ..core.pcb import PCB
from ..core.stats import PacketKind
from ..packet.addresses import FourTuple
from .thinktime import ThinkTimeModel
from .tpca import TPCAConfig, TPCADemuxSimulation

__all__ = ["PacketRecorder", "RecordedStream", "record_tpca_stream"]


class PacketRecorder(DemuxAlgorithm):
    """A demux 'algorithm' that records arrivals instead of searching.

    Lookups are dictionary hits (examined is reported as 0: nothing is
    scanned, and the recorder's statistics are never the experiment's
    subject); the payoff is the ``packets`` list -- every
    ``(four_tuple, kind)`` the workload delivered, in arrival order.
    """

    name = "recorder"

    def __init__(self) -> None:
        super().__init__()
        self._pcbs: Dict[FourTuple, PCB] = {}
        self.packets: List[Tuple[FourTuple, PacketKind]] = []

    def _insert(self, pcb: PCB) -> None:
        if pcb.four_tuple in self._pcbs:
            raise DuplicateConnectionError(
                f"duplicate connection {pcb.four_tuple}"
            )
        self._pcbs[pcb.four_tuple] = pcb

    def _remove(self, tup: FourTuple) -> PCB:
        return self._pcbs.pop(tup)

    def _lookup(self, tup: FourTuple, kind: PacketKind) -> LookupResult:
        self.packets.append((tup, kind))
        return LookupResult(
            self._pcbs.get(tup), examined=0, cache_hit=False, kind=kind
        )

    def __len__(self) -> int:
        return len(self._pcbs)

    def __iter__(self) -> Iterator[PCB]:
        return iter(self._pcbs.values())


@dataclasses.dataclass(frozen=True)
class RecordedStream:
    """One workload run, flattened to connections + packet arrivals."""

    #: Server-side four-tuple of every installed connection.
    tuples: Tuple[FourTuple, ...]
    #: Inbound packets in arrival order.
    packets: Tuple[Tuple[FourTuple, PacketKind], ...]
    n_users: int
    duration: float
    seed: int

    def __len__(self) -> int:
        return len(self.packets)


def record_tpca_stream(
    n_users: int,
    duration: float,
    seed: int,
    *,
    packets_per_exchange: int = 1,
    think_model: Optional[ThinkTimeModel] = None,
    max_packets: Optional[int] = None,
) -> RecordedStream:
    """Run the demux-level TPC/A workload and keep only its packets.

    No warm-up phase: replays measure whole streams, and dropping a
    prefix here would only shrink the paired sample.  The result is a
    pure function of the arguments -- byte-identical in any process.
    """
    kwargs = {}
    if think_model is not None:
        kwargs["think_model"] = think_model
    config = TPCAConfig(
        n_users=n_users,
        duration=duration,
        warmup=0.0,
        seed=seed,
        packets_per_exchange=packets_per_exchange,
        **kwargs,
    )
    recorder = PacketRecorder()
    TPCADemuxSimulation(config, recorder).run()
    packets = recorder.packets
    if max_packets is not None:
        packets = packets[:max_packets]
    return RecordedStream(
        tuples=tuple(config.user_tuple(i) for i in range(n_users)),
        packets=tuple(packets),
        n_users=n_users,
        duration=duration,
        seed=seed,
    )
