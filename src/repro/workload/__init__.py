"""Traffic workloads: TPC/A OLTP, packet trains, polling, and mixes.

Each workload drives a :mod:`repro.core` demultiplexing algorithm --
either directly (the demux-level simulations, which scale to the
paper's 2,000 users) or through the full TCP stack -- and returns a
:class:`WorkloadResult` snapshot of the lookup statistics.
"""

from .adversarial import (
    ChurnStormResult,
    ChurnStormWorkload,
    MalformedStreamResult,
    MalformedStreamWorkload,
    SynFloodResult,
    SynFloodWorkload,
)
from .base import WorkloadResult
from .churn import ChurnConfig, ChurnWorkload
from .mixed import MixedConfig, MixedWorkload
from .polling import PollingConfig, PollingWorkload
from .record import PacketRecorder, RecordedStream, record_tpca_stream
from .thinktime import (
    DeterministicThink,
    ExponentialThink,
    ThinkTimeModel,
    TruncatedExponentialThink,
    make_think_model,
)
from .tpca import (
    SERVER_ADDRESS,
    SERVER_PORT,
    TPCAConfig,
    TPCADemuxSimulation,
    TPCAFullStackSimulation,
)
from .trains import PacketTrainWorkload, TrainConfig

__all__ = [
    "ChurnConfig",
    "ChurnStormResult",
    "ChurnStormWorkload",
    "ChurnWorkload",
    "DeterministicThink",
    "MalformedStreamResult",
    "MalformedStreamWorkload",
    "SynFloodResult",
    "SynFloodWorkload",
    "ExponentialThink",
    "MixedConfig",
    "MixedWorkload",
    "PacketRecorder",
    "PacketTrainWorkload",
    "RecordedStream",
    "record_tpca_stream",
    "PollingConfig",
    "PollingWorkload",
    "SERVER_ADDRESS",
    "SERVER_PORT",
    "ThinkTimeModel",
    "TPCAConfig",
    "TPCADemuxSimulation",
    "TPCAFullStackSimulation",
    "TrainConfig",
    "TruncatedExponentialThink",
    "WorkloadResult",
    "make_think_model",
]
