"""Think-time models for simulated users.

TPC/A mandates a truncated negative exponential (paper Section 2); the
paper's analysis idealizes it as untruncated (Section 3); and the
paper's worst case for move-to-front is deterministic think time
("a central server polling its clients", Section 3.2).  All three are
provided behind one ``sample(rng) -> seconds`` interface so workloads
take the model as a parameter.
"""

from __future__ import annotations

import dataclasses
from typing import Protocol

from ..analytic.distributions import Exponential, TruncatedExponential

__all__ = [
    "ThinkTimeModel",
    "ExponentialThink",
    "TruncatedExponentialThink",
    "DeterministicThink",
    "make_think_model",
]


class ThinkTimeModel(Protocol):
    """Anything that can produce think times."""

    @property
    def mean(self) -> float:
        """Expected think time in seconds."""
        ...

    def sample(self, rng) -> float:
        """Draw one think time using ``rng``."""
        ...


@dataclasses.dataclass(frozen=True)
class ExponentialThink:
    """The analysis' idealization: untruncated exponential."""

    mean_seconds: float = 10.0

    def __post_init__(self) -> None:
        if self.mean_seconds <= 0:
            raise ValueError(f"mean must be positive, got {self.mean_seconds}")

    @property
    def mean(self) -> float:
        return self.mean_seconds

    def sample(self, rng) -> float:
        return Exponential(1.0 / self.mean_seconds).sample(rng)


@dataclasses.dataclass(frozen=True)
class TruncatedExponentialThink:
    """The TPC/A-mandated distribution: truncated at 10x the mean."""

    mean_seconds: float = 10.0
    cutoff_multiple: float = 10.0

    def __post_init__(self) -> None:
        if self.mean_seconds <= 0:
            raise ValueError(f"mean must be positive, got {self.mean_seconds}")
        if self.cutoff_multiple < 10.0:
            raise ValueError(
                "TPC/A requires the maximum to be at least 10x the mean;"
                f" got {self.cutoff_multiple}x"
            )

    @property
    def _dist(self) -> TruncatedExponential:
        return TruncatedExponential(
            rate=1.0 / self.mean_seconds,
            cutoff=self.cutoff_multiple * self.mean_seconds,
        )

    @property
    def mean(self) -> float:
        return self._dist.mean

    def sample(self, rng) -> float:
        return self._dist.sample(rng)


@dataclasses.dataclass(frozen=True)
class DeterministicThink:
    """Fixed think time: the Section 3.2 move-to-front worst case."""

    mean_seconds: float = 10.0

    def __post_init__(self) -> None:
        if self.mean_seconds <= 0:
            raise ValueError(f"mean must be positive, got {self.mean_seconds}")

    @property
    def mean(self) -> float:
        return self.mean_seconds

    def sample(self, rng) -> float:
        return self.mean_seconds


def make_think_model(name: str, mean_seconds: float = 10.0) -> ThinkTimeModel:
    """Factory by name: ``exponential``, ``truncated``, ``deterministic``."""
    models = {
        "exponential": ExponentialThink,
        "truncated": TruncatedExponentialThink,
        "deterministic": DeterministicThink,
    }
    try:
        factory = models[name]
    except KeyError:
        known = ", ".join(sorted(models))
        raise ValueError(f"unknown think model {name!r}; known: {known}") from None
    return factory(mean_seconds)
