"""The TPC/A communications workload (paper Section 2).

Each of N simulated users repeatedly (1) enters a transaction,
(2) waits for the response, (3) thinks for an exponentially distributed
time.  Each transaction is four packets -- query, transport-level ack
of the query, response, transport-level ack of the response -- of which
the *server* receives two: the query (a data packet) and the response's
ack.  The server's PCB-lookup cost for those two packet classes is what
the whole paper analyzes.

Two simulation fidelities share one configuration:

* :class:`TPCADemuxSimulation` drives the demultiplexing structure
  directly with the arrival process (no byte-level packets, no TCP
  state machine).  This is the scale workhorse: it runs 2,000 users for
  hundreds of simulated seconds in seconds of real time, and is what
  the analytic-validation benches use.
* :class:`TPCAFullStackSimulation` runs real :class:`HostStack` clients
  against a real server over the simulated network -- handshakes, real
  segments, the works -- and measures the same statistics.  Integration
  tests use it at moderate N to show both fidelities agree.

Timing model (matching the paper's Figures 5/6/9-11): a user's query
arrives at the server; the server immediately acks it (outbound), sends
the response ``R`` seconds later (outbound), and the response's ack
returns a full round trip ``D`` after that; the user then thinks ``T``,
and -- the paper's crucial simplifying assumption, which we reproduce
-- may enter his next transaction without waiting for the previous
response, making successive query arrivals ``R + D + T`` apart.

``packets_per_exchange`` models the Section 3.4 anecdote of database
software sending "three times as many packets for each transaction as
necessary": the extra copies arrive back-to-back, inflating the cache
hit ratio (up to the paper's 67%) without reducing PCBs searched per
transaction -- the hit-ratio pitfall.
"""

from __future__ import annotations

import dataclasses
from typing import List

from ..core.base import DemuxAlgorithm
from ..core.pcb import PCB
from ..core.stats import PacketKind
from ..packet.addresses import FourTuple, IPv4Address
from ..sim.engine import Simulator
from ..sim.network import Network
from ..sim.rng import RngRegistry
from ..tcpstack.stack import HostStack
from .base import WorkloadResult, bind_tracer_clock
from .thinktime import ExponentialThink, ThinkTimeModel

__all__ = [
    "TPCAConfig",
    "TPCADemuxSimulation",
    "TPCAFullStackSimulation",
    "SERVER_ADDRESS",
    "SERVER_PORT",
]

SERVER_ADDRESS = IPv4Address("10.0.0.1")
SERVER_PORT = 1521


@dataclasses.dataclass(frozen=True)
class TPCAConfig:
    """Parameters of one TPC/A run.

    Defaults are the paper's running example: a 200-TPS benchmark has
    2,000 users (the 10x scaling rule), 10 s mean think time
    (a = 0.1/s), 200 ms response time, 1 ms LAN round trip.
    """

    n_users: int = 2000
    response_time: float = 0.2
    round_trip: float = 0.001
    think_model: ThinkTimeModel = ExponentialThink(10.0)
    #: Duplicate data/ack packets per exchange (1 = the efficient
    #: 4-packet transaction; 3 = the paper's chatty-database anecdote).
    packets_per_exchange: int = 1
    #: Simulated seconds to run after warm-up.
    duration: float = 120.0
    #: Simulated seconds before statistics start.
    warmup: float = 20.0
    seed: int = 1

    def __post_init__(self) -> None:
        if self.n_users < 1:
            raise ValueError(f"need at least one user, got {self.n_users}")
        if self.response_time < 0:
            raise ValueError("response time must be non-negative")
        if self.round_trip < 0:
            raise ValueError("round trip must be non-negative")
        if self.packets_per_exchange < 1:
            raise ValueError("packets_per_exchange must be >= 1")
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.warmup < 0:
            raise ValueError("warmup must be non-negative")

    @property
    def per_user_rate(self) -> float:
        """The paper's ``a``: transactions per user-second."""
        return 1.0 / self.think_model.mean

    @property
    def transaction_rate(self) -> float:
        """Aggregate TPS (the benchmark's headline number ~ N/10)."""
        return self.n_users * self.per_user_rate

    def user_tuple(self, index: int) -> FourTuple:
        """The server-side four-tuple of user ``index``'s connection.

        Users are spread across /24-sized client subnets with
        sequential ephemeral ports -- the address pattern the
        hash-balance experiments care about.
        """
        if not 0 <= index < self.n_users:
            raise ValueError(f"user index {index} out of range")
        host = IPv4Address("10.1.0.0") + (256 + (index // 250) * 256 + index % 250 + 1)
        port = 40000 + index % 20000
        return FourTuple(SERVER_ADDRESS, SERVER_PORT, host, port)


class TPCADemuxSimulation:
    """Demux-level TPC/A: the arrival process drives the algorithm."""

    def __init__(self, config: TPCAConfig, algorithm: DemuxAlgorithm):
        self.config = config
        self.algorithm = algorithm
        self.sim = Simulator()
        bind_tracer_clock(algorithm, self.sim)
        self._rng = RngRegistry(config.seed).stream("tpca.think")
        self._pcbs: List[PCB] = []
        self.transactions_completed = 0

    def _populate(self) -> None:
        """Install one established-connection PCB per user."""
        for index in range(self.config.n_users):
            pcb = PCB(self.config.user_tuple(index))
            self.algorithm.insert(pcb)
            self._pcbs.append(pcb)

    def _schedule_first_arrivals(self) -> None:
        """Stagger users by a random initial think so phases decorrelate."""
        for index in range(self.config.n_users):
            delay = self.config.think_model.sample(self._rng)
            self.sim.schedule(delay, self._query_arrives, index)

    def _query_arrives(self, index: int) -> None:
        cfg = self.config
        pcb = self._pcbs[index]
        tup = pcb.four_tuple
        # The query (a data packet), plus any redundant copies
        # arriving back to back.
        for _ in range(cfg.packets_per_exchange):
            self.algorithm.lookup(tup, PacketKind.DATA)
        # Server acks the query immediately (outbound).
        self.algorithm.note_send(pcb)
        # Response leaves R later (outbound).
        self.sim.schedule(cfg.response_time, self._response_sent, index)
        # Next query from this user arrives R + D + T after this one.
        think = cfg.think_model.sample(self._rng)
        self.sim.schedule(
            cfg.response_time + cfg.round_trip + think, self._query_arrives, index
        )

    def _response_sent(self, index: int) -> None:
        self.algorithm.note_send(self._pcbs[index])
        # The response's transport-level ack arrives D after it left.
        self.sim.schedule(self.config.round_trip, self._ack_arrives, index)

    def _ack_arrives(self, index: int) -> None:
        tup = self._pcbs[index].four_tuple
        for _ in range(self.config.packets_per_exchange):
            self.algorithm.lookup(tup, PacketKind.ACK)
        self.transactions_completed += 1

    def run(self) -> WorkloadResult:
        """Populate, warm up, measure, and snapshot the statistics."""
        cfg = self.config
        self._populate()
        self._schedule_first_arrivals()
        if cfg.warmup:
            self.sim.run(until=cfg.warmup)
            self.algorithm.stats.reset()
            self.transactions_completed = 0
        self.sim.run(until=cfg.warmup + cfg.duration)
        return WorkloadResult.from_algorithm(
            self.algorithm,
            workload="tpca",
            n_connections=cfg.n_users,
            sim_time=cfg.duration,
        )


class TPCAFullStackSimulation:
    """Full-fidelity TPC/A: real handshakes, segments, and state machines.

    One :class:`HostStack` per user keeps client-side demultiplexing
    trivially cheap (each client has one connection), so the *server's*
    algorithm is the only interesting cost -- as in the paper, where
    "this packet will be received only by a client" dismisses the
    client side.
    """

    QUERY = b"x" * 100  # ~100-byte OLTP request
    RESPONSE = b"y" * 200  # ~200-byte OLTP reply

    def __init__(
        self,
        config: TPCAConfig,
        algorithm: DemuxAlgorithm,
        *,
        client_algorithm_factory=None,
        fault_models=None,
        max_connections=None,
        overflow_policy: str = "reject-new",
        idle_timeout=None,
        time_wait_timeout=None,
        spans=None,
    ):
        from ..core.bsd import BSDDemux

        self.config = config
        self.algorithm = algorithm
        self.sim = Simulator()
        bind_tracer_clock(algorithm, self.sim)
        self._rngs = RngRegistry(config.seed)
        #: Fault pipeline, when the run is adversarial.  Imported
        #: lazily so the base workload keeps its import graph clean.
        self.injector = None
        link_factory = None
        if fault_models:
            from ..faults.injector import FaultInjector, FaultyLink

            injector = FaultInjector(
                self.sim, fault_models, rng_registry=self._rngs.spawn("faults")
            )
            self.injector = injector

            def link_factory(sim, delay):
                return FaultyLink(sim, delay, injector=injector)

        self.network = Network(
            self.sim,
            default_delay=config.round_trip / 2.0,
            link_factory=link_factory,
        )
        self._client_factory = client_algorithm_factory or BSDDemux
        # Spans watch the server stack: the paper dismisses client-side
        # demux ("this packet will be received only by a client"), and
        # so does the per-packet journey record.
        self.server = HostStack(
            self.sim,
            self.network,
            SERVER_ADDRESS,
            algorithm,
            max_connections=max_connections,
            overflow_policy=overflow_policy,
            idle_timeout=idle_timeout,
            time_wait_timeout=time_wait_timeout,
            spans=spans,
        )
        self.clients: List[HostStack] = []
        self.transactions_completed = 0
        #: Completed transactions per user index -- the fault matrix's
        #: goodput signal ("did every non-blackholed user get through?").
        self.transactions_by_user: List[int] = [0] * config.n_users
        self._connected = 0
        #: User-perceived response times (query sent -> response
        #: received), for the TPC/A validity rule: at least 90% of
        #: transactions must respond within two seconds (paper §2).
        self.response_times: List[float] = []

    def _setup(self) -> None:
        cfg = self.config
        think_rng = self._rngs.stream("tpca.think")
        self.server.listen(SERVER_PORT, on_data=self._server_on_data)
        for index in range(cfg.n_users):
            tup = cfg.user_tuple(index)
            client = HostStack(
                self.sim, self.network, tup.remote_addr, self._client_factory()
            )
            self.clients.append(client)
            # Stagger connection setup over the first second so the
            # server's listener is not hit by N simultaneous SYNs.
            start = index * (1.0 / max(cfg.n_users, 1))
            self.sim.schedule(
                start, self._connect_user, index, client, tup, think_rng
            )

    def _connect_user(
        self, index: int, client: HostStack, tup: FourTuple, think_rng
    ) -> None:
        # Per-endpoint timestamp of the in-flight query, for response
        # time measurement (one outstanding transaction per user).
        pending = {"sent_at": None}

        def on_establish(endpoint) -> None:
            self._connected += 1
            think = self.config.think_model.sample(think_rng)
            self.sim.schedule(think, self._enter_transaction, endpoint,
                              think_rng, pending)

        def on_data(endpoint, data: bytes) -> None:
            # Response received: think, then enter the next transaction.
            self.transactions_completed += 1
            self.transactions_by_user[index] += 1
            if pending["sent_at"] is not None:
                self.response_times.append(self.sim.now - pending["sent_at"])
                pending["sent_at"] = None
            think = self.config.think_model.sample(think_rng)
            self.sim.schedule(think, self._enter_transaction, endpoint,
                              think_rng, pending)

        client.connect(
            tup.local_addr,  # the server, from the client's viewpoint
            tup.local_port,
            local_port=tup.remote_port,
            on_establish=on_establish,
            on_data=on_data,
        )

    def _enter_transaction(self, endpoint, think_rng, pending) -> None:
        from ..tcpstack.states import TCPState

        if endpoint.state is TCPState.ESTABLISHED:
            pending["sent_at"] = self.sim.now
            endpoint.send(self.QUERY)

    def response_time_percentile(self, q: float) -> float:
        """The ``q``-quantile (0..1) of measured response times."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.response_times:
            return 0.0
        ordered = sorted(self.response_times)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]

    @property
    def meets_tpca_response_rule(self) -> bool:
        """TPC/A validity: >= 90% of transactions within two seconds."""
        return self.response_time_percentile(0.90) <= 2.0

    @property
    def users_completed(self) -> int:
        """Users with at least one measured completed transaction."""
        return sum(1 for count in self.transactions_by_user if count > 0)

    def _server_on_data(self, endpoint, data: bytes) -> None:
        # "Database processing" takes R; then the response goes out.
        self.sim.schedule(
            self.config.response_time, self._server_respond, endpoint
        )

    def _server_respond(self, endpoint) -> None:
        from ..tcpstack.states import TCPState

        if endpoint.state in (TCPState.ESTABLISHED, TCPState.CLOSE_WAIT):
            endpoint.send(self.RESPONSE)

    def run(self) -> WorkloadResult:
        cfg = self.config
        self._setup()
        # Let every connection establish before measuring: handshake
        # packets would otherwise pollute the steady-state statistics.
        settle = max(2.0, cfg.warmup)
        self.sim.run(until=settle)
        self.algorithm.stats.reset()
        self.transactions_completed = 0
        self.transactions_by_user = [0] * cfg.n_users
        self.response_times.clear()
        self.sim.run(until=settle + cfg.duration)
        return WorkloadResult.from_algorithm(
            self.algorithm,
            workload="tpca-fullstack",
            n_connections=len(self.server.table),
            sim_time=cfg.duration,
        )
