"""Mixed OLTP + bulk-transfer traffic.

The paper's pitch for the Sequent algorithm is not just the TPC/A win:
it "still maintain[s] good performance for packet-train traffic"
(abstract) -- the regime where BSD's one-entry cache shines.  This
workload interleaves both: N_oltp low-rate OLTP connections (TPC/A
arrival pattern) sharing the server with a few bulk connections whose
trains burst between transactions.  A structure wins here only if it
handles *both* the no-locality and the high-locality extremes.
"""

from __future__ import annotations

import dataclasses

from ..core.base import DemuxAlgorithm
from ..core.pcb import PCB
from ..core.stats import PacketKind
from ..packet.addresses import FourTuple, IPv4Address
from ..sim.engine import Simulator
from ..sim.rng import RngRegistry
from .base import WorkloadResult, bind_tracer_clock

__all__ = ["MixedConfig", "MixedWorkload"]


@dataclasses.dataclass(frozen=True)
class MixedConfig:
    """Parameters of a mixed OLTP/bulk run."""

    n_oltp_users: int = 400
    n_bulk_connections: int = 4
    mean_think: float = 10.0
    response_time: float = 0.2
    round_trip: float = 0.001
    #: Bulk segments per second per bulk connection.
    bulk_rate: float = 500.0
    #: Segments per train burst.
    train_length: int = 32
    duration: float = 60.0
    warmup: float = 10.0
    seed: int = 1

    def __post_init__(self) -> None:
        if self.n_oltp_users < 1:
            raise ValueError("need at least one OLTP user")
        if self.n_bulk_connections < 0:
            raise ValueError("bulk connection count must be non-negative")
        if self.mean_think <= 0 or self.duration <= 0:
            raise ValueError("mean think and duration must be positive")
        if self.bulk_rate <= 0 or self.train_length < 1:
            raise ValueError("bulk rate must be positive, train length >= 1")
        if self.warmup < 0 or self.response_time < 0 or self.round_trip < 0:
            raise ValueError("times must be non-negative")


class MixedWorkload:
    """OLTP users and bulk trains sharing one demux structure."""

    def __init__(self, config: MixedConfig, algorithm: DemuxAlgorithm):
        self.config = config
        self.algorithm = algorithm
        self.sim = Simulator()
        bind_tracer_clock(algorithm, self.sim)
        rngs = RngRegistry(config.seed)
        self._think_rng = rngs.stream("mixed.think")
        self._bulk_rng = rngs.stream("mixed.bulk")
        self._oltp_pcbs = []
        self._bulk_tuples = []
        self.oltp_transactions = 0
        self.bulk_segments = 0

    def _populate(self) -> None:
        cfg = self.config
        server = IPv4Address("10.0.0.1")
        for index in range(cfg.n_oltp_users):
            tup = FourTuple(
                server, 1521, IPv4Address("10.4.0.1") + index, 41000 + index
            )
            pcb = PCB(tup)
            self.algorithm.insert(pcb)
            self._oltp_pcbs.append(pcb)
        for index in range(cfg.n_bulk_connections):
            tup = FourTuple(
                server, 20, IPv4Address("10.5.0.1") + index, 42000 + index
            )
            self.algorithm.insert(PCB(tup))
            self._bulk_tuples.append(tup)

    def _start(self) -> None:
        cfg = self.config
        for index in range(cfg.n_oltp_users):
            self.sim.schedule(
                self._think_rng.expovariate(1.0 / cfg.mean_think),
                self._query_arrives,
                index,
            )
        for index in range(cfg.n_bulk_connections):
            self.sim.schedule(
                self._bulk_rng.random() * 0.1, self._train_arrives, index
            )

    # -- OLTP side (same shape as TPCADemuxSimulation) ---------------------

    def _query_arrives(self, index: int) -> None:
        cfg = self.config
        pcb = self._oltp_pcbs[index]
        self.algorithm.lookup(pcb.four_tuple, PacketKind.DATA)
        self.algorithm.note_send(pcb)
        self.sim.schedule(cfg.response_time, self._response_sent, index)
        think = self._think_rng.expovariate(1.0 / cfg.mean_think)
        self.sim.schedule(
            cfg.response_time + cfg.round_trip + think, self._query_arrives, index
        )

    def _response_sent(self, index: int) -> None:
        self.algorithm.note_send(self._oltp_pcbs[index])
        self.sim.schedule(self.config.round_trip, self._ack_arrives, index)

    def _ack_arrives(self, index: int) -> None:
        self.algorithm.lookup(
            self._oltp_pcbs[index].four_tuple, PacketKind.ACK
        )
        self.oltp_transactions += 1

    # -- bulk side ----------------------------------------------------------

    def _train_arrives(self, index: int) -> None:
        cfg = self.config
        tup = self._bulk_tuples[index]
        segment_gap = 1.0 / cfg.bulk_rate
        for i in range(cfg.train_length):
            self.sim.schedule(i * segment_gap, self._bulk_segment, tup, i)
        # Next train after the current one drains plus an idle gap.
        idle = self._bulk_rng.expovariate(1.0 / (cfg.train_length * segment_gap))
        self.sim.schedule(
            cfg.train_length * segment_gap + idle, self._train_arrives, index
        )

    def _bulk_segment(self, tup: FourTuple, position: int) -> None:
        self.algorithm.lookup(tup, PacketKind.DATA)
        self.bulk_segments += 1
        if position % 2 == 1:
            self.algorithm.lookup(tup, PacketKind.ACK)

    def run(self) -> WorkloadResult:
        cfg = self.config
        self._populate()
        self._start()
        if cfg.warmup:
            self.sim.run(until=cfg.warmup)
            self.algorithm.stats.reset()
            self.oltp_transactions = 0
            self.bulk_segments = 0
        self.sim.run(until=cfg.warmup + cfg.duration)
        return WorkloadResult.from_algorithm(
            self.algorithm,
            workload="mixed",
            n_connections=cfg.n_oltp_users + cfg.n_bulk_connections,
            sim_time=cfg.duration,
        )
