"""Bulk-transfer packet trains (the regime BSD's cache was built for).

"Many recent protocol optimizations for TCP assume that a large
component of TCP traffic is bulk-data transfers, which result in packet
trains [JR86].  If packet trains are prevalent ... a very simple
one-PCB cache like those used in BSD systems yields very high cache hit
rates" (paper, Section 1 abstract).  The Sequent algorithm must keep
that property ("while still maintaining good performance for
packet-train traffic"), which this workload verifies.

The model: N established connections; transfers arrive as trains of L
consecutive data segments on one connection (with a transport ack
flowing back mid-train every ``ack_every`` segments, exercising both
packet kinds), and successive trains pick their connection uniformly or
by a Zipf-like popularity law.  With mean train length L, a one-entry
cache hits at least (L-1)/L of the time.
"""

from __future__ import annotations

import dataclasses

from ..core.base import DemuxAlgorithm
from ..core.pcb import PCB
from ..core.stats import PacketKind
from ..packet.addresses import FourTuple, IPv4Address
from ..sim.rng import RngRegistry
from .base import WorkloadResult

__all__ = ["TrainConfig", "PacketTrainWorkload"]


@dataclasses.dataclass(frozen=True)
class TrainConfig:
    """Parameters of a packet-train run."""

    n_connections: int = 8
    #: Mean train length in segments (geometric; the Jain/Routhier
    #: packet-train model has geometric-ish inter-car gaps).
    mean_train_length: int = 64
    #: Trains to generate.
    n_trains: int = 500
    #: A pure ack arrives after every this many data segments.
    ack_every: int = 2
    #: Zipf-like skew across connections; 0 = uniform.
    popularity_skew: float = 0.0
    seed: int = 1

    def __post_init__(self) -> None:
        if self.n_connections < 1:
            raise ValueError("need at least one connection")
        if self.mean_train_length < 1:
            raise ValueError("mean train length must be >= 1")
        if self.n_trains < 1:
            raise ValueError("need at least one train")
        if self.ack_every < 1:
            raise ValueError("ack_every must be >= 1")
        if self.popularity_skew < 0:
            raise ValueError("popularity skew must be non-negative")


class PacketTrainWorkload:
    """Drives a demux algorithm with bulk-transfer packet trains."""

    def __init__(self, config: TrainConfig, algorithm: DemuxAlgorithm):
        self.config = config
        self.algorithm = algorithm
        self._rng = RngRegistry(config.seed).stream("trains")
        self._tuples = []
        self._weights = []

    def _populate(self) -> None:
        cfg = self.config
        server = IPv4Address("10.0.0.1")
        for index in range(cfg.n_connections):
            tup = FourTuple(
                server, 9000, IPv4Address("10.2.0.1") + index, 50000 + index
            )
            self.algorithm.insert(PCB(tup))
            self._tuples.append(tup)
            # Zipf-like weights 1/(rank+1)^skew.
            self._weights.append(1.0 / (index + 1) ** cfg.popularity_skew)

    def _pick_connection(self) -> FourTuple:
        return self._rng.choices(self._tuples, weights=self._weights, k=1)[0]

    def _train_length(self) -> int:
        mean = self.config.mean_train_length
        if mean == 1:
            return 1
        # Geometric with the requested mean, floored at one segment.
        p = 1.0 / mean
        length = 1
        while self._rng.random() > p:
            length += 1
        return length

    def run(self) -> WorkloadResult:
        cfg = self.config
        self._populate()
        segments = 0
        for _ in range(cfg.n_trains):
            tup = self._pick_connection()
            length = self._train_length()
            for i in range(length):
                self.algorithm.lookup(tup, PacketKind.DATA)
                segments += 1
                if (i + 1) % cfg.ack_every == 0:
                    self.algorithm.lookup(tup, PacketKind.ACK)
                    segments += 1
        return WorkloadResult.from_algorithm(
            self.algorithm,
            workload="trains",
            n_connections=cfg.n_connections,
            sim_time=0.0,  # untimed; trains are back to back
        )
