"""Shared workload result types.

Every workload (TPC/A, packet trains, polling, mixes) runs some traffic
against a demultiplexing algorithm and reports a :class:`WorkloadResult`
snapshot of the algorithm's lookup statistics, so experiments compare
algorithms and workloads through one shape.
"""

from __future__ import annotations

import dataclasses

from ..core.base import DemuxAlgorithm
from ..core.stats import PacketKind
from ..sim.engine import Simulator

__all__ = ["WorkloadResult", "bind_tracer_clock"]


def bind_tracer_clock(algorithm: DemuxAlgorithm, sim: Simulator) -> None:
    """Stamp the algorithm's trace events with ``sim``'s virtual time.

    Simulation-driven workloads call this right after constructing
    their :class:`Simulator`, so a tracer attached to the algorithm
    *before* the workload is built gets virtual timestamps without any
    caller plumbing.  An already-bound clock is left alone (the caller
    may have bound something deliberately).
    """
    tracer = algorithm.tracer
    if tracer is not None and tracer.clock is None:
        tracer.clock = lambda: sim.now
    spans = getattr(algorithm, "spans", None)
    if spans is not None and spans.clock is None:
        spans.clock = lambda: sim.now


@dataclasses.dataclass(frozen=True)
class WorkloadResult:
    """Measured demultiplexing cost of one workload run."""

    algorithm: str
    workload: str
    n_connections: int
    sim_time: float
    lookups: int
    #: Mean PCBs examined per inbound packet -- the paper's figure of merit.
    mean_examined: float
    data_lookups: int
    data_mean_examined: float
    ack_lookups: int
    ack_mean_examined: float
    cache_hit_rate: float
    ack_cache_hit_rate: float
    max_examined: int

    @classmethod
    def from_algorithm(
        cls,
        algorithm: DemuxAlgorithm,
        *,
        workload: str,
        n_connections: int,
        sim_time: float,
    ) -> "WorkloadResult":
        """Snapshot ``algorithm.stats`` into a result record."""
        stats = algorithm.stats
        data = stats.kind(PacketKind.DATA)
        ack = stats.kind(PacketKind.ACK)
        combined = stats.combined()
        return cls(
            algorithm=algorithm.name,
            workload=workload,
            n_connections=n_connections,
            sim_time=sim_time,
            lookups=stats.lookups,
            mean_examined=stats.mean_examined,
            data_lookups=data.lookups,
            data_mean_examined=data.mean_examined,
            ack_lookups=ack.lookups,
            ack_mean_examined=ack.mean_examined,
            cache_hit_rate=stats.hit_rate,
            ack_cache_hit_rate=ack.hit_rate,
            max_examined=combined.max_examined,
        )

    def summary(self) -> str:
        return (
            f"{self.workload}/{self.algorithm}:"
            f" N={self.n_connections}"
            f" lookups={self.lookups}"
            f" mean={self.mean_examined:.2f}"
            f" (data {self.data_mean_examined:.2f},"
            f" ack {self.ack_mean_examined:.2f})"
            f" hit={self.cache_hit_rate:.2%}"
        )
