"""TPC/A with connection churn: sessions that end and reconnect.

The paper's model holds the connection population fixed -- reasonable
for heads-down terminals logged in all shift -- but real OLTP fleets
cycle: clients reconnect after idle timeouts, crashes, or session
limits.  Churn exercises the structures' *mutation* paths (insert,
remove, cache invalidation) under load, which no fixed-population
experiment touches, and it shifts list order continuously: in BSD and
MTF, a reconnecting user's PCB re-enters at the head, so churn
actually *helps* the list structures a little while costing the hashed
structure nothing.

Model: the demux-level TPC/A arrival process, where each user
disconnects after a geometrically distributed number of transactions
(mean ``transactions_per_session``) and reconnects on a fresh
ephemeral port after ``reconnect_delay``.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from ..core.base import DemuxAlgorithm
from ..core.pcb import PCB
from ..core.stats import PacketKind
from ..packet.addresses import FourTuple
from ..sim.engine import Simulator
from ..sim.rng import RngRegistry
from .base import WorkloadResult, bind_tracer_clock
from .thinktime import ExponentialThink, ThinkTimeModel
from .tpca import TPCAConfig

__all__ = ["ChurnConfig", "ChurnWorkload"]


@dataclasses.dataclass(frozen=True)
class ChurnConfig:
    """Parameters of a churning TPC/A run."""

    n_users: int = 500
    response_time: float = 0.2
    round_trip: float = 0.001
    think_model: ThinkTimeModel = ExponentialThink(10.0)
    #: Mean transactions before a user disconnects (geometric).
    transactions_per_session: float = 20.0
    #: Seconds between disconnect and the new connection's first use.
    reconnect_delay: float = 1.0
    duration: float = 120.0
    warmup: float = 20.0
    seed: int = 1

    def __post_init__(self) -> None:
        if self.n_users < 1:
            raise ValueError("need at least one user")
        if self.transactions_per_session < 1:
            raise ValueError("transactions_per_session must be >= 1")
        if self.reconnect_delay < 0:
            raise ValueError("reconnect delay must be non-negative")
        if self.duration <= 0 or self.warmup < 0:
            raise ValueError("duration must be positive, warmup non-negative")
        if self.response_time < 0 or self.round_trip < 0:
            raise ValueError("times must be non-negative")


class ChurnWorkload:
    """Demux-level TPC/A with per-user session churn."""

    def __init__(self, config: ChurnConfig, algorithm: DemuxAlgorithm):
        self.config = config
        self.algorithm = algorithm
        self.sim = Simulator()
        bind_tracer_clock(algorithm, self.sim)
        rngs = RngRegistry(config.seed)
        self._think_rng = rngs.stream("churn.think")
        self._session_rng = rngs.stream("churn.session")
        self._pcbs: List[Optional[PCB]] = [None] * config.n_users
        # Each reconnect takes the next port for that user.
        self._generation = [0] * config.n_users
        self._base_config = TPCAConfig(n_users=config.n_users)
        self.transactions_completed = 0
        self.sessions_completed = 0

    def _tuple_for(self, index: int) -> FourTuple:
        base = self._base_config.user_tuple(index)
        generation = self._generation[index]
        port = 40000 + (base.remote_port - 40000 + generation * 631) % 25000
        return base._replace(remote_port=port)

    def _connect(self, index: int) -> None:
        pcb = PCB(self._tuple_for(index))
        self.algorithm.insert(pcb)
        self._pcbs[index] = pcb

    def _disconnect(self, index: int) -> None:
        pcb = self._pcbs[index]
        if pcb is not None:
            self.algorithm.remove(pcb.four_tuple)
            self._pcbs[index] = None
            self._generation[index] += 1
            self.sessions_completed += 1

    def _session_ends_now(self) -> bool:
        return (
            self._session_rng.random()
            < 1.0 / self.config.transactions_per_session
        )

    def _start(self) -> None:
        for index in range(self.config.n_users):
            self._connect(index)
            delay = self.config.think_model.sample(self._think_rng)
            self.sim.schedule(delay, self._query_arrives, index)

    def _query_arrives(self, index: int) -> None:
        cfg = self.config
        pcb = self._pcbs[index]
        if pcb is None:  # disconnected mid-flight; reconnect path owns it
            return
        self.algorithm.lookup(pcb.four_tuple, PacketKind.DATA)
        self.algorithm.note_send(pcb)
        self.sim.schedule(cfg.response_time, self._response_sent, index)

    def _response_sent(self, index: int) -> None:
        pcb = self._pcbs[index]
        if pcb is None:
            return
        self.algorithm.note_send(pcb)
        self.sim.schedule(self.config.round_trip, self._ack_arrives, index)

    def _ack_arrives(self, index: int) -> None:
        cfg = self.config
        pcb = self._pcbs[index]
        if pcb is None:
            return
        self.algorithm.lookup(pcb.four_tuple, PacketKind.ACK)
        self.transactions_completed += 1
        if self._session_ends_now():
            self._disconnect(index)
            self.sim.schedule(cfg.reconnect_delay, self._reconnect, index)
        else:
            think = cfg.think_model.sample(self._think_rng)
            self.sim.schedule(think, self._query_arrives, index)

    def _reconnect(self, index: int) -> None:
        self._connect(index)
        think = self.config.think_model.sample(self._think_rng)
        self.sim.schedule(think, self._query_arrives, index)

    def run(self) -> WorkloadResult:
        cfg = self.config
        self._start()
        if cfg.warmup:
            self.sim.run(until=cfg.warmup)
            self.algorithm.stats.reset()
            self.transactions_completed = 0
            self.sessions_completed = 0
        self.sim.run(until=cfg.warmup + cfg.duration)
        return WorkloadResult.from_algorithm(
            self.algorithm,
            workload="churn",
            n_connections=cfg.n_users,
            sim_time=cfg.duration,
        )
