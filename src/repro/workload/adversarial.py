"""Adversarial workloads: traffic designed to hurt the demux path.

The TPC/A workload is friendly -- long-lived connections, well-formed
segments, Poisson arrivals.  These generators are not:

* :class:`SynFloodWorkload` sprays spoofed SYNs (sources that will
  never answer the SYN-ACK) at a full-stack server, filling a bounded
  PCB table with half-open connections while legitimate clients try to
  get work done -- the classic resource-exhaustion attack the
  ``table-full`` drop reason and the eviction policy exist for.
* :class:`ChurnStormWorkload` mutates a demux structure as fast as the
  paper's model allows -- insert, look up, remove, repeat -- checking
  that caches and chains survive high connection turnover without
  statistical drift.
* :class:`MalformedStreamWorkload` feeds a host's ``deliver`` raw
  garbage: random bytes, truncated packets, bit-flipped valid frames,
  and non-TCP protocols.  The contract is simple: everything is either
  parsed or counted as a ``corrupt`` drop, and nothing ever raises.

All three are seeded through :class:`~repro.sim.rng.RngRegistry`
streams, so an attack replays exactly.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from ..core.base import DemuxAlgorithm
from ..core.pcb import PCB
from ..core.stats import PacketKind
from ..packet.addresses import FourTuple, IPv4Address
from ..packet.builder import Packet, build_packet
from ..packet.ip import IPProto, IPv4Header
from ..packet.tcp import TCPFlags, TCPSegment
from ..sim.engine import Simulator
from ..sim.network import Network
from ..sim.rng import RngRegistry
from ..tcpstack.stack import HostStack
from .base import bind_tracer_clock

__all__ = [
    "ChurnStormResult",
    "ChurnStormWorkload",
    "MalformedStreamResult",
    "MalformedStreamWorkload",
    "SynFloodResult",
    "SynFloodWorkload",
]


# ---------------------------------------------------------------------------
# SYN flood


@dataclasses.dataclass
class SynFloodResult:
    """What the flood did and what the server did about it."""

    syns_sent: int
    table_full_drops: int
    embryonic_evictions: int
    resets_sent: int
    pcbs_remaining: int
    legit_connected: int
    legit_attempted: int

    def summary(self) -> str:
        return (
            f"syn-flood: {self.syns_sent} SYNs,"
            f" {self.table_full_drops} shed (table full),"
            f" {self.embryonic_evictions} evictions,"
            f" legit {self.legit_connected}/{self.legit_attempted}"
        )


class SynFloodWorkload:
    """Spoofed-SYN flood against a (usually bounded) full-stack server.

    Spoofed sources are never attached to the network, so the server's
    SYN-ACKs go to nowhere and each admitted SYN parks a half-open
    (SYN_RCVD) PCB in the table until its handshake retransmissions
    exhaust -- exactly how the real attack starves real listeners.
    ``legit_clients`` genuine clients connect mid-flood to measure the
    collateral damage under each overflow policy.
    """

    def __init__(
        self,
        *,
        algorithm: DemuxAlgorithm,
        syn_rate: float = 200.0,
        duration: float = 10.0,
        legit_clients: int = 5,
        max_connections: Optional[int] = 64,
        overflow_policy: str = "reject-new",
        idle_timeout: Optional[float] = None,
        time_wait_timeout: Optional[float] = None,
        seed: int = 1,
    ):
        if syn_rate <= 0:
            raise ValueError(f"syn_rate must be positive, got {syn_rate}")
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        self.sim = Simulator()
        bind_tracer_clock(algorithm, self.sim)
        self.network = Network(self.sim)
        self._rngs = RngRegistry(seed)
        self._attack_rng = self._rngs.stream("synflood.attack")
        self.server = HostStack(
            self.sim,
            self.network,
            IPv4Address("10.0.0.1"),
            algorithm,
            max_connections=max_connections,
            overflow_policy=overflow_policy,
            idle_timeout=idle_timeout,
            time_wait_timeout=time_wait_timeout,
        )
        self.port = 80
        self.syn_rate = syn_rate
        self.duration = duration
        self.legit_clients = legit_clients
        self.syns_sent = 0
        self.legit_connected = 0
        self._iss = 0

    def _spoofed_syn(self) -> Packet:
        rng = self._attack_rng
        src = IPv4Address("172.16.0.0") + rng.randrange(1, 1 << 20)
        self._iss = (self._iss + 12345) & 0xFFFFFFFF
        segment = TCPSegment(
            src_port=rng.randrange(1024, 65536),
            dst_port=self.port,
            seq=self._iss,
            flags=TCPFlags.SYN,
        )
        return Packet(
            ip=IPv4Header(src=src, dst=self.server.address), tcp=segment
        )

    def _fire(self) -> None:
        if self.sim.now >= self.duration:
            return
        self.syns_sent += 1
        self.network.send(self._spoofed_syn())
        self.sim.schedule(
            self._attack_rng.expovariate(self.syn_rate), self._fire
        )

    def _connect_legit(self, index: int) -> None:
        client = HostStack(
            self.sim,
            self.network,
            IPv4Address("10.0.1.0") + (index + 1),
            _fresh_bsd(),
        )

        def on_establish(endpoint) -> None:
            self.legit_connected += 1

        client.connect(self.server.address, self.port,
                       on_establish=on_establish)

    def run(self, *, settle: float = 30.0) -> SynFloodResult:
        """Flood, let retransmission timeouts drain, and report."""
        self.server.listen(self.port)
        self.sim.schedule(0.0, self._fire)
        # Legitimate clients arrive spread across the flood window.
        for index in range(self.legit_clients):
            when = (index + 1) * self.duration / (self.legit_clients + 1)
            self.sim.schedule(when, self._connect_legit, index)
        self.sim.run(until=self.duration + settle)
        return SynFloodResult(
            syns_sent=self.syns_sent,
            table_full_drops=self.server.drops["table-full"],
            embryonic_evictions=self.server.table.embryonic_evictions,
            resets_sent=self.server.resets_sent,
            pcbs_remaining=len(self.server.table),
            legit_connected=self.legit_connected,
            legit_attempted=self.legit_clients,
        )


def _fresh_bsd() -> DemuxAlgorithm:
    from ..core.bsd import BSDDemux

    return BSDDemux()


# ---------------------------------------------------------------------------
# Connection churn storm


@dataclasses.dataclass
class ChurnStormResult:
    """Mutation-storm outcome: operation counts and a final census."""

    inserts: int
    removes: int
    lookups: int
    lookups_found: int
    pcbs_remaining: int
    mean_examined: float

    def summary(self) -> str:
        return (
            f"churn-storm: {self.inserts} inserts, {self.removes} removes,"
            f" {self.lookups} lookups ({self.lookups_found} found),"
            f" {self.pcbs_remaining} PCBs left,"
            f" mean examined {self.mean_examined:.2f}"
        )


class ChurnStormWorkload:
    """Demux-level mutation storm: rapid insert/lookup/remove turnover.

    Each step flips a biased coin: grow (insert a fresh connection),
    shrink (remove a random live one), or look up -- half the lookups
    target live connections, half misses.  The storm leaves the
    structure with whatever population the walk produced; the caller
    checks the structure's own census (``__len__`` vs iteration) and
    the stats conventions afterwards.
    """

    def __init__(
        self,
        algorithm: DemuxAlgorithm,
        *,
        steps: int = 10000,
        grow_bias: float = 0.5,
        seed: int = 1,
    ):
        if steps < 1:
            raise ValueError(f"steps must be >= 1, got {steps}")
        if not 0.0 <= grow_bias <= 1.0:
            raise ValueError(f"grow_bias must be in [0, 1], got {grow_bias}")
        self.algorithm = algorithm
        self.steps = steps
        self.grow_bias = grow_bias
        self._rng = RngRegistry(seed).stream("churnstorm")
        self._live: List[FourTuple] = []
        self._next_id = 0

    def _fresh_tuple(self) -> FourTuple:
        index = self._next_id
        self._next_id += 1
        return FourTuple(
            IPv4Address("10.0.0.1"),
            1521,
            IPv4Address("10.2.0.0") + (index % 65534 + 1),
            40000 + index % 20000,
        )

    def run(self) -> ChurnStormResult:
        rng = self._rng
        inserts = removes = lookups = found = 0
        for _ in range(self.steps):
            action = rng.random()
            if action < self.grow_bias * 0.5 or not self._live:
                tup = self._fresh_tuple()
                self.algorithm.insert(PCB(tup))
                self._live.append(tup)
                inserts += 1
            elif action < self.grow_bias:
                victim = rng.randrange(len(self._live))
                self._live[victim], self._live[-1] = (
                    self._live[-1],
                    self._live[victim],
                )
                self.algorithm.remove(self._live.pop())
                removes += 1
            else:
                if rng.random() < 0.5:
                    tup = self._live[rng.randrange(len(self._live))]
                else:
                    tup = self._fresh_tuple()  # a guaranteed miss
                kind = (
                    PacketKind.DATA if rng.random() < 0.5 else PacketKind.ACK
                )
                result = self.algorithm.lookup(tup, kind)
                lookups += 1
                if result.found:
                    found += 1
        stats = self.algorithm.stats.combined()
        return ChurnStormResult(
            inserts=inserts,
            removes=removes,
            lookups=lookups,
            lookups_found=found,
            pcbs_remaining=len(self.algorithm),
            mean_examined=stats.mean_examined,
        )


# ---------------------------------------------------------------------------
# Malformed segment stream


@dataclasses.dataclass
class MalformedStreamResult:
    """Per-category delivery counts and the server's verdicts."""

    delivered: int
    by_category: Dict[str, int]
    corrupt_drops: int
    parsed_ok: int

    def summary(self) -> str:
        cats = ", ".join(f"{k}={v}" for k, v in sorted(self.by_category.items()))
        return (
            f"malformed-stream: {self.delivered} frames ({cats}),"
            f" {self.corrupt_drops} corrupt drops, {self.parsed_ok} parsed"
        )


class MalformedStreamWorkload:
    """Feeds a host's inbound path byte streams that must not hurt it.

    Four categories, chosen per frame:

    * ``garbage`` -- uniformly random bytes of random length;
    * ``truncated`` -- a valid frame cut short mid-header or mid-payload;
    * ``bitflip`` -- a valid frame with 1-4 random bits flipped;
    * ``non-tcp`` -- a well-formed IPv4 header carrying UDP/ICMP.

    The contract under test: every frame is either parsed (flips can,
    rarely, cancel in the ones-complement checksum) or counted as a
    ``corrupt`` drop -- and ``deliver`` never raises.
    """

    CATEGORIES = ("garbage", "truncated", "bitflip", "non-tcp")

    def __init__(
        self,
        server: HostStack,
        *,
        frames: int = 200,
        interval: float = 0.001,
        seed: int = 1,
    ):
        if frames < 1:
            raise ValueError(f"frames must be >= 1, got {frames}")
        self.server = server
        self.sim = server.sim
        self.frames = frames
        self.interval = interval
        self._rng = RngRegistry(seed).stream("malformed")
        self.sent_by_category: Dict[str, int] = {c: 0 for c in self.CATEGORIES}

    def _valid_frame(self) -> bytes:
        """A parseable data segment aimed at the server."""
        rng = self._rng
        return build_packet(
            IPv4Address("10.3.0.0") + rng.randrange(1, 1000),
            self.server.address,
            TCPSegment(
                src_port=rng.randrange(1024, 65536),
                dst_port=1521,
                seq=rng.randrange(1 << 32),
                ack=rng.randrange(1 << 32),
                flags=TCPFlags.ACK | TCPFlags.PSH,
                payload=bytes(rng.getrandbits(8) for _ in range(rng.randrange(1, 64))),
            ),
        )

    def _make_frame(self) -> bytes:
        rng = self._rng
        category = self.CATEGORIES[rng.randrange(len(self.CATEGORIES))]
        self.sent_by_category[category] += 1
        if category == "garbage":
            length = rng.randrange(1, 120)
            return bytes(rng.getrandbits(8) for _ in range(length))
        if category == "truncated":
            frame = self._valid_frame()
            return frame[: rng.randrange(1, len(frame))]
        if category == "bitflip":
            data = bytearray(self._valid_frame())
            for _ in range(rng.randrange(1, 5)):
                position = rng.randrange(len(data) * 8)
                data[position // 8] ^= 1 << (position % 8)
            return bytes(data)
        # non-tcp: honest IPv4, wrong protocol.
        protocol = IPProto.UDP if rng.random() < 0.5 else IPProto.ICMP
        payload = bytes(rng.getrandbits(8) for _ in range(16))
        header = IPv4Header(
            src=IPv4Address("10.3.0.0") + rng.randrange(1, 1000),
            dst=self.server.address,
            protocol=protocol,
            payload_length=len(payload),
        )
        return header.build() + payload

    def run(self) -> MalformedStreamResult:
        drops_before = self.server.drops["corrupt"]
        received_before = self.server.packets_received
        for index in range(self.frames):
            self.sim.schedule(
                index * self.interval, self.server.deliver, self._make_frame()
            )
        self.sim.run(until=(self.frames + 1) * self.interval)
        delivered = self.server.packets_received - received_before
        corrupt = self.server.drops["corrupt"] - drops_before
        return MalformedStreamResult(
            delivered=delivered,
            by_category=dict(self.sent_by_category),
            corrupt_drops=corrupt,
            parsed_ok=delivered - corrupt,
        )
