"""Deterministic round-robin polling: move-to-front's worst case.

"Note that a TPC/A is not the worst case; if the think times were
deterministic (exactly 10 seconds always), Crowcroft's algorithm would
look through all 2,000 PCBs on each transaction entry.  One example of
a system with this behavior is a central server polling its clients, as
seen in many point-of-sale terminal applications" (paper, Section 3.2).

The model: the server cycles through its N terminals in a fixed order;
each poll produces one inbound data packet (the terminal's reply) and
one inbound pure ack.  Between a terminal's consecutive replies, every
other terminal has replied exactly once -- so under move-to-front the
terminal's PCB has sunk to the very tail of the list every time.
"""

from __future__ import annotations

import dataclasses

from ..core.base import DemuxAlgorithm
from ..core.pcb import PCB
from ..core.stats import PacketKind
from ..packet.addresses import FourTuple, IPv4Address
from .base import WorkloadResult

__all__ = ["PollingConfig", "PollingWorkload"]


@dataclasses.dataclass(frozen=True)
class PollingConfig:
    """Parameters of a polling run."""

    n_terminals: int = 100
    #: Complete polling cycles to run.
    n_cycles: int = 50
    #: Whether each reply is followed by a transport-level ack inbound
    #: to the server (terminal acks the server's next poll).
    with_acks: bool = True

    def __post_init__(self) -> None:
        if self.n_terminals < 1:
            raise ValueError("need at least one terminal")
        if self.n_cycles < 1:
            raise ValueError("need at least one cycle")


class PollingWorkload:
    """Round-robin terminal replies against a demux algorithm."""

    def __init__(self, config: PollingConfig, algorithm: DemuxAlgorithm):
        self.config = config
        self.algorithm = algorithm
        self._tuples = []

    def _populate(self) -> None:
        server = IPv4Address("10.0.0.1")
        for index in range(self.config.n_terminals):
            tup = FourTuple(
                server, 7000, IPv4Address("10.3.0.1") + index, 60000 + index % 5000
            )
            self.algorithm.insert(PCB(tup))
            self._tuples.append(tup)

    def run(self) -> WorkloadResult:
        cfg = self.config
        self._populate()
        for _ in range(cfg.n_cycles):
            for tup in self._tuples:
                self.algorithm.lookup(tup, PacketKind.DATA)
                if cfg.with_acks:
                    self.algorithm.lookup(tup, PacketKind.ACK)
        return WorkloadResult.from_algorithm(
            self.algorithm,
            workload="polling",
            n_connections=cfg.n_terminals,
            sim_time=0.0,
        )
