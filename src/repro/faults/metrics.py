"""Fault and drop counters exported through :mod:`repro.obs`.

Two delta-publishing exporters in the style of
:class:`repro.obs.metrics.DemuxStatsExporter`:

* :class:`StackFaultExporter` publishes a host's inbound-drop taxonomy
  (``packet_drops_total{reason="corrupt"|...}``) plus its bounded-table
  counters and current occupancy;
* :class:`InjectorExporter` publishes what the fault pipeline *did*
  (``faults_injected_total{fault=...,action=...}``) and folds injected
  losses into the same ``packet_drops_total`` family under
  ``reason="injected-loss"`` so one metric answers "where did my
  packets go?".

Repeated ``publish()`` calls add only the delta since the previous
call, keeping counters monotonic.  The :func:`publish_stack` and
:func:`publish_injector` helpers cover the common end-of-run,
publish-once case.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..obs.metrics import MetricsRegistry

__all__ = [
    "StackFaultExporter",
    "InjectorExporter",
    "publish_stack",
    "publish_injector",
]

#: Metric family shared by stack drops and injected losses.
DROPS_METRIC = "packet_drops_total"
FAULTS_METRIC = "faults_injected_total"


class StackFaultExporter:
    """Publishes a ``HostStack``'s drop taxonomy and table pressure."""

    def __init__(self, registry: MetricsRegistry, *, host: str = ""):
        self.host = host
        self._drops = registry.counter(
            DROPS_METRIC, "inbound packets dropped, by taxonomy reason"
        )
        self._rejections = registry.counter(
            "pcb_overflow_rejections_total",
            "connection attempts refused by a full bounded PCB table",
        )
        self._evictions = registry.counter(
            "pcb_embryonic_evictions_total",
            "embryonic connections evicted to admit new ones",
        )
        self._table_size = registry.gauge(
            "pcb_table_size", "current established-connection PCB count"
        )
        self._last_drops: Dict[str, int] = {}
        self._last_rejections = 0
        self._last_evictions = 0

    def _labels(self, **extra: str) -> Dict[str, str]:
        labels = dict(extra)
        if self.host:
            labels["host"] = self.host
        return labels

    def publish(self, stack) -> None:
        for reason, count in stack.drops.items():
            prev = self._last_drops.get(reason, 0)
            if count < prev:
                prev = 0  # counters were reset
            self._drops.inc(count - prev, **self._labels(reason=reason))
            self._last_drops[reason] = count
        table = stack.table
        rejections = table.overflow_rejections
        evictions = table.embryonic_evictions
        if rejections < self._last_rejections:
            self._last_rejections = 0
        if evictions < self._last_evictions:
            self._last_evictions = 0
        self._rejections.inc(rejections - self._last_rejections, **self._labels())
        self._evictions.inc(evictions - self._last_evictions, **self._labels())
        self._last_rejections = rejections
        self._last_evictions = evictions
        self._table_size.set(len(table), **self._labels())


class InjectorExporter:
    """Publishes a ``FaultInjector``'s per-model action counts."""

    def __init__(self, registry: MetricsRegistry, *, host: str = ""):
        self.host = host
        self._faults = registry.counter(
            FAULTS_METRIC, "fault-pipeline actions, by model and action"
        )
        self._drops = registry.counter(
            DROPS_METRIC, "inbound packets dropped, by taxonomy reason"
        )
        self._seen = registry.counter(
            "fault_packets_seen_total", "packets judged by the fault pipeline"
        )
        self._last_counts: Dict[Tuple[str, str], int] = {}
        self._last_dropped = 0
        self._last_seen = 0

    def _labels(self, **extra: str) -> Dict[str, str]:
        labels = dict(extra)
        if self.host:
            labels["host"] = self.host
        return labels

    def publish(self, injector) -> None:
        for (model, action), count in injector.counts.items():
            prev = self._last_counts.get((model, action), 0)
            if count < prev:
                prev = 0
            self._faults.inc(
                count - prev, **self._labels(fault=model, action=action)
            )
            self._last_counts[(model, action)] = count
        dropped = injector.packets_dropped
        seen = injector.packets_seen
        if dropped < self._last_dropped:
            self._last_dropped = 0
        if seen < self._last_seen:
            self._last_seen = 0
        self._drops.inc(
            dropped - self._last_dropped, **self._labels(reason="injected-loss")
        )
        self._seen.inc(seen - self._last_seen, **self._labels())
        self._last_dropped = dropped
        self._last_seen = seen


def publish_stack(registry: MetricsRegistry, stack, *, host: str = "") -> None:
    """One-shot export of a stack's drop/table counters (end of run)."""
    StackFaultExporter(registry, host=host).publish(stack)


def publish_injector(registry: MetricsRegistry, injector, *, host: str = "") -> None:
    """One-shot export of an injector's fault counts (end of run)."""
    InjectorExporter(registry, host=host).publish(injector)
