"""Fault-specification strings: one line describes a fault mix.

The CLI, the fault matrix, and the benchmarks all configure fault
pipelines from compact specs so a scenario fits in a flag::

    loss=0.1                        10% i.i.d. loss
    ge=0.05:0.45                    Gilbert-Elliott, ~10% bursty loss
    ge=0.05:0.45:0.8                ... with 80% loss in the bad state
    reorder=0.02:0.01               2% of packets held 10 ms out of FIFO
    dup=0.01                        1% duplicated once
    dup=0.01:2                      ... twice
    corrupt=0.005                   0.5% single-bit corruption
    corrupt=0.005:3                 ... three bit flips
    blackhole=5:10                  total loss in [5 s, 10 s)
    flap=4:0.25                     down the last 25% of every 4 s

Comma-separated terms compose into one pipeline, applied in the order
written: ``"ge=0.05:0.45,reorder=0.02:0.01,dup=0.01,corrupt=0.005"``.
Building fresh model instances per call keeps spec strings reusable
across runs (models carry per-run Markov/rng state).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from .models import (
    Blackhole,
    Corrupt,
    Duplicate,
    FaultModel,
    GilbertElliottLoss,
    IIDLoss,
    LinkFlap,
    Reorder,
)

__all__ = ["FaultSpecError", "parse_fault_spec", "STANDARD_MIXES"]


class FaultSpecError(ValueError):
    """Raised for malformed fault specification strings."""


def _floats(name: str, text: str, minimum: int, maximum: int) -> List[float]:
    parts = [p for p in text.split(":") if p != ""]
    if not minimum <= len(parts) <= maximum:
        expected = (
            f"{minimum}" if minimum == maximum else f"{minimum}-{maximum}"
        )
        raise FaultSpecError(
            f"{name!r} takes {expected} colon-separated value(s),"
            f" got {len(parts)} in {text!r}"
        )
    try:
        return [float(p) for p in parts]
    except ValueError as exc:
        raise FaultSpecError(f"bad number in {name}={text!r}: {exc}") from None


def _make_loss(text: str) -> FaultModel:
    (rate,) = _floats("loss", text, 1, 1)
    return IIDLoss(rate)


def _make_ge(text: str) -> FaultModel:
    values = _floats("ge", text, 2, 3)
    kwargs = {}
    if len(values) == 3:
        kwargs["bad_loss"] = values[2]
    return GilbertElliottLoss(values[0], values[1], **kwargs)


def _make_reorder(text: str) -> FaultModel:
    values = _floats("reorder", text, 1, 2)
    spike = values[1] if len(values) == 2 else 0.01
    return Reorder(values[0], spike)


def _make_dup(text: str) -> FaultModel:
    values = _floats("dup", text, 1, 2)
    copies = int(values[1]) if len(values) == 2 else 1
    return Duplicate(values[0], copies)


def _make_corrupt(text: str) -> FaultModel:
    values = _floats("corrupt", text, 1, 2)
    bits = int(values[1]) if len(values) == 2 else 1
    return Corrupt(values[0], bits)


def _make_blackhole(text: str) -> FaultModel:
    start, end = _floats("blackhole", text, 2, 2)
    return Blackhole(start, end)


def _make_flap(text: str) -> FaultModel:
    values = _floats("flap", text, 2, 3)
    offset = values[2] if len(values) == 3 else 0.0
    return LinkFlap(values[0], values[1], offset)


_MAKERS: Dict[str, Callable[[str], FaultModel]] = {
    "loss": _make_loss,
    "ge": _make_ge,
    "reorder": _make_reorder,
    "dup": _make_dup,
    "corrupt": _make_corrupt,
    "blackhole": _make_blackhole,
    "flap": _make_flap,
}


def parse_fault_spec(spec: str) -> List[FaultModel]:
    """Build a fresh model pipeline from a spec string.

    Raises :class:`FaultSpecError` for unknown terms or bad values;
    an empty/whitespace spec yields an empty pipeline.
    """
    models: List[FaultModel] = []
    for term in spec.split(","):
        term = term.strip()
        if not term:
            continue
        name, sep, value = term.partition("=")
        name = name.strip().lower()
        if name not in _MAKERS:
            known = ", ".join(sorted(_MAKERS))
            raise FaultSpecError(f"unknown fault {name!r}; known: {known}")
        if not sep:
            raise FaultSpecError(f"fault {name!r} needs =values, got {term!r}")
        models.append(_MAKERS[name](value.strip()))
    return models


#: Named mixes the fault matrix and the chaos CI job sweep.  The "ge10"
#: entries run the acceptance scenario: ~10% bursty loss plus
#: reordering and duplication.
STANDARD_MIXES: Sequence = (
    ("clean", ""),
    ("iid5", "loss=0.05"),
    ("ge10", "ge=0.05:0.45,reorder=0.02:0.005,dup=0.02"),
    ("chaos", "ge=0.05:0.45,reorder=0.05:0.005,dup=0.05,corrupt=0.02"),
)
