"""Fault injection, adversarial workloads, and robustness audits.

The demultiplexing algorithms are studied under clean traffic; this
package asks what happens when the network misbehaves.  It provides:

* deterministic, seeded fault models (:mod:`repro.faults.models`) and
  the pipeline/link machinery that applies them
  (:mod:`repro.faults.injector`);
* compact fault-spec strings and standard mixes
  (:mod:`repro.faults.config`);
* post-run structural audits (:mod:`repro.faults.audit`) -- the "no
  PCB leaks, no table drift" contract;
* metric exporters for drop taxonomy and fault counts
  (:mod:`repro.faults.metrics`);
* the algorithms x mixes x seeds campaign runner
  (:mod:`repro.faults.matrix`).
"""

from .audit import PCBAudit, audit_stack
from .config import STANDARD_MIXES, FaultSpecError, parse_fault_spec
from .infra import (
    InfraFault,
    ShardCrash,
    ShardStall,
    SnapshotCorruption,
    parse_infra_spec,
    parse_mixed_spec,
)
from .injector import FaultInjector, FaultyLink
from .matrix import (
    DEFAULT_ALGORITHMS,
    FaultMatrixCell,
    FaultMatrixResult,
    run_fault_cell,
    run_fault_matrix,
)
from .metrics import (
    InjectorExporter,
    StackFaultExporter,
    publish_injector,
    publish_stack,
)
from .models import (
    Blackhole,
    Corrupt,
    Duplicate,
    FaultModel,
    FaultPlan,
    GilbertElliottLoss,
    IIDLoss,
    LinkFlap,
    Reorder,
    describe_models,
)

__all__ = [
    "Blackhole",
    "Corrupt",
    "DEFAULT_ALGORITHMS",
    "Duplicate",
    "FaultInjector",
    "FaultMatrixCell",
    "FaultMatrixResult",
    "FaultModel",
    "FaultPlan",
    "FaultSpecError",
    "FaultyLink",
    "GilbertElliottLoss",
    "IIDLoss",
    "InfraFault",
    "InjectorExporter",
    "LinkFlap",
    "PCBAudit",
    "Reorder",
    "STANDARD_MIXES",
    "ShardCrash",
    "ShardStall",
    "SnapshotCorruption",
    "StackFaultExporter",
    "audit_stack",
    "describe_models",
    "parse_fault_spec",
    "parse_infra_spec",
    "parse_mixed_spec",
    "publish_injector",
    "publish_stack",
    "run_fault_cell",
    "run_fault_matrix",
]
