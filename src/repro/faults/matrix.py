"""The fault matrix: algorithms x fault mixes x seeds, with verdicts.

One campaign runs the full-stack TPC/A workload under every
combination of demux algorithm, fault mix (:data:`STANDARD_MIXES` by
default), and seed, and judges each cell against the robustness
contract:

* the run completes without any exception escaping the dispatch loop;
* the post-run PCB audit (:func:`repro.faults.audit.audit_stack`)
  finds no leaked, duplicated, or miscounted table entries;
* goodput is recorded (transactions completed, fraction of users who
  completed at least one) so degradation is a *curve*, not a crash.

The matrix renders as a text table and a JSON document; the CLI's
``fault-matrix`` subcommand writes both into ``results/`` and exits
nonzero if any cell failed -- the chaos CI job's contract.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..core.registry import make_algorithm
from ..workload.thinktime import ExponentialThink
from ..workload.tpca import TPCAConfig, TPCAFullStackSimulation
from .audit import audit_stack
from .config import STANDARD_MIXES, parse_fault_spec

__all__ = [
    "DEFAULT_ALGORITHMS",
    "FaultMatrixCell",
    "FaultMatrixResult",
    "run_fault_cell",
    "run_fault_matrix",
]

#: The three algorithm families the degradation curves must cover.
DEFAULT_ALGORITHMS: Sequence[str] = ("bsd", "sendrecv", "sequent:h=19")


@dataclasses.dataclass
class FaultMatrixCell:
    """One (algorithm, mix, seed) run and its verdict."""

    algorithm: str
    mix: str
    spec: str
    seed: int
    ok: bool = False
    error: str = ""
    audit_violations: List[str] = dataclasses.field(default_factory=list)
    transactions: int = 0
    users_completed: int = 0
    n_users: int = 0
    mean_examined: float = 0.0
    #: Inbound packets the server stack accepted -- the denominator
    #: the SLO watchdog's drop-rate rule divides by.
    packets_received: int = 0
    drops: Dict[str, int] = dataclasses.field(default_factory=dict)
    faults_injected: int = 0
    fault_digest: str = ""

    @property
    def completion_rate(self) -> float:
        return self.users_completed / self.n_users if self.n_users else 0.0

    def to_dict(self) -> Dict[str, Any]:
        data = dataclasses.asdict(self)
        data["completion_rate"] = self.completion_rate
        return data


@dataclasses.dataclass
class FaultMatrixResult:
    """A whole campaign: every cell plus campaign-level parameters."""

    cells: List[FaultMatrixCell]
    n_users: int
    duration: float

    @property
    def ok(self) -> bool:
        return all(cell.ok for cell in self.cells)

    @property
    def failures(self) -> List[FaultMatrixCell]:
        return [cell for cell in self.cells if not cell.ok]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "n_users": self.n_users,
            "duration": self.duration,
            "ok": self.ok,
            "cells": [cell.to_dict() for cell in self.cells],
        }

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def render_text(self) -> str:
        """A fixed-width report table, one row per cell."""
        header = (
            f"{'algorithm':<16} {'mix':<8} {'seed':>4} {'txns':>7}"
            f" {'users':>9} {'mean':>6} {'drops':>6} {'verdict':<8}"
        )
        lines = [
            f"fault matrix: {self.n_users} users, {self.duration:g}s measured",
            header,
            "-" * len(header),
        ]
        for cell in self.cells:
            users = f"{cell.users_completed}/{cell.n_users}"
            dropped = sum(cell.drops.values())
            verdict = "ok" if cell.ok else "FAIL"
            lines.append(
                f"{cell.algorithm:<16} {cell.mix:<8} {cell.seed:>4}"
                f" {cell.transactions:>7} {users:>9}"
                f" {cell.mean_examined:>6.2f} {dropped:>6} {verdict:<8}"
            )
            if cell.error:
                lines.append(f"    error: {cell.error}")
            for violation in cell.audit_violations:
                lines.append(f"    audit: {violation}")
        lines.append("-" * len(header))
        status = "PASS" if self.ok else f"FAIL ({len(self.failures)} cell(s))"
        lines.append(f"verdict: {status}")
        return "\n".join(lines)


def run_fault_cell(
    algorithm_spec: str,
    mix_name: str,
    fault_spec: str,
    seed: int,
    *,
    n_users: int = 20,
    duration: float = 30.0,
    think_mean: float = 2.0,
    max_connections: Optional[int] = None,
    overflow_policy: str = "reject-new",
) -> FaultMatrixCell:
    """Run one matrix cell; never raises (failures land in the cell)."""
    cell = FaultMatrixCell(
        algorithm=algorithm_spec,
        mix=mix_name,
        spec=fault_spec,
        seed=seed,
        n_users=n_users,
    )
    try:
        config = TPCAConfig(
            n_users=n_users,
            think_model=ExponentialThink(think_mean),
            duration=duration,
            warmup=5.0,
            seed=seed,
        )
        simulation = TPCAFullStackSimulation(
            config,
            make_algorithm(algorithm_spec),
            fault_models=parse_fault_spec(fault_spec),
            max_connections=max_connections,
            overflow_policy=overflow_policy,
        )
        result = simulation.run()
    except Exception as exc:  # the contract: nothing may escape
        cell.error = f"{type(exc).__name__}: {exc}"
        return cell
    audit = audit_stack(simulation.server)
    cell.audit_violations = list(audit.violations)
    cell.transactions = simulation.transactions_completed
    cell.users_completed = simulation.users_completed
    cell.mean_examined = result.mean_examined
    cell.packets_received = simulation.server.packets_received
    cell.drops = dict(simulation.server.drops)
    if simulation.injector is not None:
        cell.faults_injected = (
            simulation.injector.packets_dropped
            + simulation.injector.packets_reordered
            + simulation.injector.packets_duplicated
            + simulation.injector.packets_corrupted
        )
        cell.fault_digest = simulation.injector.schedule_digest()
    cell.ok = audit.ok and not cell.error
    return cell


def run_fault_matrix(
    *,
    algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
    mixes: Sequence[Tuple[str, str]] = STANDARD_MIXES,
    seeds: Sequence[int] = (1,),
    n_users: int = 20,
    duration: float = 30.0,
    think_mean: float = 2.0,
    max_connections: Optional[int] = None,
    overflow_policy: str = "reject-new",
    progress: Optional[Callable[[FaultMatrixCell], None]] = None,
) -> FaultMatrixResult:
    """Sweep the campaign; ``progress`` is called after each cell."""
    cells: List[FaultMatrixCell] = []
    for algorithm_spec in algorithms:
        for mix_name, fault_spec in mixes:
            for seed in seeds:
                cell = run_fault_cell(
                    algorithm_spec,
                    mix_name,
                    fault_spec,
                    seed,
                    n_users=n_users,
                    duration=duration,
                    think_mean=think_mean,
                    max_connections=max_connections,
                    overflow_policy=overflow_policy,
                )
                cells.append(cell)
                if progress is not None:
                    progress(cell)
    return FaultMatrixResult(cells=cells, n_users=n_users, duration=duration)
