"""Composable per-packet fault models.

Each model inspects one in-flight packet and mutates a
:class:`FaultPlan` -- drop it, hold it past its successors (delay-spike
reordering, the hazard Wu et al. study for TCP receive paths),
duplicate it, or flip bits in its serialized form so the receiver's
checksums must reject it.  Models are deterministic given their seed:
every stochastic decision draws from a named
:class:`~repro.sim.rng.RngRegistry` stream bound once by the
:class:`~repro.faults.injector.FaultInjector`, so an identical (seed,
fault config) pair replays a byte-identical fault schedule.

Loss comes in three temporal flavours:

* :class:`IIDLoss` -- independent Bernoulli drops, the textbook model;
* :class:`GilbertElliottLoss` -- the classic two-state Markov burst
  model (a good state and a lossy bad state), which is what real
  congested or noisy links look like;
* :class:`Blackhole` / :class:`LinkFlap` -- total loss over scheduled
  windows, for route-withdrawal and flapping-interface scenarios.
"""

from __future__ import annotations

import abc
from typing import List, Optional

__all__ = [
    "FaultPlan",
    "FaultModel",
    "IIDLoss",
    "GilbertElliottLoss",
    "Reorder",
    "Duplicate",
    "Corrupt",
    "Blackhole",
    "LinkFlap",
]


class FaultPlan:
    """What should happen to one packet, accumulated across models.

    The injector materializes the plan after every model has spoken:
    ``drop`` wins over everything; otherwise the packet is delivered
    ``1 + duplicates`` times, held ``extra_delay`` seconds past the
    link latency (bypassing the FIFO clamp, so successors overtake it),
    and -- if ``corrupt_bits`` is nonzero -- serialized to bytes with
    that many random bit flips, forcing the receiver down its
    checksum-rejection path.
    """

    __slots__ = ("drop", "drop_by", "extra_delay", "duplicates", "corrupt_bits")

    def __init__(self) -> None:
        self.drop = False
        #: Name of the model that dropped the packet (for accounting).
        self.drop_by: Optional[str] = None
        self.extra_delay = 0.0
        self.duplicates = 0
        self.corrupt_bits = 0

    @property
    def faulted(self) -> bool:
        """Whether any model touched this packet."""
        return (
            self.drop
            or self.extra_delay > 0.0
            or self.duplicates > 0
            or self.corrupt_bits > 0
        )

    def signature(self) -> str:
        """Compact, canonical rendering for the determinism digest."""
        return (
            f"d={int(self.drop)}:{self.drop_by or '-'}"
            f",r={self.extra_delay:.9f}"
            f",u={self.duplicates},c={self.corrupt_bits}"
        )


class FaultModel(abc.ABC):
    """One fault mechanism in the injector pipeline.

    Subclasses implement :meth:`apply`; stochastic decisions must use
    ``self.rng`` (bound by the injector) and time-based ones
    ``self.sim.now``, never any other randomness or clock.
    """

    #: Machine-readable model name (rng stream suffix, counter label).
    name = "fault"

    def __init__(self) -> None:
        self.rng = None
        self.sim = None

    def bind(self, rng, sim) -> None:
        """Give the model its private rng stream and the sim clock."""
        self.rng = rng
        self.sim = sim

    @abc.abstractmethod
    def apply(self, plan: FaultPlan, packet) -> None:
        """Inspect ``packet`` and mutate ``plan``."""

    def describe(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.describe()}>"


def _check_probability(label: str, value: float) -> float:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{label} must be in [0, 1], got {value}")
    return value


class IIDLoss(FaultModel):
    """Independent per-packet loss with probability ``rate``."""

    name = "loss"

    def __init__(self, rate: float):
        super().__init__()
        self.rate = _check_probability("loss rate", rate)

    def apply(self, plan: FaultPlan, packet) -> None:
        if plan.drop or not self.rate:
            return
        if self.rate >= 1.0 or self.rng.random() < self.rate:
            plan.drop = True
            plan.drop_by = self.name

    def describe(self) -> str:
        return f"loss(p={self.rate})"


class GilbertElliottLoss(FaultModel):
    """Two-state Markov (Gilbert-Elliott) bursty loss.

    The chain advances one step per packet: from GOOD it enters BAD
    with probability ``p_enter_bad``; from BAD it returns with
    probability ``p_exit_bad``.  Packets drop with probability
    ``good_loss`` in GOOD (usually 0) and ``bad_loss`` in BAD (1.0 for
    the classic Gilbert model).  The stationary loss rate is
    ``bad_loss * p_enter_bad / (p_enter_bad + p_exit_bad)`` -- e.g.
    (0.05, 0.45) spends 10% of packets in the bad state.
    """

    name = "ge"

    def __init__(
        self,
        p_enter_bad: float,
        p_exit_bad: float,
        *,
        bad_loss: float = 1.0,
        good_loss: float = 0.0,
    ):
        super().__init__()
        self.p_enter_bad = _check_probability("p_enter_bad", p_enter_bad)
        self.p_exit_bad = _check_probability("p_exit_bad", p_exit_bad)
        self.bad_loss = _check_probability("bad_loss", bad_loss)
        self.good_loss = _check_probability("good_loss", good_loss)
        self.in_bad_state = False
        self.bad_packets = 0

    @property
    def stationary_loss_rate(self) -> float:
        denom = self.p_enter_bad + self.p_exit_bad
        if denom == 0.0:
            return self.good_loss
        bad_fraction = self.p_enter_bad / denom
        return bad_fraction * self.bad_loss + (1 - bad_fraction) * self.good_loss

    def apply(self, plan: FaultPlan, packet) -> None:
        # Advance the chain on every packet, even already-dropped ones,
        # so burst timing does not depend on upstream models.
        if self.in_bad_state:
            if self.rng.random() < self.p_exit_bad:
                self.in_bad_state = False
        else:
            if self.rng.random() < self.p_enter_bad:
                self.in_bad_state = True
        if self.in_bad_state:
            self.bad_packets += 1
        if plan.drop:
            return
        loss = self.bad_loss if self.in_bad_state else self.good_loss
        if loss and (loss >= 1.0 or self.rng.random() < loss):
            plan.drop = True
            plan.drop_by = self.name

    def describe(self) -> str:
        return (
            f"ge(p={self.p_enter_bad}, r={self.p_exit_bad},"
            f" mean_loss={self.stationary_loss_rate:.3f})"
        )


class Reorder(FaultModel):
    """Delay-spike reordering: hold a packet so successors overtake it.

    With probability ``rate``, the packet's delivery is scheduled
    ``spike`` seconds late *outside* the link's FIFO clamp.  Any packet
    sent within the spike window arrives first, producing genuine
    out-of-order delivery at the receiver (which must re-ack, not
    crash -- the Wu et al. hazard).
    """

    name = "reorder"

    def __init__(self, rate: float, spike: float = 0.01):
        super().__init__()
        self.rate = _check_probability("reorder rate", rate)
        if spike <= 0:
            raise ValueError(f"spike must be positive, got {spike}")
        self.spike = spike

    def apply(self, plan: FaultPlan, packet) -> None:
        if plan.drop or not self.rate:
            return
        if self.rng.random() < self.rate:
            plan.extra_delay += self.spike

    def describe(self) -> str:
        return f"reorder(p={self.rate}, spike={self.spike}s)"


class Duplicate(FaultModel):
    """Deliver ``copies`` extra copies with probability ``rate``."""

    name = "dup"

    def __init__(self, rate: float, copies: int = 1):
        super().__init__()
        self.rate = _check_probability("duplication rate", rate)
        if copies < 1:
            raise ValueError(f"copies must be >= 1, got {copies}")
        self.copies = copies

    def apply(self, plan: FaultPlan, packet) -> None:
        if plan.drop or not self.rate:
            return
        if self.rate >= 1.0 or self.rng.random() < self.rate:
            plan.duplicates += self.copies

    def describe(self) -> str:
        return f"dup(p={self.rate}, copies={self.copies})"


class Corrupt(FaultModel):
    """Flip ``bits`` random bits in the serialized packet.

    The flipped copy is delivered as raw bytes, so the receiving
    :class:`~repro.tcpstack.stack.HostStack` parses it and the IP or
    TCP checksum rejects it end-to-end (``PacketError`` -> counted
    drop, never an exception out of the dispatch loop).
    """

    name = "corrupt"

    def __init__(self, rate: float, bits: int = 1):
        super().__init__()
        self.rate = _check_probability("corruption rate", rate)
        if bits < 1:
            raise ValueError(f"bits must be >= 1, got {bits}")
        self.bits = bits

    def apply(self, plan: FaultPlan, packet) -> None:
        if plan.drop or not self.rate:
            return
        if self.rate >= 1.0 or self.rng.random() < self.rate:
            plan.corrupt_bits += self.bits

    def describe(self) -> str:
        return f"corrupt(p={self.rate}, bits={self.bits})"


class Blackhole(FaultModel):
    """Total loss inside the ``[start, end)`` virtual-time window."""

    name = "blackhole"

    def __init__(self, start: float, end: float):
        super().__init__()
        if end <= start:
            raise ValueError(f"empty blackhole window [{start}, {end})")
        self.start = start
        self.end = end

    @property
    def active(self) -> bool:
        return self.start <= self.sim.now < self.end

    def apply(self, plan: FaultPlan, packet) -> None:
        if plan.drop:
            return
        if self.active:
            plan.drop = True
            plan.drop_by = self.name

    def describe(self) -> str:
        return f"blackhole([{self.start}s, {self.end}s))"


class LinkFlap(FaultModel):
    """Periodic link outage: down for ``down_fraction`` of each period.

    A link that is up for ``period * (1 - down_fraction)`` seconds and
    then drops everything for the remainder, repeating -- the flapping
    interface / route-dampening scenario.  ``offset`` shifts the phase.
    """

    name = "flap"

    def __init__(self, period: float, down_fraction: float, offset: float = 0.0):
        super().__init__()
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self.period = period
        self.down_fraction = _check_probability("down_fraction", down_fraction)
        self.offset = offset

    @property
    def active(self) -> bool:
        phase = (self.sim.now - self.offset) % self.period
        return phase >= self.period * (1.0 - self.down_fraction)

    def apply(self, plan: FaultPlan, packet) -> None:
        if plan.drop:
            return
        if self.down_fraction and self.active:
            plan.drop = True
            plan.drop_by = self.name

    def describe(self) -> str:
        return f"flap(period={self.period}s, down={self.down_fraction:.0%})"


def describe_models(models: List[FaultModel]) -> str:
    """One-line rendering of a pipeline, in application order."""
    return " -> ".join(model.describe() for model in models) or "(none)"
