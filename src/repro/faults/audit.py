"""Post-run invariant audits: did the stack survive *cleanly*?

Fault campaigns are only meaningful if the absence of a crash implies
the absence of damage.  :func:`audit_stack` checks the structural
invariants a :class:`~repro.tcpstack.stack.HostStack` must uphold no
matter what the network did to it:

* the demux structure's ``__len__`` agrees with iteration (no
  algorithm-internal bookkeeping drift);
* no four-tuple appears twice (duplicate PCBs shadow each other and
  corrupt lookup statistics);
* no PCB belongs to a CLOSED endpoint (a leak: teardown ran but the
  table entry survived);
* with a bounded table, occupancy never exceeds ``max_connections``.

The result is a :class:`PCBAudit` report rather than an assertion so
the fault matrix can aggregate violations across a whole campaign and
the chaos CI job can print every failure before exiting nonzero.
"""

from __future__ import annotations

import dataclasses
from typing import List

from ..tcpstack.endpoint import TCPEndpoint
from ..tcpstack.stack import HostStack
from ..tcpstack.states import TCPState

__all__ = ["PCBAudit", "audit_stack"]


@dataclasses.dataclass
class PCBAudit:
    """Outcome of one post-run table audit."""

    host: str
    table_len: int
    iterated: int
    violations: List[str] = dataclasses.field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def describe(self) -> str:
        status = "OK" if self.ok else f"{len(self.violations)} violation(s)"
        lines = [f"audit {self.host}: {self.table_len} PCBs, {status}"]
        lines.extend(f"  - {violation}" for violation in self.violations)
        return "\n".join(lines)


def audit_stack(stack: HostStack, *, expect_empty: bool = False) -> PCBAudit:
    """Audit one host's PCB table; see the module docstring for checks.

    ``expect_empty=True`` additionally flags any surviving PCB -- the
    right setting after a run whose every connection was closed.
    """
    pcbs = list(stack.table)
    audit = PCBAudit(
        host=str(stack.address),
        table_len=len(stack.table),
        iterated=len(pcbs),
    )
    if audit.table_len != audit.iterated:
        audit.violations.append(
            f"__len__ says {audit.table_len} but iteration"
            f" yields {audit.iterated}"
        )
    seen = set()
    for pcb in pcbs:
        tup = pcb.four_tuple
        if tup in seen:
            audit.violations.append(f"duplicate PCB for {tup}")
        seen.add(tup)
        endpoint = pcb.user_data
        if isinstance(endpoint, TCPEndpoint) and endpoint.state is TCPState.CLOSED:
            audit.violations.append(f"leaked PCB for CLOSED endpoint {tup}")
    limit = stack.table.max_connections
    if limit is not None and audit.iterated > limit:
        audit.violations.append(
            f"table over capacity: {audit.iterated} > {limit}"
        )
    if expect_empty and pcbs:
        audit.violations.append(
            f"expected empty table, found {len(pcbs)} PCB(s)"
        )
    return audit
