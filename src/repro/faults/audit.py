"""Post-run invariant audits: did the stack survive *cleanly*?

Fault campaigns are only meaningful if the absence of a crash implies
the absence of damage.  :func:`audit_stack` checks the structural
invariants a :class:`~repro.tcpstack.stack.HostStack` must uphold no
matter what the network did to it:

* the demux structure's ``__len__`` agrees with iteration (no
  algorithm-internal bookkeeping drift);
* no four-tuple appears twice (duplicate PCBs shadow each other and
  corrupt lookup statistics);
* no PCB belongs to a CLOSED endpoint (a leak: teardown ran but the
  table entry survived);
* with a bounded table, occupancy never exceeds ``max_connections``.

The result is a :class:`PCBAudit` report rather than an assertion so
the fault matrix can aggregate violations across a whole campaign and
the chaos CI job can print every failure before exiting nonzero.

:func:`audit_leaks` is the memory-bounds companion: it checks that a
demux structure's *auxiliary* state (the fast path's interned-key
table, per shard for sharded facades) has not outgrown the live
connection population -- the class of slow leak a crash-free fault
campaign would otherwise never notice.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from ..lifecycle.metrics import count_interned
from ..tcpstack.endpoint import TCPEndpoint
from ..tcpstack.stack import HostStack
from ..tcpstack.states import TCPState

__all__ = ["LeakAudit", "PCBAudit", "audit_leaks", "audit_stack"]


@dataclasses.dataclass
class PCBAudit:
    """Outcome of one post-run table audit."""

    host: str
    table_len: int
    iterated: int
    violations: List[str] = dataclasses.field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def describe(self) -> str:
        status = "OK" if self.ok else f"{len(self.violations)} violation(s)"
        lines = [f"audit {self.host}: {self.table_len} PCBs, {status}"]
        lines.extend(f"  - {violation}" for violation in self.violations)
        return "\n".join(lines)


def audit_stack(stack: HostStack, *, expect_empty: bool = False) -> PCBAudit:
    """Audit one host's PCB table; see the module docstring for checks.

    ``expect_empty=True`` additionally flags any surviving PCB -- the
    right setting after a run whose every connection was closed.
    """
    pcbs = list(stack.table)
    audit = PCBAudit(
        host=str(stack.address),
        table_len=len(stack.table),
        iterated=len(pcbs),
    )
    if audit.table_len != audit.iterated:
        audit.violations.append(
            f"__len__ says {audit.table_len} but iteration"
            f" yields {audit.iterated}"
        )
    seen = set()
    for pcb in pcbs:
        tup = pcb.four_tuple
        if tup in seen:
            audit.violations.append(f"duplicate PCB for {tup}")
        seen.add(tup)
        endpoint = pcb.user_data
        if isinstance(endpoint, TCPEndpoint) and endpoint.state is TCPState.CLOSED:
            audit.violations.append(f"leaked PCB for CLOSED endpoint {tup}")
    limit = stack.table.max_connections
    if limit is not None and audit.iterated > limit:
        audit.violations.append(
            f"table over capacity: {audit.iterated} > {limit}"
        )
    if expect_empty and pcbs:
        audit.violations.append(
            f"expected empty table, found {len(pcbs)} PCB(s)"
        )
    return audit


@dataclasses.dataclass
class LeakAudit:
    """Outcome of one memory-bounds audit of a demux structure."""

    label: str
    live: int
    #: Total interned fast-path entries, or ``None`` for structures
    #: with no intern table (the references -- nothing *can* leak).
    interned: Optional[int]
    grace: int
    violations: List[str] = dataclasses.field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def describe(self) -> str:
        status = "OK" if self.ok else f"{len(self.violations)} violation(s)"
        interned = "n/a" if self.interned is None else str(self.interned)
        lines = [
            f"leak-audit {self.label}: live={self.live}"
            f" interned={interned} grace={self.grace}, {status}"
        ]
        lines.extend(f"  - {violation}" for violation in self.violations)
        return "\n".join(lines)


def audit_leaks(algorithm, *, grace: int = 0, label: Optional[str] = None) -> LeakAudit:
    """Check that ``algorithm``'s auxiliary state tracks its population.

    The memory-bounds contract (docs/fastpath.md): a fast structure
    interns exactly one key memo per *live* connection, so after any
    sequence of inserts, removes, and lookups --

    * total interned entries must not exceed live connections plus
      ``grace`` (whole structure *and* each shard of a sharded facade);
    * ``__len__`` must agree with iteration (bookkeeping drift is how
      these leaks hide).

    ``grace`` exists for structures that legitimately retain a bounded
    overhang; the stock fast path needs none.
    """
    name = label if label is not None else getattr(
        algorithm, "name", type(algorithm).__name__
    )
    live = len(algorithm)
    audit = LeakAudit(
        label=name, live=live, interned=count_interned(algorithm), grace=grace
    )
    iterated = sum(1 for _ in algorithm)
    if live != iterated:
        audit.violations.append(
            f"__len__ says {live} but iteration yields {iterated}"
        )
    if audit.interned is not None and audit.interned > live + grace:
        audit.violations.append(
            f"interned keys leak: {audit.interned} interned"
            f" > {live} live + {grace} grace"
        )
    for index, shard in enumerate(getattr(algorithm, "shards", ()) or ()):
        shard_interned = getattr(shard, "interned_entries", None)
        if shard_interned is None:
            continue
        shard_live = len(shard)
        if shard_interned > shard_live + grace:
            audit.violations.append(
                f"shard {index} interned keys leak: {shard_interned}"
                f" interned > {shard_live} live + {grace} grace"
            )
    return audit
