"""Infrastructure fault models: the *host* misbehaves, not the link.

The models in :mod:`repro.faults.models` corrupt traffic in flight;
these corrupt the demultiplexing machinery itself -- the failure domain
:mod:`repro.recovery` exists to survive:

* :class:`ShardCrash` -- ``crash=K:W``: K distinct shards lose their
  index structures at seeded packet offsets within the first W
  packets.  Drives :meth:`~repro.recovery.ShardSupervisor.crash_shard`.
* :class:`ShardStall` -- ``stall=K:W:D``: K shards go unresponsive for
  D packets each (steered packets dropped), then resume with state
  intact -- a wedged worker, not a dead one.  Drives
  :meth:`~repro.recovery.ShardSupervisor.stall_shard`.
* :class:`SnapshotCorruption` -- ``snapcorrupt=P[:bits]``: each
  checkpoint written is, with probability P, hit by ``bits`` random
  bit flips -- storage rot the snapshot checksum must catch at
  restore time.

Like the link models, every stochastic decision is seeded and
deterministic: an identical (seed, spec) pair replays an identical
crash/stall/corruption schedule.  The spec grammar composes with the
link grammar -- :func:`parse_mixed_spec` splits one comma-separated
string (``"ge=0.05:0.45,crash=1:500,snapcorrupt=0.2"``) into its link
and infrastructure pipelines, sharing
:class:`~repro.faults.config.FaultSpecError` for malformed terms.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Tuple

from ..sim.rng import derive_seed
from .config import FaultSpecError, _floats, _MAKERS
from .models import FaultModel

__all__ = [
    "InfraFault",
    "ShardCrash",
    "ShardStall",
    "SnapshotCorruption",
    "parse_infra_spec",
    "parse_mixed_spec",
]


class InfraFault:
    """Base class for infrastructure (host-side) fault models."""

    #: Machine-readable fault name (spec key, rng stream suffix).
    name = "infra"

    def describe(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.describe()}>"


def _check_positive(name: str, value: int) -> None:
    if value < 1:
        raise FaultSpecError(f"{name} must be >= 1, got {value}")


class ShardCrash(InfraFault):
    """K shard crashes at seeded packet offsets within a window.

    :meth:`schedule` materializes the concrete ``(packet_index,
    shard)`` events for a given shard count and seed; the scenario
    driver (the drill, the CLI) fires
    :meth:`~repro.recovery.ShardSupervisor.crash_shard` when the
    packet counter passes each offset.
    """

    name = "crash"

    def __init__(self, count: int = 1, window: int = 1000) -> None:
        _check_positive("crash count", count)
        _check_positive("crash window", window)
        self.count = count
        self.window = window

    def schedule(self, nshards: int, seed: int) -> List[Tuple[int, int]]:
        """Deterministic ``(packet_index, shard)`` events, time-ordered.

        Shards are sampled without replacement (a shard crashes at
        most once per schedule); at most ``nshards - 1`` crash so the
        structure always keeps a survivor.  With a single shard there
        is no survivor to keep, so no crash is scheduled at all.
        """
        if nshards < 1:
            raise ValueError(f"nshards must be >= 1, got {nshards}")
        if nshards == 1:
            return []
        rng = random.Random(derive_seed(seed, f"infra:{self.name}"))
        ncrashes = min(self.count, nshards - 1)
        shards = rng.sample(range(nshards), ncrashes)
        return sorted(
            (rng.randrange(1, self.window + 1), shard) for shard in shards
        )

    def describe(self) -> str:
        return f"{self.name}(count={self.count}, window={self.window})"


class ShardStall(InfraFault):
    """K temporary shard stalls: D dropped packets each, then resume."""

    name = "stall"

    def __init__(
        self, count: int = 1, window: int = 1000, duration: int = 100
    ) -> None:
        _check_positive("stall count", count)
        _check_positive("stall window", window)
        _check_positive("stall duration", duration)
        self.count = count
        self.window = window
        self.duration = duration

    def schedule(
        self, nshards: int, seed: int
    ) -> List[Tuple[int, int, int]]:
        """Deterministic ``(packet_index, shard, duration)`` events."""
        if nshards < 1:
            raise ValueError(f"nshards must be >= 1, got {nshards}")
        rng = random.Random(derive_seed(seed, f"infra:{self.name}"))
        shards = rng.sample(range(nshards), min(self.count, nshards))
        return sorted(
            (rng.randrange(1, self.window + 1), shard, self.duration)
            for shard in shards
        )

    def describe(self) -> str:
        return (
            f"{self.name}(count={self.count}, window={self.window},"
            f" duration={self.duration})"
        )


class SnapshotCorruption(InfraFault):
    """Seeded bit rot applied to checkpoint blobs as they are written.

    The supervisor passes every checkpoint through :meth:`mangle`;
    with probability ``probability`` the blob comes back with ``bits``
    random bit flips.  The point is not the flips -- it is that the
    snapshot layer's checksum *must* reject the blob at restore time
    instead of silently rebuilding a wrong structure.
    """

    name = "snapcorrupt"

    def __init__(self, probability: float, bits: int = 1) -> None:
        if not 0.0 <= probability <= 1.0:
            raise FaultSpecError(
                f"corruption probability must be in [0, 1], got {probability}"
            )
        _check_positive("corruption bits", bits)
        self.probability = probability
        self.bits = bits
        self._rng = random.Random(0)
        self.corrupted = 0

    def bind_seed(self, seed: int) -> None:
        """Re-seed the corruption stream (call once per scenario)."""
        self._rng = random.Random(derive_seed(seed, f"infra:{self.name}"))
        self.corrupted = 0

    def mangle(self, blob: bytes) -> bytes:
        """The blob as storage returns it: usually intact, sometimes not."""
        if not blob or self._rng.random() >= self.probability:
            return blob
        mutable = bytearray(blob)
        for _ in range(self.bits):
            position = self._rng.randrange(len(mutable) * 8)
            mutable[position // 8] ^= 1 << (position % 8)
        self.corrupted += 1
        return bytes(mutable)

    def describe(self) -> str:
        return f"{self.name}(p={self.probability}, bits={self.bits})"


def _make_crash(text: str) -> InfraFault:
    values = _floats("crash", text, 1, 2)
    window = int(values[1]) if len(values) == 2 else 1000
    return ShardCrash(int(values[0]), window)


def _make_stall(text: str) -> InfraFault:
    values = _floats("stall", text, 1, 3)
    window = int(values[1]) if len(values) >= 2 else 1000
    duration = int(values[2]) if len(values) == 3 else 100
    return ShardStall(int(values[0]), window, duration)


def _make_snapcorrupt(text: str) -> InfraFault:
    values = _floats("snapcorrupt", text, 1, 2)
    bits = int(values[1]) if len(values) == 2 else 1
    return SnapshotCorruption(values[0], bits)


_INFRA_MAKERS: Dict[str, Callable[[str], InfraFault]] = {
    "crash": _make_crash,
    "stall": _make_stall,
    "snapcorrupt": _make_snapcorrupt,
}


def parse_infra_spec(spec: str) -> List[InfraFault]:
    """Build infrastructure faults from a spec string.

    Same grammar as :func:`~repro.faults.config.parse_fault_spec`
    (comma-separated ``name=v1:v2`` terms); link-fault terms are
    rejected here -- use :func:`parse_mixed_spec` to accept both.
    """
    faults: List[InfraFault] = []
    for term in spec.split(","):
        term = term.strip()
        if not term:
            continue
        name, sep, value = term.partition("=")
        name = name.strip().lower()
        if name not in _INFRA_MAKERS:
            known = ", ".join(sorted(_INFRA_MAKERS))
            raise FaultSpecError(
                f"unknown infrastructure fault {name!r}; known: {known}"
            )
        if not sep:
            raise FaultSpecError(
                f"fault {name!r} needs =values, got {term!r}"
            )
        faults.append(_INFRA_MAKERS[name](value.strip()))
    return faults


def parse_mixed_spec(
    spec: str,
) -> Tuple[List[FaultModel], List[InfraFault]]:
    """Split one spec into (link models, infrastructure faults).

    One flag can describe a whole scenario::

        parse_mixed_spec("ge=0.05:0.45,crash=1:500,snapcorrupt=0.2")

    gives the Gilbert-Elliott pipeline for the link and the crash +
    corruption schedule for the host.  Terms are routed by name;
    unknown names raise :class:`FaultSpecError` listing both
    vocabularies.
    """
    link_terms: List[str] = []
    infra_terms: List[str] = []
    for term in spec.split(","):
        stripped = term.strip()
        if not stripped:
            continue
        name = stripped.partition("=")[0].strip().lower()
        if name in _INFRA_MAKERS:
            infra_terms.append(stripped)
        elif name in _MAKERS:
            link_terms.append(stripped)
        else:
            known = ", ".join(sorted(set(_MAKERS) | set(_INFRA_MAKERS)))
            raise FaultSpecError(f"unknown fault {name!r}; known: {known}")
    from .config import parse_fault_spec

    return (
        parse_fault_spec(",".join(link_terms)),
        parse_infra_spec(",".join(infra_terms)),
    )
