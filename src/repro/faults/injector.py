"""The fault injector: a seeded pipeline wrapping link delivery.

A :class:`FaultInjector` owns an ordered list of
:class:`~repro.faults.models.FaultModel` instances, each bound to its
own named rng stream derived from one master seed.  A
:class:`FaultyLink` consults the injector once per transmitted packet
and materializes the resulting :class:`FaultPlan`: drop, deliver with
an out-of-FIFO delay spike, deliver extra copies, or serialize the
packet and flip bits so the receiver's checksums must reject it.

Determinism is a contract, not an accident: the injector feeds every
decision into a running SHA-256 (:meth:`FaultInjector.schedule_digest`)
so tests can assert that identical (seed, fault config) pairs replay a
byte-identical fault schedule.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict, Optional, Sequence, Tuple

from ..sim.engine import Simulator
from ..sim.network import Link
from ..sim.rng import RngRegistry
from .models import FaultModel, FaultPlan, describe_models

__all__ = ["FaultInjector", "FaultyLink"]


class FaultInjector:
    """Applies a model pipeline to packets; counts and digests faults.

    One injector may serve many links (the usual deployment: the
    network's ``link_factory`` hands the same injector to every host's
    link), so its counters aggregate the whole network's faults.  The
    event loop is single-threaded and deterministic, so sharing rng
    streams across links preserves replayability.
    """

    def __init__(
        self,
        sim: Simulator,
        models: Sequence[FaultModel],
        *,
        seed: int = 0,
        rng_registry: Optional[RngRegistry] = None,
    ):
        registry = rng_registry if rng_registry is not None else RngRegistry(seed)
        self.sim = sim
        self.models = list(models)
        for index, model in enumerate(self.models):
            # Position-qualified stream names keep two models of the
            # same type (e.g. two blackhole windows) independent.
            model.bind(registry.stream(f"fault.{index}.{model.name}"), sim)
        self.packets_seen = 0
        self.packets_dropped = 0
        self.packets_reordered = 0
        self.packets_duplicated = 0
        self.packets_corrupted = 0
        #: (model name, action) -> count, for the metrics exporter.
        self.counts: Dict[Tuple[str, str], int] = {}
        self._digest = hashlib.sha256()

    def _count(self, model: str, action: str) -> None:
        key = (model, action)
        self.counts[key] = self.counts.get(key, 0) + 1

    def judge(self, packet) -> FaultPlan:
        """Run the pipeline over one packet and record the verdict."""
        plan = FaultPlan()
        for model in self.models:
            model.apply(plan, packet)
        index = self.packets_seen
        self.packets_seen += 1
        if plan.drop:
            self.packets_dropped += 1
            self._count(plan.drop_by or "unknown", "drop")
        else:
            if plan.extra_delay > 0.0:
                self.packets_reordered += 1
                self._count("reorder", "delay")
            if plan.duplicates:
                self.packets_duplicated += 1
                self._count("dup", "duplicate")
            if plan.corrupt_bits:
                self.packets_corrupted += 1
                self._count("corrupt", "bitflip")
        if plan.faulted:
            self._digest.update(f"{index}|{plan.signature()}\n".encode("ascii"))
        return plan

    def corrupt_bytes(self, packet, bits: int, rng) -> bytes:
        """Serialize ``packet`` and flip ``bits`` random bits."""
        if isinstance(packet, (bytes, bytearray, memoryview)):
            data = bytearray(packet)
        else:
            data = bytearray(packet.build())
        for _ in range(bits):
            position = rng.randrange(len(data) * 8)
            data[position // 8] ^= 1 << (position % 8)
        return bytes(data)

    def schedule_digest(self) -> str:
        """SHA-256 over every fault decision so far (hex).

        Two runs with the same seed and fault configuration produce
        the same digest -- the determinism guarantee tests assert.
        """
        return self._digest.hexdigest()

    def summary(self) -> str:
        return (
            f"faults: {self.packets_seen} packets,"
            f" {self.packets_dropped} dropped,"
            f" {self.packets_reordered} reordered,"
            f" {self.packets_duplicated} duplicated,"
            f" {self.packets_corrupted} corrupted"
        )

    def describe(self) -> str:
        return describe_models(self.models)

    def __repr__(self) -> str:
        return f"<FaultInjector {self.describe()}>"


class FaultyLink(Link):
    """A :class:`~repro.sim.network.Link` whose deliveries pass through
    a :class:`FaultInjector`.

    Link-level loss/jitter (the base class's physical model) applies
    first; surviving packets are then judged by the injector pipeline.
    Reorder spikes bypass the FIFO clamp so successors overtake the
    held packet; corrupted copies are delivered as raw bytes.
    """

    def __init__(
        self,
        sim: Simulator,
        delay: float,
        *,
        injector: FaultInjector,
        jitter: float = 0.0,
        loss_rate: float = 0.0,
        rng=None,
    ):
        super().__init__(
            sim, delay, jitter=jitter, loss_rate=loss_rate, rng=rng
        )
        self._injector = injector
        # Corruption needs dice at materialization time; reuse the
        # first Corrupt model's stream, or a dedicated one if a plan
        # ever carries corrupt_bits without such a model (defensive).
        self._corrupt_rng = None
        for model in injector.models:
            if model.name == "corrupt":
                self._corrupt_rng = model.rng
                break

    @property
    def injector(self) -> FaultInjector:
        return self._injector

    def transmit(self, packet, deliver: Callable) -> None:
        self.packets_sent += 1
        if self._drops_packet():  # physical-layer loss, if configured
            self.packets_dropped += 1
            return
        plan = self._injector.judge(packet)
        if plan.drop:
            self.packets_dropped += 1
            return
        payload = packet
        if plan.corrupt_bits and self._corrupt_rng is not None:
            payload = self._injector.corrupt_bytes(
                packet, plan.corrupt_bits, self._corrupt_rng
            )
        for _ in range(1 + plan.duplicates):
            if plan.extra_delay > 0.0:
                self._schedule_delivery(
                    payload, deliver, extra_delay=plan.extra_delay, fifo=False
                )
            else:
                self._schedule_delivery(payload, deliver)
