"""TCP segment construction and parsing.

Carries the fields the demultiplexing layer and the minimal TCP state
machine need: ports, sequence/ack numbers, flags, window, checksum
(computed over the IPv4 pseudo-header per RFC 793), and options
(MSS is the only one interpreted; others round-trip opaquely).
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Union

from .addresses import MAX_PORT, FourTuple, IPv4Address
from .checksum import internet_checksum, ones_complement_sum, pseudo_header
from .ip import IPProto, PacketError

__all__ = ["TCPFlags", "TCPSegment", "TCP_MIN_HEADER_LEN"]

#: Length of an option-less TCP header.
TCP_MIN_HEADER_LEN = 20


class TCPFlags:
    """TCP flag bits, combinable with ``|``."""

    FIN = 0x01
    SYN = 0x02
    RST = 0x04
    PSH = 0x08
    ACK = 0x10
    URG = 0x20
    ECE = 0x40
    CWR = 0x80

    _NAMES = (
        (0x80, "CWR"),
        (0x40, "ECE"),
        (0x20, "URG"),
        (0x10, "ACK"),
        (0x08, "PSH"),
        (0x04, "RST"),
        (0x02, "SYN"),
        (0x01, "FIN"),
    )

    @classmethod
    def describe(cls, flags: int) -> str:
        """Human-readable flag string, e.g. ``"SYN|ACK"``."""
        names = [name for bit, name in cls._NAMES if flags & bit]
        return "|".join(names) if names else "none"


_OPT_END = 0
_OPT_NOP = 1
_OPT_MSS = 2


@dataclasses.dataclass
class TCPSegment:
    """A TCP segment (header plus payload).

    ``checksum`` of ``None`` means "compute on build"; after
    :meth:`parse` it holds the on-the-wire value (already verified).
    """

    src_port: int
    dst_port: int
    seq: int = 0
    ack: int = 0
    flags: int = 0
    window: int = 65535
    urgent_pointer: int = 0
    payload: bytes = b""
    mss: Optional[int] = None
    raw_options: bytes = b""
    checksum: Optional[int] = None

    def __post_init__(self) -> None:
        for label, port in (("src", self.src_port), ("dst", self.dst_port)):
            if not 0 <= port <= MAX_PORT:
                raise PacketError(f"{label} port out of range: {port}")
        for label, value in (("seq", self.seq), ("ack", self.ack)):
            if not 0 <= value <= 0xFFFFFFFF:
                raise PacketError(f"{label} out of range: {value}")
        if not 0 <= self.flags <= 0xFF:
            raise PacketError(f"flags out of range: {self.flags}")
        if not 0 <= self.window <= 0xFFFF:
            raise PacketError(f"window out of range: {self.window}")
        if not 0 <= self.urgent_pointer <= 0xFFFF:
            raise PacketError(f"urgent pointer out of range: {self.urgent_pointer}")
        if self.mss is not None and not 0 <= self.mss <= 0xFFFF:
            raise PacketError(f"mss out of range: {self.mss}")
        if len(self.raw_options) % 4:
            raise PacketError("raw TCP options must be padded to 4-byte multiple")
        if self._options_length() > 40:
            raise PacketError("TCP options exceed 40 bytes")

    # -- flag conveniences -------------------------------------------------

    @property
    def is_syn(self) -> bool:
        return bool(self.flags & TCPFlags.SYN)

    @property
    def is_ack(self) -> bool:
        return bool(self.flags & TCPFlags.ACK)

    @property
    def is_fin(self) -> bool:
        return bool(self.flags & TCPFlags.FIN)

    @property
    def is_rst(self) -> bool:
        return bool(self.flags & TCPFlags.RST)

    @property
    def is_pure_ack(self) -> bool:
        """An ACK carrying no data and no SYN/FIN/RST.

        This is the paper's "transport-level acknowledgement" packet
        class; the Partridge/Pink analysis treats it differently from
        data packets (send-side cache examined first, Section 3.3.3).
        """
        return (
            self.is_ack
            and not self.payload
            and not self.flags & (TCPFlags.SYN | TCPFlags.FIN | TCPFlags.RST)
        )

    @property
    def segment_length(self) -> int:
        """Sequence space consumed: payload bytes plus SYN/FIN."""
        return len(self.payload) + int(self.is_syn) + int(self.is_fin)

    # -- wire format -------------------------------------------------------

    def _options_length(self) -> int:
        length = len(self.raw_options)
        if self.mss is not None:
            length += 4
        return length

    @property
    def header_length(self) -> int:
        """Header length in bytes, options included."""
        return TCP_MIN_HEADER_LEN + self._options_length()

    @property
    def data_offset(self) -> int:
        """Header length in 32-bit words, as carried on the wire."""
        return self.header_length // 4

    def _options_bytes(self) -> bytes:
        opts = bytearray()
        if self.mss is not None:
            opts += bytes((_OPT_MSS, 4)) + self.mss.to_bytes(2, "big")
        opts += self.raw_options
        return bytes(opts)

    def build(self, src: IPv4Address, dst: IPv4Address) -> bytes:
        """Serialize, computing the checksum over the pseudo-header.

        ``src``/``dst`` are the IP addresses this segment will travel
        between -- TCP's checksum covers them even though they live in
        the IP header.
        """
        head = bytearray()
        head += self.src_port.to_bytes(2, "big")
        head += self.dst_port.to_bytes(2, "big")
        head += self.seq.to_bytes(4, "big")
        head += self.ack.to_bytes(4, "big")
        head += bytes(((self.data_offset << 4), self.flags))
        head += self.window.to_bytes(2, "big")
        head += b"\x00\x00"  # checksum placeholder
        head += self.urgent_pointer.to_bytes(2, "big")
        head += self._options_bytes()
        segment = bytes(head) + self.payload
        pseudo = pseudo_header(src.packed, dst.packed, IPProto.TCP, len(segment))
        checksum = internet_checksum(segment, ones_complement_sum(pseudo))
        head[16:18] = checksum.to_bytes(2, "big")
        self.checksum = checksum
        return bytes(head) + self.payload

    @classmethod
    def parse(
        cls,
        data: Union[bytes, bytearray, memoryview],
        src: Optional[IPv4Address] = None,
        dst: Optional[IPv4Address] = None,
    ) -> "TCPSegment":
        """Parse a segment; verify the checksum when ``src``/``dst`` given.

        Raises :class:`PacketError` on truncation or checksum mismatch.
        """
        data = bytes(data)
        if len(data) < TCP_MIN_HEADER_LEN:
            raise PacketError(f"TCP header truncated: {len(data)} bytes")
        data_offset = data[12] >> 4
        header_len = data_offset * 4
        if header_len < TCP_MIN_HEADER_LEN:
            raise PacketError(f"TCP data offset too small: {data_offset}")
        if len(data) < header_len:
            raise PacketError("TCP options truncated")
        if src is not None and dst is not None:
            pseudo = pseudo_header(src.packed, dst.packed, IPProto.TCP, len(data))
            if internet_checksum(data, ones_complement_sum(pseudo)) != 0:
                raise PacketError("TCP checksum mismatch")
        mss, raw_options = cls._parse_options(data[TCP_MIN_HEADER_LEN:header_len])
        return cls(
            src_port=int.from_bytes(data[0:2], "big"),
            dst_port=int.from_bytes(data[2:4], "big"),
            seq=int.from_bytes(data[4:8], "big"),
            ack=int.from_bytes(data[8:12], "big"),
            flags=data[13],
            window=int.from_bytes(data[14:16], "big"),
            urgent_pointer=int.from_bytes(data[18:20], "big"),
            payload=data[header_len:],
            mss=mss,
            raw_options=raw_options,
            checksum=int.from_bytes(data[16:18], "big"),
        )

    @staticmethod
    def _parse_options(raw: bytes):
        """Extract MSS; return other options re-padded to 4-byte multiple."""
        mss = None
        others = bytearray()
        i = 0
        while i < len(raw):
            kind = raw[i]
            if kind == _OPT_END:
                break
            if kind == _OPT_NOP:
                i += 1
                continue
            if i + 1 >= len(raw):
                raise PacketError("TCP option missing length byte")
            length = raw[i + 1]
            if length < 2 or i + length > len(raw):
                raise PacketError(f"TCP option kind={kind} bad length {length}")
            if kind == _OPT_MSS:
                if length != 4:
                    raise PacketError("MSS option must have length 4")
                mss = int.from_bytes(raw[i + 2 : i + 4], "big")
            else:
                others += raw[i : i + length]
            i += length
        while len(others) % 4:
            others.append(_OPT_NOP)
        return mss, bytes(others)

    # -- demultiplexing ----------------------------------------------------

    def four_tuple(self, src: IPv4Address, dst: IPv4Address) -> FourTuple:
        """The receiver-side demux key for this inbound segment.

        The receiving host's "local" side is this segment's destination.
        """
        return FourTuple(dst, self.dst_port, src, self.src_port)

    def __str__(self) -> str:
        return (
            f"TCP {self.src_port}->{self.dst_port}"
            f" [{TCPFlags.describe(self.flags)}]"
            f" seq={self.seq} ack={self.ack} len={len(self.payload)}"
        )
