"""Convenience constructors for whole TCP/IP packets.

The workload generators and the TCP stack describe traffic in terms of
"a query segment from this client to the server" and similar; this
module turns those descriptions into fully serialized (and parseable)
IPv4+TCP byte strings, and back.
"""

from __future__ import annotations

import dataclasses
from typing import Tuple, Union

from .addresses import FourTuple, IPv4Address
from .ip import IPProto, IPv4Header, PacketError
from .tcp import TCPFlags, TCPSegment

__all__ = ["Packet", "build_packet", "parse_packet", "make_data", "make_ack"]


@dataclasses.dataclass
class Packet:
    """A parsed IPv4+TCP packet pair, with demux helpers."""

    ip: IPv4Header
    tcp: TCPSegment

    @property
    def four_tuple(self) -> FourTuple:
        """The receiver-side demux key (local = this packet's destination)."""
        return self.tcp.four_tuple(self.ip.src, self.ip.dst)

    @property
    def is_pure_ack(self) -> bool:
        return self.tcp.is_pure_ack

    @property
    def wire_length(self) -> int:
        return self.ip.total_length

    def build(self) -> bytes:
        """Serialize IP header and TCP segment to one byte string."""
        tcp_bytes = self.tcp.build(self.ip.src, self.ip.dst)
        self.ip.payload_length = len(tcp_bytes)
        return self.ip.build() + tcp_bytes

    def __str__(self) -> str:
        return f"{self.ip.src} -> {self.ip.dst} {self.tcp}"


def build_packet(
    src: Union[str, IPv4Address],
    dst: Union[str, IPv4Address],
    segment: TCPSegment,
    *,
    ttl: int = 64,
    identification: int = 0,
) -> bytes:
    """Serialize one TCP segment inside an IPv4 header."""
    src = IPv4Address(src)
    dst = IPv4Address(dst)
    tcp_bytes = segment.build(src, dst)
    header = IPv4Header(
        src=src,
        dst=dst,
        protocol=IPProto.TCP,
        payload_length=len(tcp_bytes),
        ttl=ttl,
        identification=identification,
    )
    return header.build() + tcp_bytes


def parse_packet(data: bytes, *, verify: bool = True) -> Packet:
    """Parse bytes into a :class:`Packet`, checking both checksums.

    ``verify=False`` skips the TCP checksum (the IP header checksum is
    always verified since parsing depends on the header being sane).
    """
    ip_header = IPv4Header.parse(data)
    if ip_header.protocol != IPProto.TCP:
        raise PacketError(f"not a TCP packet (protocol={ip_header.protocol})")
    start = ip_header.header_length
    end = ip_header.total_length
    if len(data) < end:
        raise PacketError("IP payload truncated")
    tcp_bytes = data[start:end]
    if verify:
        segment = TCPSegment.parse(tcp_bytes, ip_header.src, ip_header.dst)
    else:
        segment = TCPSegment.parse(tcp_bytes)
    return Packet(ip=ip_header, tcp=segment)


def make_data(
    tup: FourTuple,
    payload: bytes,
    *,
    seq: int = 0,
    ack: int = 0,
    push: bool = True,
) -> Packet:
    """A data segment travelling *toward* ``tup``'s local endpoint.

    ``tup`` is the receiver-side key, so the packet's source is the
    tuple's remote side and its destination the local side.
    """
    flags = TCPFlags.ACK | (TCPFlags.PSH if push else 0)
    segment = TCPSegment(
        src_port=tup.remote_port,
        dst_port=tup.local_port,
        seq=seq,
        ack=ack,
        flags=flags,
        payload=payload,
    )
    header = IPv4Header(src=tup.remote_addr, dst=tup.local_addr)
    return Packet(ip=header, tcp=segment)


def make_ack(tup: FourTuple, *, seq: int = 0, ack: int = 0) -> Packet:
    """A pure transport-level acknowledgement toward ``tup``'s local side."""
    segment = TCPSegment(
        src_port=tup.remote_port,
        dst_port=tup.local_port,
        seq=seq,
        ack=ack,
        flags=TCPFlags.ACK,
    )
    header = IPv4Header(src=tup.remote_addr, dst=tup.local_addr)
    return Packet(ip=header, tcp=segment)


def split_payload(payload: bytes, mss: int) -> Tuple[bytes, ...]:
    """Split ``payload`` into MSS-sized chunks (the packet-train shape)."""
    if mss <= 0:
        raise PacketError(f"mss must be positive, got {mss}")
    return tuple(payload[i : i + mss] for i in range(0, len(payload), mss)) or (b"",)
