"""TCP/IP packet substrate: addresses, headers, checksums, framing.

Everything the demultiplexing layer consumes -- 96-bit four-tuples,
IPv4 and TCP headers that build/parse byte-exactly, Ethernet framing --
lives here.  See :mod:`repro.packet.addresses` for the demux key.
"""

from .addresses import MAX_PORT, AddressError, FourTuple, IPv4Address, ip
from .builder import Packet, build_packet, make_ack, make_data, parse_packet
from .checksum import (
    incremental_update,
    internet_checksum,
    ones_complement_sum,
    pseudo_header,
    verify_checksum,
)
from .ethernet import EthernetFrame, EtherType, MACAddress, crc32_ieee
from .ip import IPV4_MIN_HEADER_LEN, IPProto, IPv4Header, PacketError
from .tcp import TCP_MIN_HEADER_LEN, TCPFlags, TCPSegment

__all__ = [
    "AddressError",
    "EthernetFrame",
    "EtherType",
    "FourTuple",
    "IPProto",
    "IPv4Address",
    "IPv4Header",
    "IPV4_MIN_HEADER_LEN",
    "MACAddress",
    "MAX_PORT",
    "Packet",
    "PacketError",
    "TCPFlags",
    "TCPSegment",
    "TCP_MIN_HEADER_LEN",
    "build_packet",
    "crc32_ieee",
    "incremental_update",
    "internet_checksum",
    "ip",
    "make_ack",
    "make_data",
    "ones_complement_sum",
    "parse_packet",
    "pseudo_header",
    "verify_checksum",
]
