"""IPv4 header construction and parsing.

The demultiplexing algorithms studied by the paper key off the IP source
and destination addresses (plus the TCP ports), so the substrate carries
real IPv4 headers: 20-byte base header, options, header checksum, the
usual flag and fragment fields.  Fragmentation/reassembly itself is out
of scope -- the OLTP packets the paper models are far below any MTU --
but headers round-trip byte-exactly and checksums verify, which the
property tests rely on.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Union

from .addresses import IPv4Address
from .checksum import internet_checksum, verify_checksum

__all__ = ["IPProto", "PacketError", "IPv4Header", "IPV4_MIN_HEADER_LEN"]

#: Length of an option-less IPv4 header.
IPV4_MIN_HEADER_LEN = 20

_MAX_TOTAL_LENGTH = 0xFFFF


class IPProto:
    """IANA protocol numbers this substrate knows about."""

    ICMP = 1
    TCP = 6
    UDP = 17


class PacketError(ValueError):
    """Raised when a header cannot be built or parsed."""


@dataclasses.dataclass
class IPv4Header:
    """A parsed or to-be-built IPv4 header.

    Attributes mirror RFC 791 fields.  ``header_checksum`` of ``None``
    means "compute on serialization"; after :meth:`parse` it holds the
    on-the-wire value.
    """

    src: IPv4Address
    dst: IPv4Address
    protocol: int = IPProto.TCP
    payload_length: int = 0
    identification: int = 0
    ttl: int = 64
    dscp: int = 0
    ecn: int = 0
    dont_fragment: bool = True
    more_fragments: bool = False
    fragment_offset: int = 0
    options: bytes = b""
    header_checksum: Optional[int] = None

    def __post_init__(self) -> None:
        self.src = IPv4Address(self.src)
        self.dst = IPv4Address(self.dst)
        if not 0 <= self.protocol <= 0xFF:
            raise PacketError(f"protocol out of range: {self.protocol}")
        if not 0 <= self.ttl <= 0xFF:
            raise PacketError(f"ttl out of range: {self.ttl}")
        if not 0 <= self.identification <= 0xFFFF:
            raise PacketError(f"identification out of range: {self.identification}")
        if not 0 <= self.dscp <= 0x3F:
            raise PacketError(f"dscp out of range: {self.dscp}")
        if not 0 <= self.ecn <= 0x3:
            raise PacketError(f"ecn out of range: {self.ecn}")
        if not 0 <= self.fragment_offset < 0x2000:
            raise PacketError(f"fragment offset out of range: {self.fragment_offset}")
        if len(self.options) % 4:
            raise PacketError("IPv4 options must be padded to a 4-byte multiple")
        if len(self.options) > 40:
            raise PacketError("IPv4 options exceed 40 bytes")
        if self.payload_length < 0:
            raise PacketError("payload_length must be non-negative")
        if self.header_length + self.payload_length > _MAX_TOTAL_LENGTH:
            raise PacketError("total length exceeds 65535")

    @property
    def header_length(self) -> int:
        """Header length in bytes (20 + options)."""
        return IPV4_MIN_HEADER_LEN + len(self.options)

    @property
    def ihl(self) -> int:
        """Header length in 32-bit words, as carried on the wire."""
        return self.header_length // 4

    @property
    def total_length(self) -> int:
        """The on-wire total-length field: header plus payload."""
        return self.header_length + self.payload_length

    def build(self) -> bytes:
        """Serialize to wire format, computing the header checksum."""
        ver_ihl = (4 << 4) | self.ihl
        tos = (self.dscp << 2) | self.ecn
        flags = (int(self.dont_fragment) << 1) | int(self.more_fragments)
        flags_frag = (flags << 13) | self.fragment_offset
        head = bytearray()
        head.append(ver_ihl)
        head.append(tos)
        head += self.total_length.to_bytes(2, "big")
        head += self.identification.to_bytes(2, "big")
        head += flags_frag.to_bytes(2, "big")
        head.append(self.ttl)
        head.append(self.protocol)
        head += b"\x00\x00"  # checksum placeholder
        head += self.src.packed
        head += self.dst.packed
        head += self.options
        checksum = internet_checksum(bytes(head))
        head[10:12] = checksum.to_bytes(2, "big")
        self.header_checksum = checksum
        return bytes(head)

    @classmethod
    def parse(cls, data: Union[bytes, bytearray, memoryview]) -> "IPv4Header":
        """Parse a header from the start of ``data``.

        Raises :class:`PacketError` on truncation, version mismatch, or a
        bad header checksum.  ``data`` may extend beyond the header; use
        :attr:`header_length` to find the payload.
        """
        data = bytes(data)
        if len(data) < IPV4_MIN_HEADER_LEN:
            raise PacketError(f"IPv4 header truncated: {len(data)} bytes")
        version = data[0] >> 4
        if version != 4:
            raise PacketError(f"not IPv4 (version={version})")
        ihl = data[0] & 0x0F
        header_len = ihl * 4
        if header_len < IPV4_MIN_HEADER_LEN:
            raise PacketError(f"IHL too small: {ihl}")
        if len(data) < header_len:
            raise PacketError("IPv4 options truncated")
        if not verify_checksum(data[:header_len]):
            raise PacketError("IPv4 header checksum mismatch")
        tos = data[1]
        total_length = int.from_bytes(data[2:4], "big")
        if total_length < header_len:
            raise PacketError("total length smaller than header")
        identification = int.from_bytes(data[4:6], "big")
        flags_frag = int.from_bytes(data[6:8], "big")
        header = cls(
            src=IPv4Address(data[12:16]),
            dst=IPv4Address(data[16:20]),
            protocol=data[9],
            payload_length=total_length - header_len,
            identification=identification,
            ttl=data[8],
            dscp=tos >> 2,
            ecn=tos & 0x3,
            dont_fragment=bool(flags_frag & 0x4000),
            more_fragments=bool(flags_frag & 0x2000),
            fragment_offset=flags_frag & 0x1FFF,
            options=data[IPV4_MIN_HEADER_LEN:header_len],
            header_checksum=int.from_bytes(data[10:12], "big"),
        )
        return header
