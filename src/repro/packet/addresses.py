"""Protocol addresses and the TCP demultiplexing key.

The paper's opening observation (Section 1) is that a TCP demultiplexing
algorithm must map a packet's source and destination IP addresses and TCP
ports -- 96 bits in total -- to a protocol control block, and that 96 bits
rule out simple direct indexing.  This module provides the 96-bit key
(:class:`FourTuple`) plus a small IPv4 address value type used throughout
the packet, stack, and workload layers.

Addresses are deliberately lightweight: immutable, hashable, cheap to
construct, and convertible to and from both dotted-quad strings and raw
32-bit integers, because the demultiplexing data structures hash and
compare millions of them per simulation run.
"""

from __future__ import annotations

import collections
import re
from typing import Iterator, Tuple, Union

__all__ = [
    "AddressError",
    "IPv4Address",
    "FourTuple",
    "ip",
    "MAX_PORT",
]

#: Largest valid TCP/UDP port number.
MAX_PORT = 0xFFFF

_DOTTED_QUAD_RE = re.compile(r"^(\d{1,3})\.(\d{1,3})\.(\d{1,3})\.(\d{1,3})$")


class AddressError(ValueError):
    """Raised for malformed IP addresses, ports, or four-tuples."""


class IPv4Address:
    """An immutable IPv4 address.

    Stored internally as a 32-bit integer so equality, hashing, and
    serialization are single integer operations.

    Parameters
    ----------
    value:
        Either a dotted-quad string (``"10.0.0.1"``), a 32-bit integer,
        another :class:`IPv4Address` (copied), or 4 raw bytes.

    Examples
    --------
    >>> IPv4Address("10.0.0.1") == IPv4Address(0x0A000001)
    True
    >>> str(IPv4Address(0x0A000001))
    '10.0.0.1'
    """

    __slots__ = ("_value",)

    def __init__(self, value: Union[str, int, bytes, "IPv4Address"]):
        if isinstance(value, IPv4Address):
            self._value = value._value
        elif isinstance(value, str):
            self._value = _parse_dotted_quad(value)
        elif isinstance(value, bytes):
            if len(value) != 4:
                raise AddressError(
                    f"IPv4 address must be exactly 4 bytes, got {len(value)}"
                )
            self._value = int.from_bytes(value, "big")
        elif isinstance(value, int):
            if not 0 <= value <= 0xFFFFFFFF:
                raise AddressError(f"IPv4 address out of range: {value:#x}")
            self._value = value
        else:
            raise AddressError(f"cannot build IPv4Address from {type(value).__name__}")

    @property
    def value(self) -> int:
        """The address as an unsigned 32-bit integer."""
        return self._value

    @property
    def packed(self) -> bytes:
        """The address as 4 network-order bytes."""
        return self._value.to_bytes(4, "big")

    @property
    def octets(self) -> Tuple[int, int, int, int]:
        """The four octets, most significant first."""
        v = self._value
        return ((v >> 24) & 0xFF, (v >> 16) & 0xFF, (v >> 8) & 0xFF, v & 0xFF)

    def is_loopback(self) -> bool:
        """True for 127.0.0.0/8."""
        return (self._value >> 24) == 127

    def is_multicast(self) -> bool:
        """True for 224.0.0.0/4."""
        return (self._value >> 28) == 0xE

    def is_private(self) -> bool:
        """True for RFC 1918 space (10/8, 172.16/12, 192.168/16)."""
        v = self._value
        return (
            (v >> 24) == 10
            or (v >> 20) == 0xAC1  # 172.16.0.0/12
            or (v >> 16) == 0xC0A8  # 192.168.0.0/16
        )

    def __add__(self, offset: int) -> "IPv4Address":
        """Return the address ``offset`` hosts later (wraps at 2**32)."""
        if not isinstance(offset, int):
            return NotImplemented
        return IPv4Address((self._value + offset) & 0xFFFFFFFF)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, IPv4Address):
            return self._value == other._value
        return NotImplemented

    def __lt__(self, other: "IPv4Address") -> bool:
        if isinstance(other, IPv4Address):
            return self._value < other._value
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._value)

    def __int__(self) -> int:
        return self._value

    def __str__(self) -> str:
        return ".".join(str(o) for o in self.octets)

    def __repr__(self) -> str:
        return f"IPv4Address('{self}')"


def _parse_dotted_quad(text: str) -> int:
    """Parse ``"a.b.c.d"`` into a 32-bit integer, validating each octet."""
    match = _DOTTED_QUAD_RE.match(text.strip())
    if match is None:
        raise AddressError(f"malformed IPv4 address: {text!r}")
    value = 0
    for octet_text in match.groups():
        octet = int(octet_text)
        if octet > 255:
            raise AddressError(f"IPv4 octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


def ip(value: Union[str, int, bytes, IPv4Address]) -> IPv4Address:
    """Shorthand constructor: ``ip("10.0.0.1")``."""
    return IPv4Address(value)


def _check_port(port: int, label: str) -> int:
    if not isinstance(port, int) or isinstance(port, bool):
        raise AddressError(f"{label} port must be an int, got {type(port).__name__}")
    if not 0 <= port <= MAX_PORT:
        raise AddressError(f"{label} port out of range: {port}")
    return port


_FourTupleBase = collections.namedtuple(
    "FourTuple", ("local_addr", "local_port", "remote_addr", "remote_port")
)


class FourTuple(_FourTupleBase):
    """The 96-bit TCP demultiplexing key.

    ``(local addr, local port, remote addr, remote port)`` *as seen by the
    receiving host*: ``local`` is the destination of an inbound packet and
    ``remote`` its source.  This is the quantity Section 1 of the paper
    says totals 96 bits (two 32-bit addresses + two 16-bit ports) and
    therefore cannot be used as a direct array index.

    Construction validates: addresses are coerced through
    :class:`IPv4Address` (so dotted-quad strings and raw ints are
    accepted positionally) and ports range-checked, raising
    :class:`AddressError` immediately.  A plain ``NamedTuple`` silently
    stored whatever it was handed, and a tuple built from raw strings
    only exploded much later, inside :meth:`key_bits` on the lookup
    path -- far from the call site that made it.
    """

    __slots__ = ()

    def __new__(
        cls,
        local_addr: Union[str, int, bytes, IPv4Address],
        local_port: int,
        remote_addr: Union[str, int, bytes, IPv4Address],
        remote_port: int,
    ) -> "FourTuple":
        # The isinstance guards keep the common case -- fields that are
        # already IPv4Address, e.g. via ``reversed`` or ``_replace`` --
        # free of re-wrapping allocations on the hot path.
        if not isinstance(local_addr, IPv4Address):
            local_addr = IPv4Address(local_addr)
        if not isinstance(remote_addr, IPv4Address):
            remote_addr = IPv4Address(remote_addr)
        return super().__new__(
            cls,
            local_addr,
            _check_port(local_port, "local"),
            remote_addr,
            _check_port(remote_port, "remote"),
        )

    @classmethod
    def _make(cls, iterable) -> "FourTuple":
        # namedtuple's _make (which _replace uses) calls tuple.__new__
        # directly, skipping validation; route it back through ours.
        return cls(*iterable)

    @classmethod
    def create(
        cls,
        local_addr: Union[str, int, IPv4Address],
        local_port: int,
        remote_addr: Union[str, int, IPv4Address],
        remote_port: int,
    ) -> "FourTuple":
        """Validating constructor; kept as an alias now that the class
        constructor itself validates."""
        return cls(local_addr, local_port, remote_addr, remote_port)

    @property
    def reversed(self) -> "FourTuple":
        """The same connection as seen from the other endpoint."""
        return FourTuple(
            self.remote_addr, self.remote_port, self.local_addr, self.local_port
        )

    def matches(self, other: "FourTuple") -> bool:
        """Exact-match comparison (the predicate every list scan uses)."""
        return self == other

    def key_bits(self) -> int:
        """The tuple packed into a single 96-bit integer.

        Layout (most significant first): local addr, local port,
        remote addr, remote port.  Hash functions in
        :mod:`repro.hashing` operate on this value.
        """
        return (
            (int(self.local_addr) << 64)
            | (self.local_port << 48)
            | (int(self.remote_addr) << 16)
            | self.remote_port
        )

    @classmethod
    def from_key_bits(cls, bits: int) -> "FourTuple":
        """Rebuild the tuple from its packed 96-bit key.

        The inverse of :meth:`key_bits` (the packing is a bijection).
        Shared-memory attach constructors use it to rebuild four-tuples
        from the flat key arrays without shipping tuple objects across
        the process boundary.
        """
        if not 0 <= bits < (1 << 96):
            raise AddressError(f"key bits out of range: {bits:#x}")
        return cls(
            IPv4Address((bits >> 64) & 0xFFFFFFFF),
            (bits >> 48) & 0xFFFF,
            IPv4Address((bits >> 16) & 0xFFFFFFFF),
            bits & 0xFFFF,
        )

    def words16(self) -> Iterator[int]:
        """Yield the key as six 16-bit words (for folding hash functions)."""
        bits = self.key_bits()
        for shift in range(80, -1, -16):
            yield (bits >> shift) & 0xFFFF

    def words32(self) -> Iterator[int]:
        """Yield the key as three 32-bit words."""
        bits = self.key_bits()
        for shift in range(64, -1, -32):
            yield (bits >> shift) & 0xFFFFFFFF

    def __str__(self) -> str:
        return (
            f"{self.local_addr}:{self.local_port}"
            f" <- {self.remote_addr}:{self.remote_port}"
        )
