"""Ethernet II framing.

The OLTP clients the paper models attach over local-area networks
(Section 1: "thousands of concurrent users connected by local-area
networks"), so the simulated wire format is Ethernet II: destination and
source MAC addresses, an EtherType, and a payload with the standard
46-byte minimum (frames are padded, and the parser exposes the padding
so upper layers can trim via the IP total-length field).  The frame
check sequence is modelled as a CRC-32 trailer that builds and verifies.
"""

from __future__ import annotations

import dataclasses
from typing import Union

from .ip import PacketError

__all__ = ["MACAddress", "EtherType", "EthernetFrame", "crc32_ieee"]

_ETHERNET_MIN_PAYLOAD = 46
_ETHERNET_MAX_PAYLOAD = 1500
_HEADER_LEN = 14
_FCS_LEN = 4


def _build_crc32_table():
    table = []
    for byte in range(256):
        value = byte
        for _ in range(8):
            if value & 1:
                value = (value >> 1) ^ 0xEDB88320
            else:
                value >>= 1
        table.append(value)
    return tuple(table)


_CRC32_TABLE = _build_crc32_table()


def crc32_ieee(data: bytes) -> int:
    """IEEE 802.3 CRC-32 (reflected, as used by the Ethernet FCS)."""
    crc = 0xFFFFFFFF
    for byte in data:
        crc = (crc >> 8) ^ _CRC32_TABLE[(crc ^ byte) & 0xFF]
    return crc ^ 0xFFFFFFFF


class MACAddress:
    """An immutable 48-bit MAC address."""

    __slots__ = ("_value",)

    def __init__(self, value: Union[str, int, bytes, "MACAddress"]):
        if isinstance(value, MACAddress):
            self._value = value._value
        elif isinstance(value, str):
            parts = value.replace("-", ":").split(":")
            if len(parts) != 6:
                raise PacketError(f"malformed MAC address: {value!r}")
            try:
                octets = [int(p, 16) for p in parts]
            except ValueError:
                raise PacketError(f"malformed MAC address: {value!r}") from None
            if any(not 0 <= o <= 0xFF for o in octets):
                raise PacketError(f"MAC octet out of range: {value!r}")
            self._value = int.from_bytes(bytes(octets), "big")
        elif isinstance(value, bytes):
            if len(value) != 6:
                raise PacketError(f"MAC address must be 6 bytes, got {len(value)}")
            self._value = int.from_bytes(value, "big")
        elif isinstance(value, int):
            if not 0 <= value <= 0xFFFFFFFFFFFF:
                raise PacketError(f"MAC address out of range: {value:#x}")
            self._value = value
        else:
            raise PacketError(f"cannot build MACAddress from {type(value).__name__}")

    @property
    def packed(self) -> bytes:
        return self._value.to_bytes(6, "big")

    def is_broadcast(self) -> bool:
        return self._value == 0xFFFFFFFFFFFF

    def is_multicast(self) -> bool:
        """True when the group bit (LSB of the first octet) is set."""
        return bool((self._value >> 40) & 0x01)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, MACAddress):
            return self._value == other._value
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._value)

    def __int__(self) -> int:
        return self._value

    def __str__(self) -> str:
        return ":".join(f"{b:02x}" for b in self.packed)

    def __repr__(self) -> str:
        return f"MACAddress('{self}')"


#: The all-ones broadcast address.
BROADCAST = MACAddress(0xFFFFFFFFFFFF)


class EtherType:
    """EtherType values this substrate recognizes."""

    IPV4 = 0x0800
    ARP = 0x0806


@dataclasses.dataclass
class EthernetFrame:
    """An Ethernet II frame with explicit FCS handling."""

    dst: MACAddress
    src: MACAddress
    ethertype: int
    payload: bytes = b""

    def __post_init__(self) -> None:
        self.dst = MACAddress(self.dst)
        self.src = MACAddress(self.src)
        if not 0x0600 <= self.ethertype <= 0xFFFF:
            raise PacketError(f"EtherType out of range: {self.ethertype:#x}")
        if len(self.payload) > _ETHERNET_MAX_PAYLOAD:
            raise PacketError(
                f"payload of {len(self.payload)} bytes exceeds Ethernet MTU"
            )

    @property
    def padding_length(self) -> int:
        """Bytes of zero padding a minimum-size frame will carry."""
        return max(0, _ETHERNET_MIN_PAYLOAD - len(self.payload))

    @property
    def wire_length(self) -> int:
        """Total on-wire bytes: header + padded payload + FCS."""
        return (
            _HEADER_LEN
            + max(len(self.payload), _ETHERNET_MIN_PAYLOAD)
            + _FCS_LEN
        )

    def build(self) -> bytes:
        """Serialize with zero padding and trailing CRC-32 FCS."""
        body = (
            self.dst.packed
            + self.src.packed
            + self.ethertype.to_bytes(2, "big")
            + self.payload
            + b"\x00" * self.padding_length
        )
        return body + crc32_ieee(body).to_bytes(4, "little")

    @classmethod
    def parse(cls, data: Union[bytes, bytearray, memoryview]) -> "EthernetFrame":
        """Parse and verify the FCS.

        The returned payload includes any padding; IP's total-length
        field is the authority for trimming it.
        """
        data = bytes(data)
        if len(data) < _HEADER_LEN + _FCS_LEN:
            raise PacketError(f"Ethernet frame truncated: {len(data)} bytes")
        body, fcs = data[:-_FCS_LEN], data[-_FCS_LEN:]
        if crc32_ieee(body) != int.from_bytes(fcs, "little"):
            raise PacketError("Ethernet FCS mismatch")
        return cls(
            dst=MACAddress(body[0:6]),
            src=MACAddress(body[6:12]),
            ethertype=int.from_bytes(body[12:14], "big"),
            payload=body[_HEADER_LEN:],
        )
