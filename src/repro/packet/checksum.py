"""The Internet checksum (RFC 1071) used by the IPv4 and TCP headers.

The checksum is the 16-bit one's complement of the one's-complement sum
of the covered data taken as 16-bit big-endian words, with odd-length
data padded with a trailing zero byte.

Two properties matter to callers and are exercised heavily by the test
suite:

* a header whose checksum field holds the value computed over the header
  (with the field zeroed) verifies to zero when re-summed; and
* the checksum is incremental -- :func:`incremental_update` adjusts a
  checksum for an in-place 16-bit word change without re-summing
  (RFC 1624), which real stacks use for TTL decrements and NAT.
"""

from __future__ import annotations

__all__ = [
    "ones_complement_sum",
    "internet_checksum",
    "verify_checksum",
    "incremental_update",
    "pseudo_header",
]


def ones_complement_sum(data: bytes, initial: int = 0) -> int:
    """One's-complement sum of ``data`` as big-endian 16-bit words.

    ``initial`` seeds the sum (used to chain the TCP pseudo-header into
    the segment sum).  The result is a 16-bit value with all carries
    folded back in.
    """
    if initial < 0 or initial > 0xFFFF:
        raise ValueError(f"initial sum out of 16-bit range: {initial}")
    total = initial
    length = len(data)
    # Sum 16-bit words; an odd trailing byte is padded with 0x00.
    for i in range(0, length - 1, 2):
        total += (data[i] << 8) | data[i + 1]
    if length % 2:
        total += data[-1] << 8
    # Fold carries until the sum fits in 16 bits.  Two folds always
    # suffice for sums of bounded length, but loop for clarity.
    while total > 0xFFFF:
        total = (total & 0xFFFF) + (total >> 16)
    return total


def internet_checksum(data: bytes, initial: int = 0) -> int:
    """RFC 1071 checksum: complement of the one's-complement sum.

    Returns a value in ``[0, 0xFFFF]`` ready to be stored in a header
    checksum field.
    """
    return (~ones_complement_sum(data, initial)) & 0xFFFF


def verify_checksum(data: bytes, initial: int = 0) -> bool:
    """True if ``data`` (checksum field included) sums to all-ones."""
    return ones_complement_sum(data, initial) == 0xFFFF


def incremental_update(old_checksum: int, old_word: int, new_word: int) -> int:
    """Adjust a checksum for one 16-bit word changed in the covered data.

    Implements the corrected algorithm of RFC 1624:
    ``HC' = ~(~HC + ~m + m')`` in one's-complement arithmetic.
    """
    for name, word in (("old_checksum", old_checksum),
                       ("old_word", old_word),
                       ("new_word", new_word)):
        if word < 0 or word > 0xFFFF:
            raise ValueError(f"{name} out of 16-bit range: {word}")
    total = (~old_checksum & 0xFFFF) + (~old_word & 0xFFFF) + new_word
    while total > 0xFFFF:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def pseudo_header(
    src_addr_packed: bytes, dst_addr_packed: bytes, protocol: int, length: int
) -> bytes:
    """The 12-byte IPv4 pseudo-header covered by the TCP/UDP checksum."""
    if len(src_addr_packed) != 4 or len(dst_addr_packed) != 4:
        raise ValueError("pseudo-header addresses must be 4 packed bytes each")
    if not 0 <= protocol <= 0xFF:
        raise ValueError(f"protocol out of range: {protocol}")
    if not 0 <= length <= 0xFFFF:
        raise ValueError(f"segment length out of range: {length}")
    return (
        src_addr_packed
        + dst_addr_packed
        + bytes((0, protocol))
        + length.to_bytes(2, "big")
    )
