"""The paper's analytic model: every equation in Section 3.

Submodules mirror the paper's structure -- :mod:`~repro.analytic.bsd`
(Section 3.1, Eq. 1), :mod:`~repro.analytic.crowcroft` (Section 3.2,
Eqs. 2-6), :mod:`~repro.analytic.sendrecv` (Section 3.3, Eqs. 7-17),
:mod:`~repro.analytic.sequent` (Section 3.4, Eqs. 18-22) -- plus the
numerically stable binomial machinery, the TPC/A think-time
distributions, and the Figure 13/14 sweep helpers.
"""

from . import bsd, combined, crowcroft, mtf_irm, multicache, sendrecv, sequent
from .binomial import (
    binomial_expectation,
    binomial_mean_direct,
    binomial_pmf,
    log_binomial_coefficient,
)
from .distributions import (
    TPCA_MIN_MEAN_THINK,
    Exponential,
    TruncatedExponential,
)
from .series import (
    TPCA_RATE,
    Series,
    figure13_series,
    figure14_series,
    standard_series,
    sweep,
)

__all__ = [
    "Exponential",
    "Series",
    "TPCA_MIN_MEAN_THINK",
    "TPCA_RATE",
    "TruncatedExponential",
    "binomial_expectation",
    "binomial_mean_direct",
    "binomial_pmf",
    "bsd",
    "combined",
    "crowcroft",
    "figure13_series",
    "mtf_irm",
    "multicache",
    "figure14_series",
    "log_binomial_coefficient",
    "sendrecv",
    "sequent",
    "standard_series",
    "sweep",
]
