"""Analytic cost of a k-entry LRU cache over a linear list.

Extends the paper's framework to the structure Section 3.3 gestures at
(Partridge/Pink went from one slot to two -- this is the general k).
Under the paper's memoryless TPC/A model every inbound packet belongs
to a uniformly random connection, so:

* the LRU cache holds the k most recently used *distinct* connections,
  and the next packet hits with probability ``k/N``;
* given a hit, the target is uniform over the k recency positions
  (symmetry of the independent reference model), costing ``(k+1)/2``
  probes on average;
* a miss probes all k slots and then scans, costing ``k + (N+1)/2``.

    C_LRU(N, k) = (k/N)(k+1)/2 + ((N-k)/N)(k + (N+1)/2)

``k = 1`` reduces exactly to the BSD Eq. 1 (a test pins it).  The
punchline -- and the reason the paper is right to hash instead -- is
that minimizing over k still loses to a modest chain count:
``d C/dk = 0`` near ``k ~ sqrt(N)``, giving ``C ~ N/2`` to first
order (the miss term barely moves), whereas H chains divide the miss
penalty itself by H.  ``optimal_cache_size`` and the bench sweep make
this concrete.

For TPC/A's response acknowledgements the per-packet uniformity breaks
(the ack follows its transaction by R+D); ``ack_hit_probability``
models the cache's retention over that window via the Poisson arrival
count, paralleling the paper's Eq. 20.
"""

from __future__ import annotations

import math

__all__ = [
    "hit_rate",
    "cost",
    "optimal_cache_size",
    "ack_hit_probability",
]


def _check(n_users: int, cache_size: int) -> None:
    if n_users < 1:
        raise ValueError(f"need at least one user, got {n_users}")
    if cache_size < 1:
        raise ValueError(f"cache size must be >= 1, got {cache_size}")


def hit_rate(n_users: int, cache_size: int) -> float:
    """P[next packet's connection is among the k most recent]: k/N."""
    _check(n_users, cache_size)
    return min(cache_size, n_users) / n_users


def cost(n_users: int, cache_size: int) -> float:
    """Expected PCBs examined per packet under uniform (OLTP) traffic."""
    _check(n_users, cache_size)
    n = n_users
    k = min(cache_size, n)
    hit = k / n
    hit_cost = (k + 1) / 2.0
    miss_cost = k + (n + 1) / 2.0
    return hit * hit_cost + (1.0 - hit) * miss_cost


def optimal_cache_size(n_users: int) -> int:
    """The k minimizing :func:`cost` -- and how little it helps.

    Setting d/dk [k(k+1)/2N + (1-k/N)(k+(N+1)/2)] = 0 gives
    k* = (N+1)/2 - N + ... ; numerically the curve is so flat that the
    honest answer is a scan.  Returned by search for exactness.
    """
    if n_users < 1:
        raise ValueError(f"need at least one user, got {n_users}")
    best_k, best_cost = 1, cost(n_users, 1)
    for k in range(2, n_users + 1):
        candidate = cost(n_users, k)
        if candidate < best_cost:
            best_k, best_cost = k, candidate
    return best_k


def ack_hit_probability(
    n_users: int, cache_size: int, rate: float, window: float
) -> float:
    """P[a response ack still finds its PCB cached].

    Between a transaction's arrival and its response ack (a window of
    ``R + D``), other users' packets arrive as a Poisson process of
    rate ``2a(N-1)``.  With N >> k nearly every intervening packet
    belongs to a distinct connection, so the target survives iff fewer
    than k arrivals landed in the window:

        P ~ P[Poisson(2a * window * (N-1)) <= k - 1]

    ``k = 1`` recovers the shape of the paper's footnote-4 probability
    (e^{-2a*window*(N-1)}), and large k approaches 1 -- the reason the
    two-slot Partridge/Pink cache already wins on acks at small N.
    """
    _check(n_users, cache_size)
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    if window < 0:
        raise ValueError(f"window must be non-negative, got {window}")
    mean = 2.0 * rate * window * (n_users - 1)
    # Poisson CDF at k-1, summed in log-safe fashion.
    total = 0.0
    log_term = -mean  # ln P[X=0]
    for i in range(cache_size):
        total += math.exp(log_term)
        log_term += math.log(mean) - math.log(i + 1) if mean > 0 else -math.inf
        if mean == 0:
            break
    return min(total, 1.0)
