"""Analytic cost of Crowcroft's move-to-front list (paper Section 3.2).

Quantities, in the paper's notation (``a`` = per-user transaction rate,
0.1/s for TPC/A; ``N`` = users; ``R`` = response time; ``T`` = think
time):

* Eq. 2 -- ``F(T) = 1 - e^{-aT}``, the probability a given other user
  enters at least one transaction within ``T``.
* Eq. 3 -- ``N(T)``, the expected number of the other ``N-1`` users to
  do so: a binomial mean, ``(N-1)(1 - e^{-aT})``.  Figure 4 plots it.
* Eq. 5 -- expected PCBs *preceding* the user's own when his next
  transaction arrives: think times below ``R`` contribute ``N(2T)``,
  above ``R`` contribute ``N(T+R)``, averaged over the exponential
  think-time density.  Closed form derived by direct integration:

      E_entry = (N-1) * (2/3 - e^{-3aR} / 6)

* the response-ack search length is ``N(2R)`` (Figure 7's argument),
* Eq. 6 -- the overall cost is the mean of the two (half the inbound
  packets are transaction entries, half are acks).

Convention note: these are counts of PCBs *in front of* the target;
the number the structure examines is one more (it also compares the
target itself).  ``examined=True`` adds that one.  The paper's quoted
numbers (1019/1045/1086/1150, 78/190/362/659, 549/618/724/904) are the
preceding counts, which the default reproduces.
"""

from __future__ import annotations

import math

from scipy import integrate

from .binomial import binomial_mean_direct

__all__ = [
    "other_user_cdf",
    "expected_preceding_users",
    "entry_cost",
    "entry_cost_quadrature",
    "ack_cost",
    "overall_cost",
    "deterministic_entry_cost",
]


def _check(n_users: int, rate: float) -> None:
    if n_users < 1:
        raise ValueError(f"need at least one user, got {n_users}")
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")


def other_user_cdf(rate: float, t: float) -> float:
    """Eq. 2: probability one given user transacts within ``t`` seconds."""
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    if t < 0:
        return 0.0
    return -math.expm1(-rate * t)


def expected_preceding_users(
    n_users: int, rate: float, t: float, *, method: str = "closed"
) -> float:
    """Eq. 3 / Figure 4: expected other users transacting within ``t``.

    ``method="closed"`` uses the binomial-mean identity
    ``(N-1)(1-e^{-at})``; ``method="sum"`` evaluates the paper's
    term-by-term sum in log space (O(N), for validation).
    """
    _check(n_users, rate)
    if t < 0:
        raise ValueError(f"time must be non-negative, got {t}")
    p = other_user_cdf(rate, t)
    if method == "closed":
        return (n_users - 1) * p
    if method == "sum":
        return binomial_mean_direct(n_users - 1, p)
    raise ValueError(f"unknown method {method!r} (use 'closed' or 'sum')")


def entry_cost(
    n_users: int, rate: float, response_time: float, *, examined: bool = False
) -> float:
    """Eq. 5: expected PCBs preceding the target on a transaction entry.

    Closed form of the paper's two-piece integral::

        int_0^R  a e^{-aT} (N-1)(1 - e^{-2aT})    dT
      + int_R^oo a e^{-aT} (N-1)(1 - e^{-a(T+R)}) dT
      = (N-1) (2/3 - e^{-3aR}/6)

    For a 200-TPS benchmark (N=2000): 1019 / 1045 / 1086 / 1150 PCBs at
    R = 0.2 / 0.5 / 1.0 / 2.0 s -- "somewhat worse than the BSD
    algorithm's 1,001".
    """
    _check(n_users, rate)
    if response_time < 0:
        raise ValueError(f"response time must be non-negative: {response_time}")
    preceding = (n_users - 1) * (
        2.0 / 3.0 - math.exp(-3.0 * rate * response_time) / 6.0
    )
    return preceding + 1.0 if examined else preceding


def entry_cost_quadrature(
    n_users: int, rate: float, response_time: float, *, examined: bool = False
) -> float:
    """Eq. 5 by adaptive quadrature, validating the closed form."""
    _check(n_users, rate)
    if response_time < 0:
        raise ValueError(f"response time must be non-negative: {response_time}")
    a = rate
    n_minus_1 = n_users - 1

    def below(t: float) -> float:
        return a * math.exp(-a * t) * n_minus_1 * -math.expm1(-2.0 * a * t)

    def above(t: float) -> float:
        return (
            a
            * math.exp(-a * t)
            * n_minus_1
            * -math.expm1(-a * (t + response_time))
        )

    part1, _ = integrate.quad(below, 0.0, response_time)
    part2, _ = integrate.quad(above, response_time, math.inf)
    preceding = part1 + part2
    return preceding + 1.0 if examined else preceding


def ack_cost(
    n_users: int, rate: float, response_time: float, *, examined: bool = False
) -> float:
    """PCBs preceding the target on the response's transport-level ack.

    Transactions in the interval R' (before the response) are acked
    during R (after it), so the preceding count is ``N(2R)`` -- 78 /
    190 / 362 / 659 at R = 0.2 / 0.5 / 1.0 / 2.0 s for N=2000.
    """
    preceding = expected_preceding_users(n_users, rate, 2.0 * response_time)
    return preceding + 1.0 if examined else preceding


def overall_cost(
    n_users: int, rate: float, response_time: float, *, examined: bool = False
) -> float:
    """Eq. 6: mean of entry and ack costs (549/618/724/904 at N=2000)."""
    entry = entry_cost(n_users, rate, response_time, examined=examined)
    ack = ack_cost(n_users, rate, response_time, examined=examined)
    return (entry + ack) / 2.0


def deterministic_entry_cost(n_users: int, *, examined: bool = False) -> float:
    """The Section 3.2 worst case: deterministic think times.

    "If the think times were deterministic (exactly 10 seconds always),
    Crowcroft's algorithm would look through all 2,000 PCBs on each
    transaction entry" -- every other user transacts between a user's
    visits, so all N-1 PCBs precede his (N examined).
    """
    if n_users < 1:
        raise ValueError(f"need at least one user, got {n_users}")
    preceding = float(n_users - 1)
    return preceding + 1.0 if examined else preceding
