"""Numerically stable binomial machinery for the paper's Eq. 3-style sums.

Equation 3 of the paper is a weighted binomial sum,

    N(T) = sum_{i=0}^{N-1} i * C(N-1, i) * p^i * (1-p)^(N-1-i),

with ``p = 1 - e^{-aT}``.  For N = 2000 the binomial coefficients
overflow doubles around i = 60, so the direct sum must run in log
space.  The sum is of course just the mean of Binomial(N-1, p), i.e.
``(N-1) * p`` -- the paper evaluates it numerically, we implement both
and test they agree to near machine precision, then use the closed form
everywhere hot.
"""

from __future__ import annotations

import math
from typing import Callable

__all__ = [
    "log_binomial_coefficient",
    "binomial_pmf",
    "binomial_mean_direct",
    "binomial_expectation",
]


def log_binomial_coefficient(n: int, k: int) -> float:
    """``log C(n, k)`` via lgamma; exact enough for n in the millions."""
    if n < 0 or k < 0 or k > n:
        raise ValueError(f"invalid binomial coefficient C({n}, {k})")
    return math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)


def binomial_pmf(n: int, k: int, p: float) -> float:
    """P[Binomial(n, p) = k], computed in log space."""
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"probability out of range: {p}")
    if k < 0 or k > n:
        return 0.0
    if p == 0.0:
        return 1.0 if k == 0 else 0.0
    if p == 1.0:
        return 1.0 if k == n else 0.0
    log_pmf = (
        log_binomial_coefficient(n, k)
        + k * math.log(p)
        + (n - k) * math.log1p(-p)
    )
    return math.exp(log_pmf)


def binomial_mean_direct(n: int, p: float) -> float:
    """The Eq. 3 sum evaluated term by term in log space.

    Exists to validate the ``n * p`` closed form the production paths
    use; cost is O(n).
    """
    return binomial_expectation(n, p, lambda i: float(i))


def binomial_expectation(n: int, p: float, f: Callable[[int], float]) -> float:
    """``E[f(X)]`` for X ~ Binomial(n, p), summed in log space.

    General form of the paper's weighted averages: Eq. 3 uses
    ``f(i) = i``; the Crowcroft Eq. 6 inner sum and any future variant
    reuse this.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"probability out of range: {p}")
    total = 0.0
    for i in range(n + 1):
        weight = binomial_pmf(n, i, p)
        if weight:
            total += f(i) * weight
    return total
