"""Parameter sweeps producing the curves of Figures 13 and 14.

Figure 13 plots expected PCB search cost against the number of TPC/A
users (0-10,000) for BSD, Crowcroft move-to-front at response times
1.0/0.5/0.2 s, the Partridge/Pink send/receive cache at a 1 ms round
trip, and the Sequent algorithm; Figure 14 is the 0-1,000-user detail
(where the send/receive cache's small-N advantage and its asymptotic
approach to BSD are both visible) and adds the 10 ms send/receive
curve.

Each series is a named callable of N so the figure code, the
simulation-validation harness, and the plot emitters all share one
definition.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Sequence, Tuple

from . import bsd, crowcroft, sendrecv, sequent

__all__ = [
    "TPCA_RATE",
    "Series",
    "standard_series",
    "sweep",
    "figure13_series",
    "figure14_series",
]

#: TPC/A's per-user transaction rate: one per >= 10 s think time.
TPCA_RATE = 0.1


@dataclasses.dataclass(frozen=True)
class Series:
    """One labelled curve: cost as a function of the user count."""

    label: str
    cost: Callable[[int], float]

    def evaluate(self, n_values: Sequence[int]) -> List[float]:
        return [self.cost(n) for n in n_values]


def standard_series(
    *,
    rate: float = TPCA_RATE,
    mtf_response_times: Sequence[float] = (1.0, 0.5, 0.2),
    sr_rtts: Sequence[float] = (0.001,),
    sr_response_time: float = 0.2,
    sequent_chains: int = 19,
    sequent_response_time: float = 0.2,
) -> List[Series]:
    """The family of curves the comparison figures draw.

    Labels follow the paper's legends: "BSD", "MTF 1.0", "SR 1" (the
    number is the round trip in milliseconds), "SEQUENT".
    """
    series: List[Series] = [Series("BSD", lambda n: bsd.cost(n))]
    for r in mtf_response_times:
        series.append(
            Series(
                f"MTF {r:.1f}",
                lambda n, r=r: crowcroft.overall_cost(n, rate, r),
            )
        )
    for d in sr_rtts:
        series.append(
            Series(
                f"SR {d * 1000:g}",
                lambda n, d=d: sendrecv.overall_cost(n, rate, sr_response_time, d),
            )
        )
    series.append(
        Series(
            "SEQUENT",
            lambda n: sequent.overall_cost(
                n, sequent_chains, rate, sequent_response_time
            ),
        )
    )
    return series


def sweep(
    series: Sequence[Series], n_values: Sequence[int]
) -> Dict[str, List[float]]:
    """Evaluate every series at every N; returns label -> cost list."""
    for n in n_values:
        if n < 1:
            raise ValueError(f"user counts must be >= 1, got {n}")
    return {s.label: s.evaluate(n_values) for s in series}


def _n_range(stop: int, points: int) -> List[int]:
    """``points`` roughly even integer N values in [1, stop]."""
    if stop < 1 or points < 2:
        raise ValueError("need stop >= 1 and points >= 2")
    step = stop / (points - 1)
    values = sorted({max(1, round(i * step)) for i in range(points)})
    return values


def figure13_series(
    points: int = 51,
) -> Tuple[List[int], Dict[str, List[float]]]:
    """Figure 13: all curves over 0-10,000 TPC/A connections."""
    n_values = _n_range(10_000, points)
    return n_values, sweep(standard_series(), n_values)


def figure14_series(
    points: int = 51,
) -> Tuple[List[int], Dict[str, List[float]]]:
    """Figure 14: the 0-1,000-connection detail, adding SR at 10 ms."""
    n_values = _n_range(1_000, points)
    return n_values, sweep(standard_series(sr_rtts=(0.001, 0.010)), n_values)
