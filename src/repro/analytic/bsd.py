"""Analytic cost of the BSD algorithm under TPC/A (paper Section 3.1).

The single-entry cache hits with probability 1/N (any of the N
memoryless users is equally likely to be next), so

    C_BSD(N) = 1 + (N^2 - 1) / 2N            (Eq. 1)

approaching N/2 for large N.  For the 200-TPS / 2,000-user benchmark
this is 1,001 PCBs per packet -- "exactly the cost of a miss to three
places, [so] the cache is clearly providing little help".
"""

from __future__ import annotations

import math

__all__ = [
    "cost",
    "hit_rate",
    "miss_cost",
    "ack_train_probability",
    "per_user_quiet_probability",
]


def _check_n(n_users: int) -> None:
    if n_users < 1:
        raise ValueError(f"need at least one user, got {n_users}")


def hit_rate(n_users: int) -> float:
    """Cache hit probability 1/N."""
    _check_n(n_users)
    return 1.0 / n_users


def miss_cost(n_users: int) -> float:
    """Expected list scan on a miss: (N+1)/2 (uniform target position)."""
    _check_n(n_users)
    return (n_users + 1) / 2.0


def cost(n_users: int) -> float:
    """Eq. 1: expected PCBs examined per inbound packet.

    One for the cache probe, plus the scan weighted by the miss
    probability (N-1)/N:

        1 + ((N-1)/N) * (N+1)/2 = 1 + (N^2 - 1) / 2N
    """
    _check_n(n_users)
    return 1.0 + (n_users**2 - 1) / (2.0 * n_users)


def per_user_quiet_probability(rate: float, response_time: float) -> float:
    """P[one user sends nothing during the response-time interval].

    Each user contributes two inbound packets per transaction (the
    query and the response's ack), so its inbound arrivals form a rate
    ``2a`` process and the no-arrival probability over R seconds is
    ``e^{-2aR}`` -- the "96%" of the paper's footnote 4 (a = 0.1/s,
    R = 0.2 s).
    """
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    if response_time < 0:
        raise ValueError(f"response time must be non-negative: {response_time}")
    return math.exp(-2.0 * rate * response_time)


def ack_train_probability(n_users: int, rate: float, response_time: float) -> float:
    """P[the BSD cache still holds a user's PCB when his response-ack arrives].

    Requires *no* other user's packet during the response interval:
    ``e^{-2aR(N-1)}``.  For N = 2000, a = 0.1/s, R = 0.2 s this is
    1.87e-35 -- the paper's footnote-4 "indeed remote" probability
    (printed in the body as "about 1.9 x 10^-3[5]"; EXPERIMENTS.md
    discusses the OCR-dropped exponent).
    """
    _check_n(n_users)
    return per_user_quiet_probability(rate, response_time) ** (n_users - 1)
