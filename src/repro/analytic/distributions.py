"""The exponential think-time distribution and its TPC/A truncation.

TPC/A (paper Section 2) draws each user's think time from "a truncated
negative-exponential distribution whose mean must be at least 10
seconds and whose maximum value must be at least 10 times the mean".
Section 3 models it as an *untruncated* exponential and argues the
error is negligible: with the cutoff at ten means, "only 0.004% of the
values are neglected on average, and they sum to less than 0.4% of the
total think time".  This module carries both distributions plus the
closed forms behind that argument, so a test (and a bench) can verify
the paper's negligibility claim quantitatively.
"""

from __future__ import annotations

import dataclasses
import math

__all__ = ["Exponential", "TruncatedExponential", "TPCA_MIN_MEAN_THINK"]

#: TPC/A's floor on mean think time, seconds.
TPCA_MIN_MEAN_THINK = 10.0


@dataclasses.dataclass(frozen=True)
class Exponential:
    """Exponential distribution with rate ``rate`` (mean ``1/rate``).

    The memoryless distribution at the center of the paper's analysis:
    "Since the negative exponential distribution is memoryless, each of
    the 2,000 users are equally likely to enter the next transaction."
    """

    rate: float

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"rate must be positive, got {self.rate}")

    @property
    def mean(self) -> float:
        return 1.0 / self.rate

    def pdf(self, t: float) -> float:
        """Density ``a e^{-at}`` (the paper's Eq. 4 without the dT)."""
        if t < 0:
            return 0.0
        return self.rate * math.exp(-self.rate * t)

    def cdf(self, t: float) -> float:
        """``F(T) = 1 - e^{-aT}`` -- the paper's Eq. 2."""
        if t < 0:
            return 0.0
        return -math.expm1(-self.rate * t)

    def survival(self, t: float) -> float:
        """``P[X > t] = e^{-at}``."""
        if t < 0:
            return 1.0
        return math.exp(-self.rate * t)

    def sample(self, rng) -> float:
        """Draw one value using ``rng`` (``random.Random``-compatible)."""
        return rng.expovariate(self.rate)


@dataclasses.dataclass(frozen=True)
class TruncatedExponential:
    """Exponential truncated (by rejection) at ``cutoff``.

    This is the distribution TPC/A actually mandates; truncation is
    modelled as rejection sampling (redraw values past the cutoff),
    which renormalizes the density over [0, cutoff].
    """

    rate: float
    cutoff: float

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"rate must be positive, got {self.rate}")
        if self.cutoff <= 0:
            raise ValueError(f"cutoff must be positive, got {self.cutoff}")

    @classmethod
    def tpca(cls, mean_think: float = TPCA_MIN_MEAN_THINK) -> "TruncatedExponential":
        """The TPC/A-minimum configuration: cutoff at ten times the mean."""
        if mean_think < TPCA_MIN_MEAN_THINK:
            raise ValueError(
                f"TPC/A requires mean think time >= {TPCA_MIN_MEAN_THINK}s,"
                f" got {mean_think}s"
            )
        return cls(rate=1.0 / mean_think, cutoff=10.0 * mean_think)

    @property
    def untruncated_mean(self) -> float:
        return 1.0 / self.rate

    @property
    def truncation_mass(self) -> float:
        """Fraction of untruncated draws rejected: ``e^{-a c}``.

        The paper's "only 0.004% of the values are neglected" -- for
        cutoff = 10 means this is e^-10 = 4.54e-5.
        """
        return math.exp(-self.rate * self.cutoff)

    @property
    def neglected_time_fraction(self) -> float:
        """Fraction of total (untruncated) think time past the cutoff.

        ``E[X; X > c] / E[X] = (1 + a c) e^{-a c}`` -- the paper's
        "they sum to less than 0.4% of the total think time".
        """
        ac = self.rate * self.cutoff
        return (1.0 + ac) * math.exp(-ac)

    @property
    def mean(self) -> float:
        """Mean of the truncated distribution (closed form)."""
        ac = self.rate * self.cutoff
        e = math.exp(-ac)
        return (1.0 / self.rate) * (1.0 - (1.0 + ac) * e) / (1.0 - e)

    def pdf(self, t: float) -> float:
        if t < 0 or t > self.cutoff:
            return 0.0
        norm = -math.expm1(-self.rate * self.cutoff)
        return self.rate * math.exp(-self.rate * t) / norm

    def cdf(self, t: float) -> float:
        if t < 0:
            return 0.0
        if t >= self.cutoff:
            return 1.0
        norm = -math.expm1(-self.rate * self.cutoff)
        return -math.expm1(-self.rate * t) / norm

    def sample(self, rng) -> float:
        """Rejection-sample: redraw anything past the cutoff.

        Expected redraw count is 1/(1 - e^{-ac}); for the TPC/A cutoff
        it redraws one draw in ~22,000.
        """
        while True:
            value = rng.expovariate(self.rate)
            if value <= self.cutoff:
                return value
