"""Move-to-front under the independent reference model (IRM).

A classical result (McCabe 1965; Rivest 1976) complements the paper's
Section 3.2: if requests are independent draws with probabilities
``p_1..p_N``, the stationary expected search cost of a move-to-front
list is

    C_MTF = 1 + 2 * sum_{i<j} p_i p_j / (p_i + p_j)

Two consequences matter for the paper:

* **Uniform weights give (N+1)/2** -- identical to a randomly ordered
  list.  Under *memoryless per-packet* traffic MTF neither helps nor
  hurts; every PCB is equally likely next, so recency carries no
  signal.  Crowcroft's win under TPC/A (Eqs. 5-6) comes entirely from
  the *pairing* of each transaction's query with its response ack --
  a correlation the IRM deliberately excludes.  A test pins the
  simulated per-packet-uniform MTF cost to (N+1)/2 and the TPC/A MTF
  cost to Eq. 6, the two regimes bracketing the mechanism.
* **Skewed weights beat the static random list but never the optimal
  static order by much**: C_MTF <= 2 * C_OPT (Rivest), quantifying
  what MTF can extract from popularity skew (the packet-train regime's
  friendlier cousin).

Functions accept raw weights and normalize, so Zipf-like populations
(``zipf_weights``) plug straight in.
"""

from __future__ import annotations

from typing import List, Sequence

__all__ = [
    "normalize",
    "mtf_cost",
    "static_optimal_cost",
    "random_order_cost",
    "zipf_weights",
    "competitive_ratio",
]


def normalize(weights: Sequence[float]) -> List[float]:
    """Scale positive weights to probabilities."""
    if not weights:
        raise ValueError("need at least one weight")
    if any(w <= 0 for w in weights):
        raise ValueError("weights must be positive")
    total = float(sum(weights))
    return [w / total for w in weights]


def mtf_cost(weights: Sequence[float]) -> float:
    """Stationary expected search cost of MTF under the IRM.

    ``1 + 2 sum_{i<j} p_i p_j / (p_i + p_j)``; O(N^2).
    """
    probs = normalize(weights)
    n = len(probs)
    total = 0.0
    for i in range(n):
        pi = probs[i]
        for j in range(i + 1, n):
            pj = probs[j]
            total += pi * pj / (pi + pj)
    return 1.0 + 2.0 * total


def static_optimal_cost(weights: Sequence[float]) -> float:
    """Expected cost of the best fixed order: descending probability."""
    probs = sorted(normalize(weights), reverse=True)
    return sum((position + 1) * p for position, p in enumerate(probs))


def random_order_cost(weights: Sequence[float]) -> float:
    """Expected cost of a uniformly random fixed order: (N+1)/2.

    Independent of the weights -- each item is equally likely to sit
    at any position, so the weighted mean collapses.
    """
    probs = normalize(weights)
    return (len(probs) + 1) / 2.0


def zipf_weights(n: int, skew: float = 1.0) -> List[float]:
    """Zipf-like weights ``1/rank^skew`` (``skew=0`` is uniform)."""
    if n < 1:
        raise ValueError(f"need at least one item, got {n}")
    if skew < 0:
        raise ValueError(f"skew must be non-negative, got {skew}")
    return [1.0 / (rank**skew) for rank in range(1, n + 1)]


def competitive_ratio(weights: Sequence[float]) -> float:
    """``C_MTF / C_OPT`` -- Rivest's bound says this never exceeds 2
    (asymptotically pi/2 for many natural distributions)."""
    optimal = static_optimal_cost(weights)
    if optimal == 0:
        raise ValueError("degenerate weights")
    return mtf_cost(weights) / optimal
