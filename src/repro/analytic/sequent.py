"""Analytic cost of the Sequent hashed algorithm (paper Section 3.4).

With ``H`` hash chains over ``N`` uniformly hashed connections:

* Eq. 18/19 -- the "tempting" first-order cost, which is just BSD on a
  chain of N/H PCBs:

      C(N, H) = 1 + (N-H)/N * (N/H + 1)/2  =  C_BSD(N/H)

* Eq. 20 -- the refinement: the probability that a chain receives *no*
  packet during a transaction's response-time interval (so the response
  ack still hits the per-chain cache) is

      p = e^{-2aR(N/H - 1)}

  (1.5% for H=19 at N=2000, R=0.2 s; almost 21% for H=51 -- vastly
  better than the single-chain BSD's 1.9e-35).

* Eq. 21 -- ack-packet cost as the paper prints it:
  ``p + (1-p)(N/H+1)/2``.  (Note the miss path omits the +1 cache
  probe that Eq. 18 charges; :func:`ack_cost` reproduces the paper
  exactly and ``consistent=True`` adds the probe for apples-to-apples
  comparison with simulation.)

* Eq. 22 -- overall: the mean of Eqs. 19 and 21, since half the
  inbound packets are acks.  53.0 PCBs for H=19, N=2000, R=0.2 s; the
  approximation Eq. 19 gives 53.6, "a little more than 1% error".
"""

from __future__ import annotations

import math

__all__ = [
    "chain_load",
    "cost_approx",
    "survive_probability",
    "data_cost",
    "ack_cost",
    "overall_cost",
    "approximation_error",
]


def _check(n_users: int, nchains: int) -> None:
    if n_users < 1:
        raise ValueError(f"need at least one user, got {n_users}")
    if nchains < 1:
        raise ValueError(f"need at least one hash chain, got {nchains}")


def chain_load(n_users: int, nchains: int) -> float:
    """N/H: expected PCBs per chain under a uniform hash."""
    _check(n_users, nchains)
    return n_users / nchains


def cost_approx(n_users: int, nchains: int) -> float:
    """Eq. 18/19: 1 + (N-H)/N * (N/H + 1)/2.

    53.6 for N=2000, H=19.  Setting H=1 recovers Eq. 1 exactly, which
    a property test pins down.  For H >= N the paper's miss probability
    (N-H)/N would go negative; with at least as many chains as PCBs a
    miss cannot out-populate the chains, so it clamps to zero (cost 1).
    """
    _check(n_users, nchains)
    n, h = n_users, nchains
    miss_probability = max(0.0, (n - h) / n)
    return 1.0 + miss_probability * (n / h + 1.0) / 2.0


def survive_probability(
    n_users: int, nchains: int, rate: float, response_time: float
) -> float:
    """Eq. 20: P[no packet on the chain during the response interval].

    Each of the chain's other ~N/H - 1 users contributes inbound
    packets at rate 2a.
    """
    _check(n_users, nchains)
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    if response_time < 0:
        raise ValueError(f"response time must be non-negative: {response_time}")
    load = chain_load(n_users, nchains)
    return math.exp(-2.0 * rate * response_time * max(load - 1.0, 0.0))


def data_cost(n_users: int, nchains: int) -> float:
    """Per-data-packet cost: the Eq. 18 form (hit rate H/N)."""
    return cost_approx(n_users, nchains)


def ack_cost(
    n_users: int,
    nchains: int,
    rate: float,
    response_time: float,
    *,
    consistent: bool = False,
) -> float:
    """Eq. 21: expected PCBs examined for a response's transport ack.

    ``consistent=True`` charges the cache probe on the miss path too
    (``p + (1-p)(1 + (N/H+1)/2)``), matching what the simulated
    structure actually does; the default reproduces the paper's printed
    equation.
    """
    p = survive_probability(n_users, nchains, rate, response_time)
    scan = (chain_load(n_users, nchains) + 1.0) / 2.0
    if consistent:
        return p + (1.0 - p) * (1.0 + scan)
    return p + (1.0 - p) * scan


def overall_cost(
    n_users: int,
    nchains: int,
    rate: float,
    response_time: float,
    *,
    consistent: bool = False,
) -> float:
    """Eq. 22: mean of data (Eq. 19) and ack (Eq. 21) costs.

    53.0 PCBs for the 200-TPS benchmark with H=19 and R=0.2 s --
    the paper's order-of-magnitude improvement over BSD's 1,001.
    """
    data = data_cost(n_users, nchains)
    ack = ack_cost(n_users, nchains, rate, response_time, consistent=consistent)
    return (data + ack) / 2.0


def approximation_error(
    n_users: int, nchains: int, rate: float, response_time: float
) -> float:
    """Relative error of Eq. 19 vs Eq. 22: (approx - exact) / exact.

    "a little more than 1%" for the default configuration, "exceeding
    10% if 51 hash chains are substituted".
    """
    exact = overall_cost(n_users, nchains, rate, response_time)
    approx = cost_approx(n_users, nchains)
    if exact == 0:
        raise ValueError("exact cost is zero; relative error undefined")
    return (approx - exact) / exact
