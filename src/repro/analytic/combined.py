"""Analytic model of the Section 3.5 combinations.

The paper dismisses combining move-to-front with hash chains by a
back-of-envelope: "the best-case factor-of-two improvement" inside a
chain vs. the "factor-of-five" from H=19 -> 100.  This module makes
that envelope precise by composing the existing per-structure models:

* a hash over H chains turns one population of N into H independent
  populations of ~N/H seeing a thinned arrival process (each chain's
  users still transact at rate ``a``; the *other* users on the chain
  number N/H - 1);
* therefore each single-list model applies verbatim with
  ``N -> N/H`` -- exactly the identity the paper uses for BSD in
  Eq. 19 (``C_SQNT = C_BSD(N/H)``), extended here to MTF and to the
  k-entry LRU cache.

These composed forms power the combination bench and let a user ask
"what would MTF chains / LRU-fronted chains cost at my N and H"
without a simulation.
"""

from __future__ import annotations

from . import crowcroft, multicache

__all__ = [
    "effective_chain_population",
    "hashed_mtf_cost",
    "hashed_lru_cost",
    "mtf_gain_bound",
]


def effective_chain_population(n_users: int, nchains: int) -> float:
    """Expected users per chain under a uniform hash (>= 1)."""
    if n_users < 1:
        raise ValueError(f"need at least one user, got {n_users}")
    if nchains < 1:
        raise ValueError(f"need at least one chain, got {nchains}")
    return max(1.0, n_users / nchains)


def hashed_mtf_cost(
    n_users: int,
    nchains: int,
    rate: float,
    response_time: float,
    *,
    examined: bool = True,
) -> float:
    """Move-to-front applied within each of H chains.

    The Crowcroft model with N -> N/H: the chain sees the same think
    and response times, just fewer competitors.  Defaults to examined
    counts (preceding + 1) since this is used next to simulations.
    """
    population = round(effective_chain_population(n_users, nchains))
    return crowcroft.overall_cost(
        population, rate, response_time, examined=examined
    )


def hashed_lru_cost(n_users: int, nchains: int, cache_size: int) -> float:
    """A k-entry LRU cache in front of each of H chains."""
    population = max(1, round(effective_chain_population(n_users, nchains)))
    return multicache.cost(population, min(cache_size, population))


def mtf_gain_bound(n_users: int, nchains: int) -> float:
    """Upper bound on what MTF can buy inside a chain.

    A linear scan of a chain of n costs between (n+1)/2 (uniform
    order) and at best ~1 (perfect locality); MTF cannot beat the
    latter, so the improvement factor over the uniform scan is at most
    (n+1)/2 / 1 -- but under *memoryless* traffic (the TPC/A regime)
    list order carries no exploitable signal beyond the response-ack
    correlation, and the paper's bound of ~2x applies: MTF halves the
    expected *entry* position at best.  We return the paper's factor
    of two as the honest operating bound for OLTP, degrading toward
    1.0 as the chain population approaches 1 (nothing to reorder).
    """
    population = effective_chain_population(n_users, nchains)
    # The absolute ceiling: a uniform scan costs (p+1)/2 and no
    # ordering can get below 1, so the gain is at most (p+1)/2 --
    # which for chains shorter than 3 is below the paper's 2x.
    return min(2.0, (population + 1.0) / 2.0)
