"""Analytic cost of the Partridge/Pink send/receive cache (Section 3.3).

The analysis splits inbound packets into three cases, with ``a`` the
per-user rate, ``N`` users, ``R`` the response time, and ``D`` the
network round-trip time:

* **Case 1** (Eq. 8-11): a transaction arriving after a think time
  ``T > R + D``.  The cache survives only if no other user's packet
  arrived during an interval of length ``T + R + D``.
* **Case 2** (Eq. 12-14): ``T < R + D``; the vulnerable window is
  ``2T``.
* **Case 3** (Eq. 15-16): the response's transport-level ack; the
  attacker has two windows of length ``D``.

A hit costs one examined PCB (both slots hold the target); a miss costs
``(N+5)/2`` -- both cache slots plus the average scan.  Cases 1 and 2
are mutually exclusive pieces of one expectation over think time, so
the overall per-packet cost (Eq. 7) averages *their sum* with the ack
case:

    N = (N1 + N2 + Na) / 2

which reproduces the paper's 667 / 993 / 1002 PCBs at D = 1/10/100 ms
(N=2000; nearly independent of R at this scale).

Closed forms (derived from Eqs. 10, 13; validated against quadrature in
the tests), with ``S = R + D``:

    N1 = (N+5)/2 e^{-aS} - (N+3)/(2N)      e^{-aS(2N-1)}
    N2 = (N+5)/2 (1 - e^{-aS})
       - (N+3)/(2(2N-1)) (1 - e^{-aS(2N-1)})
    Na = (N+5)/2 - (N+3)/2 e^{-2aD(N-1)}

Note on Eq. 15: the paper's printed ``p_a = e^{-2aD}`` omits the
``(N-1)`` exponent its own limit argument ("as D and N increase...")
requires; the corrected form above reproduces the quoted results.
"""

from __future__ import annotations

import math

from scipy import integrate

__all__ = [
    "survive_probability_case1",
    "survive_probability_case2",
    "survive_probability_ack",
    "hit_cost",
    "miss_cost",
    "case1_cost",
    "case1_cost_quadrature",
    "case2_cost",
    "case2_cost_quadrature",
    "ack_cost",
    "overall_cost",
]


def _check(n_users: int, rate: float, response_time: float, rtt: float) -> None:
    if n_users < 1:
        raise ValueError(f"need at least one user, got {n_users}")
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    if response_time < 0:
        raise ValueError(f"response time must be non-negative: {response_time}")
    if rtt < 0:
        raise ValueError(f"round-trip time must be non-negative: {rtt}")


def hit_cost() -> float:
    """A cache hit examines exactly one PCB (both slots hold it)."""
    return 1.0


def miss_cost(n_users: int) -> float:
    """(N+5)/2: two cache slots plus the (N+1)/2 average list scan."""
    if n_users < 1:
        raise ValueError(f"need at least one user, got {n_users}")
    return (n_users + 5) / 2.0


def survive_probability_case1(
    n_users: int, rate: float, think: float, response_time: float, rtt: float
) -> float:
    """Eq. 8: P[cache intact] for a transaction after think ``T > R+D``."""
    _check(n_users, rate, response_time, rtt)
    window = think + response_time + rtt
    return math.exp(-rate * window * (n_users - 1))


def survive_probability_case2(n_users: int, rate: float, think: float) -> float:
    """Eq. 12: P[cache intact] for a transaction after think ``T < R+D``."""
    if n_users < 1:
        raise ValueError(f"need at least one user, got {n_users}")
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    return math.exp(-2.0 * rate * think * (n_users - 1))


def survive_probability_ack(n_users: int, rate: float, rtt: float) -> float:
    """Eq. 15 (exponent corrected): P[cache intact] for a response ack."""
    if n_users < 1:
        raise ValueError(f"need at least one user, got {n_users}")
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    if rtt < 0:
        raise ValueError(f"round-trip time must be non-negative: {rtt}")
    return math.exp(-2.0 * rate * rtt * (n_users - 1))


def case1_cost(n_users: int, rate: float, response_time: float, rtt: float) -> float:
    """Eq. 11: think-time-weighted cost contribution of Case 1."""
    _check(n_users, rate, response_time, rtt)
    n = n_users
    s = response_time + rtt
    return (n + 5) / 2.0 * math.exp(-rate * s) - (n + 3) / (2.0 * n) * math.exp(
        -rate * s * (2 * n - 1)
    )


def case1_cost_quadrature(
    n_users: int, rate: float, response_time: float, rtt: float
) -> float:
    """Eq. 10 integrated numerically (validates :func:`case1_cost`)."""
    _check(n_users, rate, response_time, rtt)
    a, n = rate, n_users
    s = response_time + rtt

    def integrand(t: float) -> float:
        p_survive = math.exp(-a * (t + s) * (n - 1))
        expected = p_survive + (1.0 - p_survive) * (n + 5) / 2.0
        return a * math.exp(-a * t) * expected

    value, _ = integrate.quad(integrand, s, math.inf)
    return value


def case2_cost(n_users: int, rate: float, response_time: float, rtt: float) -> float:
    """Eq. 14: think-time-weighted cost contribution of Case 2."""
    _check(n_users, rate, response_time, rtt)
    n = n_users
    s = response_time + rtt
    expm = -math.expm1(-rate * s)  # 1 - e^{-aS}
    expm_long = -math.expm1(-rate * s * (2 * n - 1))
    return (n + 5) / 2.0 * expm - (n + 3) / (2.0 * (2 * n - 1)) * expm_long


def case2_cost_quadrature(
    n_users: int, rate: float, response_time: float, rtt: float
) -> float:
    """Eq. 13 integrated numerically (validates :func:`case2_cost`)."""
    _check(n_users, rate, response_time, rtt)
    a, n = rate, n_users
    s = response_time + rtt

    def integrand(t: float) -> float:
        p_survive = math.exp(-2.0 * a * t * (n - 1))
        expected = p_survive + (1.0 - p_survive) * (n + 5) / 2.0
        return a * math.exp(-a * t) * expected

    value, _ = integrate.quad(integrand, 0.0, s)
    return value


def ack_cost(n_users: int, rate: float, rtt: float) -> float:
    """Eq. 16: expected PCBs examined for a response's transport ack.

    ``(N+5)/2 - (N+3)/2 e^{-2aD(N-1)}``; approaches (N+5)/2 as D or N
    grow, and approaches 1 as D -> 0 or N -> 1.
    """
    if n_users < 1:
        raise ValueError(f"need at least one user, got {n_users}")
    p = survive_probability_ack(n_users, rate, rtt)
    n = n_users
    return (n + 5) / 2.0 - (n + 3) / 2.0 * p


def overall_cost(
    n_users: int, rate: float, response_time: float, rtt: float
) -> float:
    """Eq. 7/17: expected PCBs examined per inbound packet.

    ``(N1 + N2 + Na) / 2`` -- transaction cases are mutually exclusive
    pieces of one expectation, averaged 50/50 against acks.  Approaches
    (N+5)/2 for large N: "as the stress on the cache increases, the
    performance converges to that of an uncached linked list plus the
    overhead imposed by the cache."
    """
    n1 = case1_cost(n_users, rate, response_time, rtt)
    n2 = case2_cost(n_users, rate, response_time, rtt)
    na = ack_cost(n_users, rate, rtt)
    return (n1 + n2 + na) / 2.0
