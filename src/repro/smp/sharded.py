"""``ShardedDemux``: N independent demux structures behind one facade.

The paper's structures are single instances; a receive-side-scaled host
runs one instance per CPU and steers packets among them.  This wrapper
makes that arrangement out of *any* registered algorithm: each shard is
a private instance built by a factory, a :class:`SteeringFunction`
names the shard for each packet, and the facade keeps the
:class:`~repro.core.base.DemuxAlgorithm` contract, so everything that
drives an algorithm (workloads, the full TCP stack, the fault matrix)
drives a sharded one unchanged.

Semantics are pinned to the unsharded structure: a lookup finds exactly
the PCBs an unsharded instance would find.  For flow-stable steering
this is free -- a flow's packets always reach the shard holding its
PCB.  For unstable steering (round-robin) the wrapper keeps a home
table (four-tuple -> shard, the flow-director table real NICs keep in
hardware) and *migrates* the PCB to the steered shard before looking it
up, modelling what an SMP actually does: the connection's state follows
the CPU that processes it, one cache-line convoy at a time.  Migrations
are counted and priced by :mod:`repro.smp.contention`; ``examined``
stays a pure count of PCB touches, exactly as in the base convention.

Statistics land in two places: each shard's own ``DemuxStats`` (the
per-shard view -- occupancy, per-shard p99 -- that
:func:`repro.smp.metrics.publish_sharded` exports) and the facade's
aggregate stats, recorded by the base-class template method.
:meth:`ShardedDemux.aggregated_stats` re-derives the aggregate from the
shards via :meth:`~repro.core.stats.DemuxStats.merge`, which is also
the path parallel sweeps use to combine per-process results.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..core.base import DemuxAlgorithm, DuplicateConnectionError, LookupResult
from ..core.pcb import PCB
from ..core.stats import DemuxStats, PacketKind
from ..packet.addresses import FourTuple
from .contention import ContentionModel, DEFAULT_CONTENTION, SMPCostReport, build_report
from .steering import HashSteering, SteeringFunction, StickyFlowSteering

__all__ = ["ShardedDemux"]


class ShardedDemux(DemuxAlgorithm):
    """N shards of one algorithm behind a steering function."""

    def __init__(
        self,
        shard_factory: Callable[[], DemuxAlgorithm],
        nshards: int,
        steering: Optional[SteeringFunction] = None,
        *,
        inner_spec: Optional[str] = None,
        workers: Optional[int] = None,
    ):
        super().__init__()
        if nshards <= 0:
            raise ValueError(f"nshards must be positive, got {nshards}")
        if workers is not None and workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        self._shard_factory = shard_factory
        self._shards: List[DemuxAlgorithm] = [
            shard_factory() for _ in range(nshards)
        ]
        self.steering = steering if steering is not None else HashSteering()
        #: Four-tuple -> index of the shard currently holding its PCB.
        self._home: Dict[FourTuple, int] = {}
        #: PCB moves forced by non-flow-stable steering.
        self.flow_migrations = 0
        #: Per-shard count of migration second hops: lookups a shard
        #: served because a PCB had just been migrated *to* it, not
        #: because steering dealt it the packet.  Kept out of
        #: :meth:`shard_loads` so the imbalance factor measures the
        #: steering function, not the migration traffic.
        self._migration_relookups: List[int] = [0] * nshards
        self.name = f"sharded-{self._shards[0].name}"
        #: Registry spec of one shard, when built through the registry.
        #: Checkpoint/restore needs it to rebuild a crashed shard.
        self.inner_spec = inner_spec
        #: Requested worker-process count (``workers=`` spec option);
        #: ``None`` keeps every shard in-process.  The pool spins up
        #: lazily on the first lookup -- see :meth:`_activate_workers`.
        self._requested_workers = workers
        self._pool = None

    # -- structure facade --------------------------------------------------

    @property
    def workers(self) -> int:
        """Active worker processes (0 until the pool spins up)."""
        return self._pool.nworkers if self._pool is not None else 0

    def _activate_workers(self) -> None:
        """Move every shard into a shared-memory worker process.

        Deferred to the first lookup so the whole insert phase runs
        in-process (one export instead of per-op ring traffic) and so
        the fast twins' single-entry caches -- which the flat-array
        export does not carry -- are still provably empty whenever the
        flat path is taken (:func:`repro.smp.shm._export_shards` falls
        back to snapshot payloads otherwise, e.g. after a warm
        restore).  Each local shard is replaced by a
        :class:`~repro.smp.shm.ShardMirror` carrying the shard's PCB
        directory and its live ``DemuxStats`` object.
        """
        from .shm import ShardMirror, ShmWorkerPool

        specs = []
        for shard in self._shards:
            spec = shard.spec or self.inner_spec
            if not spec:
                raise ValueError(
                    "workers mode needs each shard's registry spec to"
                    " bootstrap the worker processes; build the facade"
                    " through make_algorithm or pass inner_spec"
                )
            specs.append(spec)
        pool = ShmWorkerPool(min(self._requested_workers, self.nshards))
        pool.start(self._shards, specs)
        self._shards = [
            ShardMirror(
                pool,
                index,
                specs[index],
                shard.name,
                {pcb.four_tuple: pcb for pcb in shard},
                shard.stats,
            )
            for index, shard in enumerate(self._shards)
        ]
        self._pool = pool

    def close(self) -> None:
        """Shut down the worker pool (no-op when none is active).

        The mirrors stay in place but any further operation on them
        fails fast; ``close`` is for end-of-run teardown, not pausing.
        """
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    @property
    def nshards(self) -> int:
        return len(self._shards)

    @property
    def shards(self) -> Sequence[DemuxAlgorithm]:
        """The shard instances (read-only view for inspection/tests)."""
        return tuple(self._shards)

    def shard_of(self, tup: FourTuple) -> int:
        """Where ``tup``'s PCB currently lives (KeyError if absent)."""
        return self._home[tup]

    def home_table(self) -> Dict[FourTuple, int]:
        """A copy of the flow-director table (tuple -> shard index).

        Iteration order is first-insert order, which is the order a
        cold rebuild re-installs a crashed shard's flows in.
        """
        return dict(self._home)

    def fresh_shard(self) -> DemuxAlgorithm:
        """A new, empty shard instance from the configured factory."""
        return self._shard_factory()

    def replace_shard(self, index: int, shard: DemuxAlgorithm) -> None:
        """Swap in a rebuilt shard instance (crash recovery).

        The dispatcher's flow-director table (``_home``) survives a
        shard crash -- it lives with the steering CPU, not the shard --
        so the caller is responsible for the replacement holding
        exactly the PCBs whose home is ``index`` (warm restore) or for
        re-homing the orphans first (re-steer/cold paths, see
        :class:`repro.recovery.ShardSupervisor`).

        With an active worker pool the replacement is a *local* shard
        object (recovery builds and replays it in-process); its full
        snapshot payload is shipped to the owning worker over the
        control pipe and a fresh mirror takes its seat in the facade.
        """
        if not 0 <= index < len(self._shards):
            raise IndexError(f"no shard {index} (nshards={self.nshards})")
        if self._pool is None:
            self._shards[index] = shard
            return
        from ..recovery.snapshot import capture_state  # lazy: layering
        from .shm import ShardMirror

        spec = shard.spec or self.inner_spec
        self._pool.restore_shard(index, capture_state(shard, spec=spec))
        self._shards[index] = ShardMirror(
            self._pool,
            index,
            spec,
            shard.name,
            {pcb.four_tuple: pcb for pcb in shard},
            shard.stats,
        )

    def capture_shard_payload(self, index: int) -> Dict[str, object]:
        """One shard's snapshot payload (see :mod:`repro.recovery`).

        The single entry point that works in both execution modes: an
        in-process shard is captured directly; a worker-resident shard
        is captured *by its worker* and the payload returned over the
        control pipe.  Supervised checkpointing and whole-structure
        snapshots both route through here.
        """
        if not 0 <= index < len(self._shards):
            raise IndexError(f"no shard {index} (nshards={self.nshards})")
        shard = self._shards[index]
        spec = shard.spec or self.inner_spec
        if self._pool is not None:
            return self._pool.snapshot_shard(index, spec)
        from ..recovery.snapshot import capture_state  # lazy: layering

        return capture_state(shard, spec=spec)

    def forget_flow(self, tup: FourTuple) -> None:
        """Drop a flow from the director table without touching shards.

        Used when a crashed shard's PCB is gone and the flow must be
        re-homed: the structural remove (``_remove``) would try to pull
        the PCB out of a shard that no longer holds it.  Also releases
        any sticky-steering pin so the flow can be re-assigned.
        """
        self._home.pop(tup, None)
        if isinstance(self.steering, StickyFlowSteering):
            self.steering.forget(tup)

    def _insert(self, pcb: PCB) -> None:
        tup = pcb.four_tuple
        if tup in self._home:
            raise DuplicateConnectionError(f"duplicate connection {tup}")
        shard = self.steering.shard_of(tup, self.nshards)
        self._shards[shard].insert(pcb)
        self._home[tup] = shard

    def _remove(self, tup: FourTuple) -> PCB:
        shard = self._home.pop(tup)  # KeyError when absent, per contract
        if isinstance(self.steering, StickyFlowSteering):
            self.steering.forget(tup)
        return self._shards[shard].remove(tup)

    def _note_send(self, pcb: PCB) -> None:
        shard = self._home.get(pcb.four_tuple)
        if shard is not None:
            self._shards[shard].note_send(pcb)

    def _lookup(self, tup: FourTuple, kind: PacketKind) -> LookupResult:
        if self._pool is None and self._requested_workers:
            self._activate_workers()
        spans = self.spans
        if spans is not None:
            spans.open_packet(tup, kind, owner="demux")
        target = self.steering.shard_of(tup, self.nshards)
        home = self._home.get(tup)
        migrated = home is not None and home != target
        if migrated:
            # The steered CPU takes over the flow: its PCB (and cache
            # lines) migrate.  Examined-count purity is preserved; the
            # move is priced separately by the contention model.
            pcb = self._shards[home].remove(tup)
            self._shards[target].insert(pcb)
            self._home[tup] = target
            self.flow_migrations += 1
            self._migration_relookups[target] += 1
        if spans is not None:
            spans.stage(
                "steer",
                policy=self.steering.name,
                shard=target,
                migrated=migrated,
            )
        return self._shards[target].lookup(tup, kind)

    def lookup_batch(
        self, packets: Sequence[Tuple[FourTuple, PacketKind]]
    ) -> List[LookupResult]:
        """Batched lookup, dispatched shard-by-shard.

        For flow-stable steering (hash, sticky) a packet's shard is
        fixed and no migrations can occur, so the batch is steered in
        input order, grouped by shard, served as one sub-batch per
        shard (letting fast shards amortize through their own
        ``lookup_batch``), and scattered back to input order.  Each
        shard sees exactly the subsequence it would have seen packet
        by packet, so every decision -- and every shard's statistics --
        is identical to the sequential path.  Unstable steering
        (round-robin) migrates PCBs mid-batch, so it keeps the
        per-packet path.  Hooks (tracer/profiler/spans) are per-lookup
        by contract and also take the per-packet path.

        With an active worker pool the dispatch is two-phase: every
        shard's sub-batch is *sent* before any result is collected, so
        the workers overlap -- this loop is where the parallel speedup
        actually happens.  Each shard still sees exactly its sequential
        subsequence (rings are FIFO, collection follows send order per
        worker), so decisions are unchanged.
        """
        tracer = self.tracer
        if (
            not self.steering.flow_stable
            or self._profiler is not None
            or self.spans is not None
            or (tracer is not None and tracer.enabled)
        ):
            return super().lookup_batch(packets)
        if self._pool is None and self._requested_workers:
            self._activate_workers()
        nshards = self.nshards
        shard_of = self.steering.shard_of
        # Steer in input order: sticky steering assigns new flows as it
        # first sees them, and that order must match sequential replay.
        groups: Dict[int, List[int]] = {}
        for position, (tup, _) in enumerate(packets):
            groups.setdefault(shard_of(tup, nshards), []).append(position)
        results: List[Optional[LookupResult]] = [None] * len(packets)
        if self._pool is not None:
            sub_batches = {
                shard_index: [packets[position] for position in positions]
                for shard_index, positions in groups.items()
            }
            for shard_index, sub_batch in sub_batches.items():
                self._shards[shard_index].send_batch(sub_batch)
            for shard_index, sub_batch in sub_batches.items():
                sub_results = self._shards[shard_index].collect_batch(
                    sub_batch
                )
                for position, result in zip(
                    groups[shard_index], sub_results
                ):
                    results[position] = result
        else:
            for shard_index, positions in groups.items():
                sub_batch = [packets[position] for position in positions]
                sub_results = self._shards[shard_index].lookup_batch(
                    sub_batch
                )
                for position, result in zip(positions, sub_results):
                    results[position] = result
        for (tup, _), result in zip(packets, results):
            self._finish_lookup(tup, result)
        return results

    def __len__(self) -> int:
        return len(self._home)

    def __iter__(self) -> Iterator[PCB]:
        for shard in self._shards:
            yield from shard

    def __contains__(self, tup: FourTuple) -> bool:
        return tup in self._home

    # -- per-shard observability ------------------------------------------

    def occupancy(self) -> Sequence[int]:
        """PCBs resident per shard."""
        return tuple(len(shard) for shard in self._shards)

    def shard_loads(self) -> Sequence[int]:
        """Lookups the steering function dealt each shard.

        Excludes migration second hops (a lookup served only because
        the PCB was just migrated in); those are attributed separately
        by :meth:`migration_loads`, so ``shard_loads`` measures the
        steering function alone and
        ``sum(shard_loads()) + sum(migration_loads())`` equals the
        total lookups served across shards.
        """
        return tuple(
            shard.stats.lookups - relookups
            for shard, relookups in zip(
                self._shards, self._migration_relookups
            )
        )

    def migration_loads(self) -> Sequence[int]:
        """Migration second hops served per shard."""
        return tuple(self._migration_relookups)

    def imbalance_factor(self) -> float:
        """Max/mean steered shard load; 1.0 is perfect balance.

        Computed from :meth:`shard_loads`, i.e. without migration
        re-lookups -- a migration-heavy stream must not inflate the
        reported steering skew (or the smp-sweep imbalance criterion).
        """
        loads = self.shard_loads()
        total = sum(loads)
        if not total:
            return 1.0
        return max(loads) / (total / len(loads))

    def per_shard_p99(self) -> Sequence[int]:
        """p99 of each shard's search-length distribution."""
        return tuple(
            shard.stats.combined().percentile(0.99) for shard in self._shards
        )

    def aggregated_stats(self) -> DemuxStats:
        """All shard statistics merged into one ``DemuxStats``."""
        merged = DemuxStats()
        for shard in self._shards:
            merged.merge(shard.stats)
        return merged

    def reset_stats(self) -> None:
        """Zero the facade's and every shard's counters together."""
        self.stats.reset()
        for shard in self._shards:
            shard.stats.reset()
        if self._pool is not None:
            self._pool.reset_stats()
        self.flow_migrations = 0
        self._migration_relookups = [0] * self.nshards

    def cost_report(
        self, model: ContentionModel = DEFAULT_CONTENTION
    ) -> SMPCostReport:
        """Price the measured run under the SMP contention model."""
        return build_report(
            nshards=self.nshards,
            steering=self.steering.name,
            steer_ops=self.steering.cost_ops,
            migrations=self.flow_migrations,
            per_shard_lookups=[s.stats.lookups for s in self._shards],
            per_shard_occupancy=self.occupancy(),
            per_shard_mean_examined=[
                s.stats.mean_examined for s in self._shards
            ],
            per_shard_p99=self.per_shard_p99(),
            model=model,
            per_shard_steered=self.shard_loads(),
        )

    def describe(self) -> str:
        return (
            f"{self.name} (S={self.nshards}, steer={self.steering.name},"
            f" {len(self)} PCBs, imbalance {self.imbalance_factor():.2f})"
        )
