"""``ShardedDemux``: N independent demux structures behind one facade.

The paper's structures are single instances; a receive-side-scaled host
runs one instance per CPU and steers packets among them.  This wrapper
makes that arrangement out of *any* registered algorithm: each shard is
a private instance built by a factory, a :class:`SteeringFunction`
names the shard for each packet, and the facade keeps the
:class:`~repro.core.base.DemuxAlgorithm` contract, so everything that
drives an algorithm (workloads, the full TCP stack, the fault matrix)
drives a sharded one unchanged.

Semantics are pinned to the unsharded structure: a lookup finds exactly
the PCBs an unsharded instance would find.  For flow-stable steering
this is free -- a flow's packets always reach the shard holding its
PCB.  For unstable steering (round-robin) the wrapper keeps a home
table (four-tuple -> shard, the flow-director table real NICs keep in
hardware) and *migrates* the PCB to the steered shard before looking it
up, modelling what an SMP actually does: the connection's state follows
the CPU that processes it, one cache-line convoy at a time.  Migrations
are counted and priced by :mod:`repro.smp.contention`; ``examined``
stays a pure count of PCB touches, exactly as in the base convention.

Statistics land in two places: each shard's own ``DemuxStats`` (the
per-shard view -- occupancy, per-shard p99 -- that
:func:`repro.smp.metrics.publish_sharded` exports) and the facade's
aggregate stats, recorded by the base-class template method.
:meth:`ShardedDemux.aggregated_stats` re-derives the aggregate from the
shards via :meth:`~repro.core.stats.DemuxStats.merge`, which is also
the path parallel sweeps use to combine per-process results.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..core.base import DemuxAlgorithm, DuplicateConnectionError, LookupResult
from ..core.pcb import PCB
from ..core.stats import DemuxStats, PacketKind
from ..packet.addresses import FourTuple
from .contention import ContentionModel, DEFAULT_CONTENTION, SMPCostReport, build_report
from .steering import HashSteering, SteeringFunction, StickyFlowSteering

__all__ = ["ShardedDemux"]


class ShardedDemux(DemuxAlgorithm):
    """N shards of one algorithm behind a steering function."""

    def __init__(
        self,
        shard_factory: Callable[[], DemuxAlgorithm],
        nshards: int,
        steering: Optional[SteeringFunction] = None,
        *,
        inner_spec: Optional[str] = None,
    ):
        super().__init__()
        if nshards <= 0:
            raise ValueError(f"nshards must be positive, got {nshards}")
        self._shard_factory = shard_factory
        self._shards: List[DemuxAlgorithm] = [
            shard_factory() for _ in range(nshards)
        ]
        self.steering = steering if steering is not None else HashSteering()
        #: Four-tuple -> index of the shard currently holding its PCB.
        self._home: Dict[FourTuple, int] = {}
        #: PCB moves forced by non-flow-stable steering.
        self.flow_migrations = 0
        self.name = f"sharded-{self._shards[0].name}"
        #: Registry spec of one shard, when built through the registry.
        #: Checkpoint/restore needs it to rebuild a crashed shard.
        self.inner_spec = inner_spec

    # -- structure facade --------------------------------------------------

    @property
    def nshards(self) -> int:
        return len(self._shards)

    @property
    def shards(self) -> Sequence[DemuxAlgorithm]:
        """The shard instances (read-only view for inspection/tests)."""
        return tuple(self._shards)

    def shard_of(self, tup: FourTuple) -> int:
        """Where ``tup``'s PCB currently lives (KeyError if absent)."""
        return self._home[tup]

    def home_table(self) -> Dict[FourTuple, int]:
        """A copy of the flow-director table (tuple -> shard index).

        Iteration order is first-insert order, which is the order a
        cold rebuild re-installs a crashed shard's flows in.
        """
        return dict(self._home)

    def fresh_shard(self) -> DemuxAlgorithm:
        """A new, empty shard instance from the configured factory."""
        return self._shard_factory()

    def replace_shard(self, index: int, shard: DemuxAlgorithm) -> None:
        """Swap in a rebuilt shard instance (crash recovery).

        The dispatcher's flow-director table (``_home``) survives a
        shard crash -- it lives with the steering CPU, not the shard --
        so the caller is responsible for the replacement holding
        exactly the PCBs whose home is ``index`` (warm restore) or for
        re-homing the orphans first (re-steer/cold paths, see
        :class:`repro.recovery.ShardSupervisor`).
        """
        if not 0 <= index < len(self._shards):
            raise IndexError(f"no shard {index} (nshards={self.nshards})")
        self._shards[index] = shard

    def forget_flow(self, tup: FourTuple) -> None:
        """Drop a flow from the director table without touching shards.

        Used when a crashed shard's PCB is gone and the flow must be
        re-homed: the structural remove (``_remove``) would try to pull
        the PCB out of a shard that no longer holds it.  Also releases
        any sticky-steering pin so the flow can be re-assigned.
        """
        self._home.pop(tup, None)
        if isinstance(self.steering, StickyFlowSteering):
            self.steering.forget(tup)

    def _insert(self, pcb: PCB) -> None:
        tup = pcb.four_tuple
        if tup in self._home:
            raise DuplicateConnectionError(f"duplicate connection {tup}")
        shard = self.steering.shard_of(tup, self.nshards)
        self._shards[shard].insert(pcb)
        self._home[tup] = shard

    def _remove(self, tup: FourTuple) -> PCB:
        shard = self._home.pop(tup)  # KeyError when absent, per contract
        if isinstance(self.steering, StickyFlowSteering):
            self.steering.forget(tup)
        return self._shards[shard].remove(tup)

    def _note_send(self, pcb: PCB) -> None:
        shard = self._home.get(pcb.four_tuple)
        if shard is not None:
            self._shards[shard].note_send(pcb)

    def _lookup(self, tup: FourTuple, kind: PacketKind) -> LookupResult:
        spans = self.spans
        if spans is not None:
            spans.open_packet(tup, kind, owner="demux")
        target = self.steering.shard_of(tup, self.nshards)
        home = self._home.get(tup)
        migrated = home is not None and home != target
        if migrated:
            # The steered CPU takes over the flow: its PCB (and cache
            # lines) migrate.  Examined-count purity is preserved; the
            # move is priced separately by the contention model.
            pcb = self._shards[home].remove(tup)
            self._shards[target].insert(pcb)
            self._home[tup] = target
            self.flow_migrations += 1
        if spans is not None:
            spans.stage(
                "steer",
                policy=self.steering.name,
                shard=target,
                migrated=migrated,
            )
        return self._shards[target].lookup(tup, kind)

    def lookup_batch(
        self, packets: Sequence[Tuple[FourTuple, PacketKind]]
    ) -> List[LookupResult]:
        """Batched lookup, dispatched shard-by-shard.

        For flow-stable steering (hash, sticky) a packet's shard is
        fixed and no migrations can occur, so the batch is steered in
        input order, grouped by shard, served as one sub-batch per
        shard (letting fast shards amortize through their own
        ``lookup_batch``), and scattered back to input order.  Each
        shard sees exactly the subsequence it would have seen packet
        by packet, so every decision -- and every shard's statistics --
        is identical to the sequential path.  Unstable steering
        (round-robin) migrates PCBs mid-batch, so it keeps the
        per-packet path.  Hooks (tracer/profiler/spans) are per-lookup
        by contract and also take the per-packet path.
        """
        tracer = self.tracer
        if (
            not self.steering.flow_stable
            or self._profiler is not None
            or self.spans is not None
            or (tracer is not None and tracer.enabled)
        ):
            return super().lookup_batch(packets)
        nshards = self.nshards
        shard_of = self.steering.shard_of
        # Steer in input order: sticky steering assigns new flows as it
        # first sees them, and that order must match sequential replay.
        groups: Dict[int, List[int]] = {}
        for position, (tup, _) in enumerate(packets):
            groups.setdefault(shard_of(tup, nshards), []).append(position)
        results: List[Optional[LookupResult]] = [None] * len(packets)
        for shard_index, positions in groups.items():
            sub_batch = [packets[position] for position in positions]
            sub_results = self._shards[shard_index].lookup_batch(sub_batch)
            for position, result in zip(positions, sub_results):
                results[position] = result
        for (tup, _), result in zip(packets, results):
            self._finish_lookup(tup, result)
        return results

    def __len__(self) -> int:
        return len(self._home)

    def __iter__(self) -> Iterator[PCB]:
        for shard in self._shards:
            yield from shard

    def __contains__(self, tup: FourTuple) -> bool:
        return tup in self._home

    # -- per-shard observability ------------------------------------------

    def occupancy(self) -> Sequence[int]:
        """PCBs resident per shard."""
        return tuple(len(shard) for shard in self._shards)

    def shard_loads(self) -> Sequence[int]:
        """Lookups served per shard (includes cross-shard re-lookups)."""
        return tuple(shard.stats.lookups for shard in self._shards)

    def imbalance_factor(self) -> float:
        """Max/mean shard load; 1.0 is perfect balance (and no traffic)."""
        loads = self.shard_loads()
        total = sum(loads)
        if not total:
            return 1.0
        return max(loads) / (total / len(loads))

    def per_shard_p99(self) -> Sequence[int]:
        """p99 of each shard's search-length distribution."""
        return tuple(
            shard.stats.combined().percentile(0.99) for shard in self._shards
        )

    def aggregated_stats(self) -> DemuxStats:
        """All shard statistics merged into one ``DemuxStats``."""
        merged = DemuxStats()
        for shard in self._shards:
            merged.merge(shard.stats)
        return merged

    def reset_stats(self) -> None:
        """Zero the facade's and every shard's counters together."""
        self.stats.reset()
        for shard in self._shards:
            shard.stats.reset()
        self.flow_migrations = 0

    def cost_report(
        self, model: ContentionModel = DEFAULT_CONTENTION
    ) -> SMPCostReport:
        """Price the measured run under the SMP contention model."""
        return build_report(
            nshards=self.nshards,
            steering=self.steering.name,
            steer_ops=self.steering.cost_ops,
            migrations=self.flow_migrations,
            per_shard_lookups=[s.stats.lookups for s in self._shards],
            per_shard_occupancy=self.occupancy(),
            per_shard_mean_examined=[
                s.stats.mean_examined for s in self._shards
            ],
            per_shard_p99=self.per_shard_p99(),
            model=model,
        )

    def describe(self) -> str:
        return (
            f"{self.name} (S={self.nshards}, steer={self.steering.name},"
            f" {len(self)} PCBs, imbalance {self.imbalance_factor():.2f})"
        )
