"""Interrupt-coalescing batches that manufacture packet trains.

The paper's TPC/A analysis hinges on OLTP traffic being *train-free*:
with thousands of interleaved connections, consecutive packets almost
never share a PCB, so single-entry caches idle.  Interrupt coalescing
changes the arrival texture: the NIC delivers packets in batches, and
inside a batch the host may process them in any order.  Sorting each
batch by connection key groups a flow's packets back-to-back --
synthetic trains -- so the second and later packets of a flow in the
batch hit the BSD/Sequent single-entry caches instead of re-scanning
(Wu et al. exploit the same window to re-sort reordered packets).

:class:`BatchCoalescer` buffers ``(four_tuple, kind)`` arrivals, sorts
each full batch by the flow key (Python's stable sort keeps a flow's
packets in arrival order, so ACK-follows-DATA ordering survives), and
replays it into any :class:`~repro.core.base.DemuxAlgorithm`.
:func:`measure_coalescing` runs the same recorded stream unbatched and
batched against fresh structures and reports the before/after cost --
the paired comparison the sweep and benchmarks assert on.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.base import DemuxAlgorithm
from ..core.pcb import PCB
from ..core.stats import PacketKind
from ..packet.addresses import FourTuple

__all__ = ["BatchCoalescer", "CoalesceComparison", "measure_coalescing"]

#: One inbound packet, as recorded by :mod:`repro.workload.record`.
Packet = Tuple[FourTuple, PacketKind]


class BatchCoalescer:
    """Buffer arrivals into batches; sort each batch by flow key.

    ``batch_size=1`` (or ``sort=False``) degenerates to pass-through
    delivery in arrival order, which is the honest baseline: batching
    without reordering cannot change what a demux structure examines.
    """

    def __init__(
        self,
        algorithm: DemuxAlgorithm,
        batch_size: int = 32,
        *,
        sort: bool = True,
        spans: Optional[object] = None,
    ):
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.algorithm = algorithm
        self.batch_size = batch_size
        self.sort = sort
        #: Optional :class:`repro.obs.SpanCollector`.  Spans open at
        #: *flush* time: span (and packet-observer) order is delivery
        #: order, which is what the train-ness detector must see --
        #: coalescing exists precisely to change that order.
        self.spans = spans
        self._buffer: List[Packet] = []
        self._arrivals: List[float] = []
        #: Batches delivered so far.
        self.batches_flushed = 0
        #: Packets delivered so far.
        self.packets_delivered = 0
        #: Lookups that followed a same-flow packet within one batch --
        #: the synthetic-train opportunities sorting created.
        self.train_followers = 0

    def offer(self, tup: FourTuple, kind: PacketKind = PacketKind.DATA) -> None:
        """Accept one arrival; deliver the batch when it fills."""
        if self.spans is not None:
            self._arrivals.append(self.spans.now())
        self._buffer.append((tup, kind))
        if len(self._buffer) >= self.batch_size:
            self.flush()

    def flush(self) -> int:
        """Deliver whatever is buffered; returns packets delivered."""
        batch = self._buffer
        if not batch:
            return 0
        self._buffer = []
        spans = self.spans
        if spans is None:
            if self.sort and len(batch) > 1:
                batch.sort(key=lambda packet: packet[0].key_bits())
            previous = None
            for tup, _ in batch:
                if tup == previous:
                    self.train_followers += 1
                previous = tup
            # One batched call instead of a per-packet loop: the default
            # lookup_batch is exactly that loop, and fast/sharded
            # structures amortize it without changing any decision.
            self.algorithm.lookup_batch(batch)
        else:
            arrivals = self._arrivals
            self._arrivals = []
            if self.sort and len(batch) > 1:
                # Index sort: sorted() is stable with the same key as
                # list.sort above, so delivery order is identical to
                # the span-less path -- arrivals just ride along.
                order = sorted(
                    range(len(batch)),
                    key=lambda i: batch[i][0].key_bits(),
                )
                batch = [batch[i] for i in order]
                arrivals = [arrivals[i] for i in order]
            batch_id = self.batches_flushed
            previous = None
            for (tup, kind), arrived in zip(batch, arrivals):
                follower = tup == previous
                if follower:
                    self.train_followers += 1
                previous = tup
                spans.open_packet(tup, kind, owner="coalesce")
                spans.stage(
                    "coalesce",
                    batch=batch_id,
                    size=len(batch),
                    follower=follower,
                    enqueued_at=arrived,
                )
                # Per-packet delivery: the span context is per packet,
                # and with spans attached every lookup_batch falls back
                # to exactly this loop anyway.
                self.algorithm.lookup(tup, kind)
                spans.close_packet("coalesce")
        self.batches_flushed += 1
        self.packets_delivered += len(batch)
        return len(batch)

    def replay(self, packets: Iterable[Packet]) -> None:
        """Offer a whole recorded stream, flushing the final partial batch."""
        for tup, kind in packets:
            self.offer(tup, kind)
        self.flush()


@dataclasses.dataclass(frozen=True)
class CoalesceComparison:
    """Paired before/after cost of coalescing one packet stream."""

    algorithm: str
    batch_size: int
    packets: int
    unbatched_mean_examined: float
    batched_mean_examined: float
    unbatched_hit_rate: float
    batched_hit_rate: float
    train_followers: int

    @property
    def reduction(self) -> float:
        """Fractional drop in mean PCBs examined (positive = batching won)."""
        if not self.unbatched_mean_examined:
            return 0.0
        return 1.0 - self.batched_mean_examined / self.unbatched_mean_examined

    def as_dict(self) -> Dict[str, object]:
        return {
            "algorithm": self.algorithm,
            "batch_size": self.batch_size,
            "packets": self.packets,
            "unbatched_mean_examined": round(self.unbatched_mean_examined, 4),
            "batched_mean_examined": round(self.batched_mean_examined, 4),
            "unbatched_hit_rate": round(self.unbatched_hit_rate, 4),
            "batched_hit_rate": round(self.batched_hit_rate, 4),
            "train_followers": self.train_followers,
            "reduction": round(self.reduction, 4),
        }

    def summary(self) -> str:
        return (
            f"{self.algorithm} B={self.batch_size}:"
            f" {self.unbatched_mean_examined:.2f} ->"
            f" {self.batched_mean_examined:.2f} PCBs/pkt"
            f" ({self.reduction:+.1%}, {self.train_followers} train followers)"
        )


def _populate(algorithm: DemuxAlgorithm, tuples: Sequence[FourTuple]) -> None:
    for tup in tuples:
        algorithm.insert(PCB(tup))


def measure_coalescing(
    algorithm_factory: Callable[[], DemuxAlgorithm],
    tuples: Sequence[FourTuple],
    packets: Sequence[Packet],
    batch_size: int,
    *,
    sort: bool = True,
) -> CoalesceComparison:
    """Replay ``packets`` unbatched and batched; report both costs.

    Both arms get a fresh structure from ``algorithm_factory`` with the
    same ``tuples`` installed, so the comparison is paired: the only
    difference is delivery order inside each batch.
    """
    baseline = algorithm_factory()
    _populate(baseline, tuples)
    for tup, kind in packets:
        baseline.lookup(tup, kind)

    batched = algorithm_factory()
    _populate(batched, tuples)
    coalescer = BatchCoalescer(batched, batch_size, sort=sort)
    coalescer.replay(packets)

    return CoalesceComparison(
        algorithm=baseline.name,
        batch_size=batch_size,
        packets=len(packets),
        unbatched_mean_examined=baseline.stats.mean_examined,
        batched_mean_examined=batched.stats.mean_examined,
        unbatched_hit_rate=baseline.stats.hit_rate,
        batched_hit_rate=batched.stats.hit_rate,
        train_followers=coalescer.train_followers,
    )
