"""Process-parallel experiment runner with deterministic results.

Figure and matrix sweeps are embarrassingly parallel -- every cell is a
pure function of its parameters -- so they should fan out across cores.
What must *not* change with the worker count is the answer:

* **Seeding** -- each task derives its own seed from the master seed
  and its name via :func:`repro.sim.rng.derive_seed` (SHA-256, immune
  to PYTHONHASHSEED and process boundaries), so task ``k`` sees the
  same random stream whether it runs first, last, inline, or in a
  subprocess.
* **Ordering** -- results are returned in *submission* order, however
  the workers happen to finish.  ``run_tasks(tasks, jobs=1)`` and
  ``run_tasks(tasks, jobs=4)`` return identical lists, so artifacts
  serialized from them are byte-identical.
* **Failure** -- a task that raises (or a worker process that dies)
  surfaces as a :class:`ParallelTaskError` naming the task, instead of
  a hang or a bare traceback from the middle of a pool.

Task callables must be module-level functions and their arguments
picklable (the multiprocessing contract).  ``jobs=1`` runs inline --
same code path a worker would run, no pool, easier debugging.
"""

from __future__ import annotations

import dataclasses
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..sim.rng import derive_seed

__all__ = ["Task", "ParallelTaskError", "run_tasks", "task_seed"]


class ParallelTaskError(RuntimeError):
    """One task of a parallel run failed; carries the task's name."""

    def __init__(self, task_name: str, message: str):
        super().__init__(f"task {task_name!r} failed: {message}")
        self.task_name = task_name


@dataclasses.dataclass(frozen=True)
class Task:
    """One unit of work: a picklable function and its arguments."""

    name: str
    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Optional[Dict[str, Any]] = None

    def run(self) -> Any:
        return self.fn(*self.args, **(self.kwargs or {}))


def task_seed(master_seed: int, task_name: str) -> int:
    """The per-task seed every process derives identically."""
    return derive_seed(master_seed, f"task:{task_name}")


def run_tasks(
    tasks: Sequence[Task],
    jobs: int = 1,
    *,
    progress: Optional[Callable[[str], None]] = None,
) -> List[Any]:
    """Run every task; return results in submission order.

    ``jobs=1`` executes inline; ``jobs>1`` fans out over a
    :class:`~concurrent.futures.ProcessPoolExecutor`.  Either way the
    returned list is indexed like ``tasks``.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    names = [task.name for task in tasks]
    if len(set(names)) != len(names):
        raise ValueError("task names must be unique (they key seeds and errors)")

    def note(name: str) -> None:
        if progress:
            progress(name)

    if jobs == 1 or len(tasks) <= 1:
        results = []
        for task in tasks:
            try:
                results.append(task.run())
            except Exception as exc:
                raise ParallelTaskError(task.name, str(exc)) from exc
            note(task.name)
        return results

    results = [None] * len(tasks)
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        futures = [
            pool.submit(task.fn, *task.args, **(task.kwargs or {}))
            for task in tasks
        ]
        # Collect in submission order: determinism beats a marginal
        # latency win from as_completed, and the pool keeps every core
        # busy regardless of the order we *wait* in.
        for index, (task, future) in enumerate(zip(tasks, futures)):
            try:
                results[index] = future.result()
            except BrokenProcessPool as exc:
                pool.shutdown(wait=False, cancel_futures=True)
                raise ParallelTaskError(
                    task.name,
                    "worker process died before finishing (crash or OOM kill);"
                    " rerun with --jobs 1 to see the failure inline",
                ) from exc
            except Exception as exc:
                pool.shutdown(wait=False, cancel_futures=True)
                raise ParallelTaskError(task.name, str(exc)) from exc
            note(task.name)
    return results
