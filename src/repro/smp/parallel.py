"""Process-parallel experiment runner with deterministic results.

Figure and matrix sweeps are embarrassingly parallel -- every cell is a
pure function of its parameters -- so they should fan out across cores.
What must *not* change with the worker count is the answer:

* **Seeding** -- each task derives its own seed from the master seed
  and its name via :func:`repro.sim.rng.derive_seed` (SHA-256, immune
  to PYTHONHASHSEED and process boundaries), so task ``k`` sees the
  same random stream whether it runs first, last, inline, or in a
  subprocess.
* **Ordering** -- results are returned in *submission* order, however
  the workers happen to finish.  ``run_tasks(tasks, jobs=1)`` and
  ``run_tasks(tasks, jobs=4)`` return identical lists, so artifacts
  serialized from them are byte-identical.
* **Failure** -- a task that raises (or a worker process that dies)
  surfaces as a :class:`ParallelTaskError` naming the task, instead of
  a hang or a bare traceback from the middle of a pool.
* **Retry** -- a long sweep should not lose an hour of work to one
  OOM-killed worker.  ``retries=N`` re-executes failed tasks up to N
  extra times (rebuilding the pool when a worker death broke it, with
  optional exponential backoff between rounds) before surfacing the
  error.  A retried task re-runs with *the same* arguments -- its seed
  is a pure function of (master seed, task name), not of the attempt
  -- so a run that needed retries produces byte-identical artifacts to
  one that did not.  Retry counts land in a :class:`RetryLog` so
  artifacts can report how bumpy the road was
  (:func:`attempt_seed` exists for tasks that *want* per-attempt
  variation, e.g. probing a flaky scenario from a different angle).

Task callables must be module-level functions and their arguments
picklable (the multiprocessing contract).  ``jobs=1`` runs inline --
same code path a worker would run, no pool, easier debugging.
"""

from __future__ import annotations

import dataclasses
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..sim.rng import derive_seed

__all__ = [
    "Task",
    "ParallelTaskError",
    "RetryLog",
    "attempt_seed",
    "run_tasks",
    "task_seed",
]


class ParallelTaskError(RuntimeError):
    """One task of a parallel run failed; carries the task's name."""

    def __init__(self, task_name: str, message: str):
        super().__init__(f"task {task_name!r} failed: {message}")
        self.task_name = task_name


@dataclasses.dataclass(frozen=True)
class Task:
    """One unit of work: a picklable function and its arguments."""

    name: str
    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Optional[Dict[str, Any]] = None

    def run(self) -> Any:
        return self.fn(*self.args, **(self.kwargs or {}))


def task_seed(master_seed: int, task_name: str) -> int:
    """The per-task seed every process derives identically.

    Deliberately attempt-independent: a task that crashed and was
    retried re-runs the exact same experiment, so artifacts stay
    byte-identical whether or not retries happened.
    """
    return derive_seed(master_seed, f"task:{task_name}")


def attempt_seed(master_seed: int, task_name: str, attempt: int) -> int:
    """A deterministic seed for one (task, attempt) pair.

    Attempt 0 equals :func:`task_seed`, so callers that thread the
    attempt number through their task arguments reproduce the plain
    seed on the first try and get fresh -- but replayable -- streams
    on each retry.
    """
    if attempt < 0:
        raise ValueError(f"attempt must be >= 0, got {attempt}")
    if attempt == 0:
        return task_seed(master_seed, task_name)
    return derive_seed(master_seed, f"task:{task_name}:attempt{attempt}")


@dataclasses.dataclass
class RetryLog:
    """Where retries went during one :func:`run_tasks` call.

    ``by_task`` maps task name to *extra* attempts consumed (a task
    that succeeded first try does not appear).  Sweeps surface
    :attr:`total` in their artifacts so a result produced over a
    bumpy pool is distinguishable from a clean one.
    """

    by_task: Dict[str, int] = dataclasses.field(default_factory=dict)

    @property
    def total(self) -> int:
        return sum(self.by_task.values())

    def record(self, task_name: str) -> None:
        self.by_task[task_name] = self.by_task.get(task_name, 0) + 1

    def as_dict(self) -> Dict[str, Any]:
        return {"total": self.total, "by_task": dict(self.by_task)}


def _backoff_sleep(backoff: float, completed_rounds: int) -> None:
    if backoff > 0.0:
        time.sleep(backoff * (2.0 ** (completed_rounds - 1)))


def _probe() -> None:
    """No-op worker task used to check whether a pool is still alive."""


def _pool_is_broken(pool: ProcessPoolExecutor) -> bool:
    """Whether ``pool`` itself is broken (a worker process died).

    A task that *raises* ``BrokenProcessPool`` is indistinguishable,
    at ``future.result()``, from the pool delivering its own breakage
    -- but the two need different handling (the former is an ordinary
    task failure; the latter poisons every sibling future).  A broken
    executor refuses new submissions with ``BrokenProcessPool``
    synchronously, so submitting a no-op discriminates the cases
    without touching executor internals.
    """
    try:
        future = pool.submit(_probe)
    except (BrokenProcessPool, RuntimeError):
        # RuntimeError: the pool raced into shutdown; either way it
        # cannot run tasks any more.
        return True
    try:
        future.result()
    except BrokenProcessPool:
        return True
    return False


def run_tasks(
    tasks: Sequence[Task],
    jobs: int = 1,
    *,
    progress: Optional[Callable[[str], None]] = None,
    retries: int = 0,
    backoff: float = 0.0,
    retry_log: Optional[RetryLog] = None,
) -> List[Any]:
    """Run every task; return results in submission order.

    ``jobs=1`` executes inline; ``jobs>1`` fans out over a
    :class:`~concurrent.futures.ProcessPoolExecutor`.  Either way the
    returned list is indexed like ``tasks``.

    ``retries`` bounds how many *extra* attempts each failed task
    gets; ``backoff`` seconds (doubling per round) separate retry
    rounds.  A worker death (``BrokenProcessPool``) poisons every
    uncollected future in the pool, so the pool is rebuilt and only
    the tasks without results re-run.  When a task exhausts its
    attempts, :class:`ParallelTaskError` names it -- the earliest such
    task in submission order -- with the underlying failure chained.
    Pass ``retry_log`` to receive per-task retry counts.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    if backoff < 0.0:
        raise ValueError(f"backoff must be >= 0, got {backoff}")
    names = [task.name for task in tasks]
    if len(set(names)) != len(names):
        raise ValueError("task names must be unique (they key seeds and errors)")
    log = retry_log if retry_log is not None else RetryLog()

    def note(name: str) -> None:
        if progress:
            progress(name)

    if jobs == 1 or len(tasks) <= 1:
        results = []
        for task in tasks:
            for attempt in range(retries + 1):
                try:
                    results.append(task.run())
                    break
                except Exception as exc:
                    if attempt == retries:
                        raise ParallelTaskError(task.name, str(exc)) from exc
                    log.record(task.name)
                    _backoff_sleep(backoff, attempt + 1)
            note(task.name)
        return results

    results: List[Any] = [None] * len(tasks)
    #: index -> (exception or None, message) for the latest failure.
    failures: Dict[int, Tuple[Optional[BaseException], str]] = {}
    pending = list(range(len(tasks)))

    for round_number in range(retries + 1):
        if round_number:
            _backoff_sleep(backoff, round_number)
        failures.clear()
        # No ``with`` block: the context manager's exit calls
        # ``shutdown(wait=True)``, which joins worker processes -- on a
        # poisoned pool that blocks the retry rebuild behind dead or
        # wedged workers.  The only shutdown this loop ever issues is
        # the non-waiting one in the ``finally``.
        pool = ProcessPoolExecutor(max_workers=jobs)
        try:
            futures = {
                index: pool.submit(
                    tasks[index].fn,
                    *tasks[index].args,
                    **(tasks[index].kwargs or {}),
                )
                for index in pending
            }
            # Collect in submission order: determinism beats a marginal
            # latency win from as_completed, and the pool keeps every
            # core busy regardless of the order we *wait* in.  A broken
            # pool poisons the remaining futures; each is collected
            # individually so results that finished before the death
            # are kept and only true casualties re-run.
            for index in pending:
                try:
                    results[index] = futures[index].result()
                    note(tasks[index].name)
                except BrokenProcessPool as exc:
                    if _pool_is_broken(pool):
                        failures[index] = (
                            exc,
                            "worker process died before finishing (crash"
                            " or OOM kill); rerun with --jobs 1 to see"
                            " the failure inline",
                        )
                    else:
                        # The *task* raised BrokenProcessPool; the pool
                        # is fine and this is an ordinary task failure.
                        failures[index] = (exc, str(exc))
                except Exception as exc:
                    failures[index] = (exc, str(exc))
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        if not failures:
            return results
        pending = sorted(failures)
        if round_number < retries:
            for index in pending:
                log.record(tasks[index].name)

    first = pending[0]
    cause, message = failures[first]
    raise ParallelTaskError(tasks[first].name, message) from cause
