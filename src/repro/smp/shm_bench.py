"""Model-vs-measured benchmark for the shared-memory worker tier.

``bench-gate`` answers "did the code get slower"; this module answers a
question the contention model raises and only a wall clock can settle:
*does serving shards from worker processes buy what the model says it
should?*  :class:`~repro.smp.contention.ContentionModel` prices a
sharded lookup in memory operations and assumes shard service
parallelizes across CPUs while steering stays serial on the
dispatcher.  Here we calibrate the model's ops-to-seconds scale on the
in-process facade, derive the Amdahl-style prediction for ``w``
workers,

    predicted_seconds(w) = packets * sec_per_op
                           * (steer_ops + shard_ops / min(w, shards))

and replay the same recorded TPC/A stream through
``ShardedDemux(workers=w)`` to get the measured number.  The absolute
gap ``|predicted - measured|`` packets/sec is *reported, never gated*:
on a dispatcher-bound Python build the measured line is expected to
fall far below the model's idealized parallel service, and recording
that honestly is the result.

Decisions are not at stake here -- the shared-memory tier is
golden-trace verified byte-identical to the in-process facade by the
conformance suite -- so this file times the hot path and nothing else.
Entries land in ``BENCH_trajectory.json`` under ``"tier": "smp-shm"``
with algorithm keys prefixed ``shm:`` so they can never collide with
the regression gate's baselines.
"""

from __future__ import annotations

import dataclasses
import datetime
import json
import os
import platform
import time
from typing import Callable, Dict, List, Optional, Tuple

from ..core.pcb import PCB
from ..core.registry import make_algorithm
from ..workload.record import RecordedStream, record_tpca_stream
from .contention import ContentionModel, DEFAULT_CONTENTION

__all__ = [
    "ShmBenchConfig",
    "ShmBenchReport",
    "ShmMeasurement",
    "run_shm_bench",
    "QUICK_SHM_CONFIG",
]


@dataclasses.dataclass(frozen=True)
class ShmBenchConfig:
    """Parameters of one model-vs-measured run."""

    n_users: int = 300
    #: Simulated seconds of TPC/A traffic (sets the packet count).
    duration: float = 10.0
    seed: int = 7
    shards: int = 8
    #: Worker-process counts to measure against the model.
    workers: Tuple[int, ...] = (1, 2, 8)
    #: Inner (per-shard) structure; must carry a registry spec so the
    #: worker processes can bootstrap their own copies.
    inner: str = "fast-sequent:h=19"
    chunk: int = 256
    repeats: int = 3
    model: ContentionModel = DEFAULT_CONTENTION
    #: The headline target: aggregate packets/sec across all shards.
    #: Reported against, never gated on.
    target_pps: float = 1_000_000.0

    def __post_init__(self) -> None:
        if self.n_users <= 0:
            raise ValueError("n_users must be positive")
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.shards <= 0:
            raise ValueError("shards must be positive")
        if not self.workers:
            raise ValueError("workers must name at least one count")
        if any(count <= 0 for count in self.workers):
            raise ValueError("worker counts must be positive")
        if self.repeats < 1:
            raise ValueError("repeats must be >= 1")
        if self.chunk < 1:
            raise ValueError("chunk must be >= 1")

    def spec(self, workers: int = 0) -> str:
        base = f"sharded-{self.inner},shards={self.shards}"
        if workers:
            base += f",workers={workers}"
        return base


#: The CI smoke variant: short stream, one repeat, small pool.
QUICK_SHM_CONFIG = ShmBenchConfig(duration=2.0, repeats=1, workers=(1, 2))


@dataclasses.dataclass(frozen=True)
class ShmMeasurement:
    """Best-of-R wall clock for one worker count, plus the prediction."""

    workers: int
    packets: int
    best_seconds: float
    packets_per_sec: float
    mean_cost_ops: float
    predicted_pps: float

    @property
    def model_abs_error_pps(self) -> float:
        return abs(self.predicted_pps - self.packets_per_sec)

    def as_dict(self, spec: str, n_users: int) -> Dict[str, object]:
        return {
            "algorithm": f"shm:{spec}",
            "workers": self.workers,
            "n_users": n_users,
            "packets": self.packets,
            "best_seconds": round(self.best_seconds, 6),
            "packets_per_sec": round(self.packets_per_sec, 1),
            "mean_cost_ops": round(self.mean_cost_ops, 4),
            "predicted_pps": round(self.predicted_pps, 1),
            "model_abs_error_pps": round(self.model_abs_error_pps, 1),
        }


@dataclasses.dataclass
class ShmBenchReport:
    """Outcome of one run: the appended entry plus the rendered table."""

    entry: Dict[str, object]
    trajectory_path: str

    def render_text(self) -> str:
        config = self.entry["config"]
        lines = [
            f"smp-shm bench {self.entry['date']}"
            f" (N={config['n_users']}, shards={config['shards']},"
            f" seed {config['seed']}, duration {config['duration']}s)"
        ]
        baseline = self.entry["baseline"]
        lines.append(
            f"  in-process baseline: {baseline['packets_per_sec']:>12,.0f}"
            f" pkts/sec ({baseline['mean_cost_ops']:.2f} model ops/pkt)"
        )
        lines.append(
            f"  {'workers':>7} {'measured pps':>14} {'predicted pps':>14}"
            f" {'|model error|':>14}"
        )
        for result in self.entry["results"]:
            lines.append(
                f"  {result['workers']:>7}"
                f" {result['packets_per_sec']:>14,.0f}"
                f" {result['predicted_pps']:>14,.0f}"
                f" {result['model_abs_error_pps']:>14,.0f}"
            )
        target = self.entry["target_pps"]
        verdict = "met" if self.entry["target_met"] else "NOT met"
        lines.append(
            f"  aggregate target {target:,.0f} pkts/sec: {verdict}"
            f" (best measured"
            f" {self.entry['best_measured_pps']:,.0f})"
        )
        lines.append(f"  trajectory: {self.trajectory_path}")
        return "\n".join(lines)


def _replay_batched(
    spec: str,
    stream: RecordedStream,
    *,
    chunk: int,
    repeats: int,
) -> Tuple[float, object]:
    """Best-of-R batched replay of ``stream`` through ``spec``.

    The structure is rebuilt and repopulated per repeat, exactly like
    :func:`repro.fastpath.gate.measure_replay`.  Worker activation is
    lazy-on-first-lookup, so one single-packet warm-up lookup runs
    before the clock starts -- pool spin-up (fork plus shared-memory
    export) is a one-off cost, not throughput, and must not land on
    the first chunk's timing.  Returns the best wall-clock seconds and
    the last repeat's facade (caller prices and closes it).
    """
    packets = list(stream.packets)
    chunks = [
        packets[start:start + chunk]
        for start in range(0, len(packets), chunk)
    ]
    best = float("inf")
    algorithm = None
    for _ in range(repeats):
        if algorithm is not None:
            close = getattr(algorithm, "close", None)
            if close is not None:
                close()
        algorithm = make_algorithm(spec)
        for tup in stream.tuples:
            algorithm.insert(PCB(tup))
        if packets:
            algorithm.lookup_batch(packets[:1])
        lookup_batch = algorithm.lookup_batch
        start_time = time.perf_counter()
        for batch in chunks:
            lookup_batch(batch)
        best = min(best, time.perf_counter() - start_time)
    return best, algorithm


def run_shm_bench(
    config: ShmBenchConfig = ShmBenchConfig(),
    trajectory_path: str = "BENCH_trajectory.json",
    *,
    append: bool = True,
    progress: Optional[Callable[[str], None]] = None,
) -> ShmBenchReport:
    """Measure, predict, append the ``smp-shm`` entry, report.

    The entry is appended regardless of how far measured falls from
    predicted -- the gap *is* the experiment's result, and the
    trajectory is where results live.
    """
    say = progress if progress is not None else (lambda message: None)

    say(f"recording TPC/A stream N={config.n_users}")
    stream = record_tpca_stream(config.n_users, config.duration, config.seed)
    packets = len(stream.packets)

    # Calibrate the model's ops-to-seconds scale on the in-process
    # facade: same structure, same stream, no rings in the way.
    say(f"calibrating on {config.spec()}")
    baseline_best, baseline_algorithm = _replay_batched(
        config.spec(), stream, chunk=config.chunk, repeats=config.repeats
    )
    baseline_report = baseline_algorithm.cost_report(config.model)
    baseline_ops = baseline_report.mean_cost_ops
    baseline_pps = packets / baseline_best if baseline_best > 0 else 0.0
    sec_per_op = (
        baseline_best / (packets * baseline_ops)
        if packets and baseline_ops > 0
        else 0.0
    )

    results: List[ShmMeasurement] = []
    for workers in config.workers:
        spec = config.spec(workers)
        say(f"measuring {spec}")
        best, algorithm = _replay_batched(
            spec, stream, chunk=config.chunk, repeats=config.repeats
        )
        try:
            report = algorithm.cost_report(config.model)
        finally:
            algorithm.close()
        # The model's idealized split: steering stays serial on the
        # dispatcher, shard service (lock + examined + wait + migrate)
        # spreads across min(workers, shards) CPUs.
        serial_ops = report.steer_ops
        shard_ops = max(report.mean_cost_ops - serial_ops, 0.0)
        lanes = min(workers, config.shards)
        predicted_seconds = packets * sec_per_op * (
            serial_ops + shard_ops / lanes
        )
        predicted_pps = (
            packets / predicted_seconds if predicted_seconds > 0 else 0.0
        )
        results.append(
            ShmMeasurement(
                workers=workers,
                packets=packets,
                best_seconds=best,
                packets_per_sec=packets / best if best > 0 else 0.0,
                mean_cost_ops=report.mean_cost_ops,
                predicted_pps=predicted_pps,
            )
        )

    best_measured = max(
        (measurement.packets_per_sec for measurement in results),
        default=0.0,
    )
    entry: Dict[str, object] = {
        "date": datetime.date.today().isoformat(),
        "python": platform.python_version(),
        "tier": "smp-shm",
        "config": {
            "n_users": config.n_users,
            "duration": config.duration,
            "seed": config.seed,
            "shards": config.shards,
            "workers": list(config.workers),
            "inner": config.inner,
            "chunk": config.chunk,
            "repeats": config.repeats,
        },
        "baseline": {
            "algorithm": config.spec(),
            "packets": packets,
            "best_seconds": round(baseline_best, 6),
            "packets_per_sec": round(baseline_pps, 1),
            "mean_cost_ops": round(baseline_ops, 4),
            "sec_per_op": sec_per_op,
        },
        "results": [
            measurement.as_dict(config.spec(measurement.workers),
                                config.n_users)
            for measurement in results
        ],
        "target_pps": config.target_pps,
        "best_measured_pps": round(best_measured, 1),
        "target_met": best_measured >= config.target_pps,
    }

    if append:
        trajectory = _load_trajectory(trajectory_path)
        trajectory["entries"].append(entry)
        with open(trajectory_path, "w", encoding="utf-8") as handle:
            json.dump(trajectory, handle, indent=1)
            handle.write("\n")
    return ShmBenchReport(entry=entry, trajectory_path=trajectory_path)


def _load_trajectory(path: str) -> Dict[str, object]:
    if not os.path.exists(path):
        return {"entries": []}
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if isinstance(data, list):
        data = {"entries": data}
    data.setdefault("entries", [])
    return data
