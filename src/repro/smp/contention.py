"""Analytic lock/cache-line contention model for sharded demultiplexing.

McKenney & Dove wrote for Sequent's symmetric multiprocessors, where
the figure of merit -- PCBs examined -- is a surrogate for *memory
traffic*.  On an SMP the surrogate needs two more terms: the lock that
serializes access to a shared structure, and the cache-line transfers
that happen when a connection's PCB is touched by more than one CPU.
This module generalizes "PCBs examined" to "memory operations on an
SMP" with an explicit, tunable model:

    per-packet ops  =  steer + lock + examined + wait + migrate

* **steer** -- the steering function's own cost
  (:attr:`~repro.smp.steering.SteeringFunction.cost_ops`).
* **lock** -- :attr:`ContentionModel.lock_ops`: the uncontended
  acquire/release of the shard's lock (two interlocked operations on
  one cache line).
* **examined** -- the paper's count, measured on the shard's
  structure.
* **wait** -- queueing/contention delay.  Each shard is modelled as an
  M/M/1 server: if the system-wide offered load is a fraction ``u`` of
  aggregate capacity and shard ``i`` receives a fraction ``f_i`` of
  the packets, the shard's utilization is ``rho_i = u * S * f_i`` (a
  perfectly balanced shard sits exactly at ``u``), and the expected
  wait, expressed in the same memory-op units as the service itself,
  is ``rho_i / (1 - rho_i)`` service times.  This is how imbalance
  becomes cost: a hot shard's ``rho`` climbs toward 1 and its queue --
  Sequent's lock convoy -- dominates.
* **migrate** -- :attr:`ContentionModel.migration_ops` per flow
  migration: when steering sends a flow's packet to a different shard
  than the one holding its PCB, the PCB's cache lines (and the
  structure bookkeeping around them) must transfer between CPUs.
  Flow-stable steering never pays it; round-robin pays it almost every
  packet.

The model is deliberately coarse -- it prices *relative* choices
(steering policies, shard counts, batch sizes) in one unit, it does not
predict nanoseconds.  Pair it with :mod:`repro.core.costmodel` to turn
memory operations into time estimates.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

__all__ = [
    "ContentionModel",
    "ShardCost",
    "SMPCostReport",
    "DEFAULT_CONTENTION",
]


@dataclasses.dataclass(frozen=True)
class ContentionModel:
    """Tunable constants of the SMP memory-operation model."""

    #: Memory ops to acquire + release an uncontended shard lock.
    lock_ops: float = 2.0
    #: Memory ops charged when a flow's PCB must move between shards
    #: (cache-line transfers plus the remove/re-insert bookkeeping).
    migration_ops: float = 12.0
    #: System-wide offered load as a fraction of aggregate capacity;
    #: a perfectly balanced shard runs at exactly this utilization.
    utilization: float = 0.6
    #: Cap on any single shard's utilization, keeping the M/M/1 wait
    #: finite when steering is badly skewed.
    max_utilization: float = 0.98

    def __post_init__(self) -> None:
        if self.lock_ops < 0:
            raise ValueError("lock_ops must be non-negative")
        if self.migration_ops < 0:
            raise ValueError("migration_ops must be non-negative")
        if not 0.0 <= self.utilization < 1.0:
            raise ValueError("utilization must be in [0, 1)")
        if not self.utilization <= self.max_utilization < 1.0:
            raise ValueError("max_utilization must be in [utilization, 1)")

    def shard_utilization(self, load_fraction: float, nshards: int) -> float:
        """``rho_i`` for a shard receiving ``load_fraction`` of packets."""
        if load_fraction < 0:
            raise ValueError("load_fraction must be non-negative")
        if nshards <= 0:
            raise ValueError("nshards must be positive")
        return min(self.utilization * nshards * load_fraction, self.max_utilization)

    def wait_ops(self, rho: float, service_ops: float) -> float:
        """Expected M/M/1 queueing delay, in memory-op units."""
        if not 0.0 <= rho < 1.0:
            raise ValueError(f"utilization must be in [0, 1), got {rho}")
        return (rho / (1.0 - rho)) * service_ops


#: The defaults every sweep and benchmark uses unless told otherwise.
DEFAULT_CONTENTION = ContentionModel()


@dataclasses.dataclass(frozen=True)
class ShardCost:
    """One shard's contribution to the SMP cost breakdown."""

    shard: int
    lookups: int
    load_fraction: float
    occupancy: int
    mean_examined: float
    p99_examined: int
    utilization: float
    service_ops: float
    wait_ops: float

    @property
    def per_packet_ops(self) -> float:
        return self.service_ops + self.wait_ops

    def as_dict(self) -> Dict[str, object]:
        return {
            "shard": self.shard,
            "lookups": self.lookups,
            "load_fraction": round(self.load_fraction, 6),
            "occupancy": self.occupancy,
            "mean_examined": round(self.mean_examined, 4),
            "p99_examined": self.p99_examined,
            "utilization": round(self.utilization, 4),
            "service_ops": round(self.service_ops, 4),
            "wait_ops": round(self.wait_ops, 4),
        }


@dataclasses.dataclass(frozen=True)
class SMPCostReport:
    """The model applied to one measured run of a (sharded) structure.

    ``mean_cost_ops`` is the headline: expected memory operations per
    packet, the SMP generalization of mean PCBs examined.
    """

    nshards: int
    steering: str
    steer_ops: float
    lookups: int
    migrations: int
    mean_examined: float
    imbalance_factor: float
    shards: Sequence[ShardCost]
    model: ContentionModel

    @property
    def mean_cost_ops(self) -> float:
        """Load-weighted expected memory operations per packet."""
        if not self.lookups:
            return 0.0
        per_shard = sum(
            shard.lookups * (self.steer_ops + shard.per_packet_ops)
            for shard in self.shards
        )
        migration = self.migrations * self.model.migration_ops
        return (per_shard + migration) / self.lookups

    @property
    def migration_rate(self) -> float:
        """Flow migrations per packet (0 for flow-stable steering)."""
        return self.migrations / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "nshards": self.nshards,
            "steering": self.steering,
            "steer_ops": self.steer_ops,
            "lookups": self.lookups,
            "migrations": self.migrations,
            "migration_rate": round(self.migration_rate, 6),
            "mean_examined": round(self.mean_examined, 4),
            "imbalance_factor": round(self.imbalance_factor, 4),
            "mean_cost_ops": round(self.mean_cost_ops, 4),
            "utilization": self.model.utilization,
            "shards": [shard.as_dict() for shard in self.shards],
        }

    def summary(self) -> str:
        return (
            f"S={self.nshards} steer={self.steering}:"
            f" {self.mean_cost_ops:.2f} ops/pkt"
            f" (examined {self.mean_examined:.2f},"
            f" imbalance {self.imbalance_factor:.2f},"
            f" migrations {self.migration_rate:.1%})"
        )


def build_report(
    *,
    nshards: int,
    steering: str,
    steer_ops: float,
    migrations: int,
    per_shard_lookups: Sequence[int],
    per_shard_occupancy: Sequence[int],
    per_shard_mean_examined: Sequence[float],
    per_shard_p99: Sequence[int],
    model: ContentionModel = DEFAULT_CONTENTION,
    per_shard_steered: Optional[Sequence[int]] = None,
) -> SMPCostReport:
    """Assemble an :class:`SMPCostReport` from per-shard measurements.

    Kept free of any demux-structure type so an unsharded baseline can
    be priced through the same formula (one shard, no steering cost):
    the comparison "sharded vs. not" is then internally consistent.

    ``per_shard_lookups`` is every lookup a shard *served* (including
    migration second hops) and prices service/queueing; when
    ``per_shard_steered`` is given it carries the loads the steering
    function actually dealt -- excluding migration re-lookups -- and
    the imbalance factor is computed from it, so a migration-heavy
    run does not report a steering skew the steering never produced.
    """
    total = sum(per_shard_lookups)
    shards: List[ShardCost] = []
    for index, lookups in enumerate(per_shard_lookups):
        fraction = lookups / total if total else 0.0
        service = model.lock_ops + per_shard_mean_examined[index]
        rho = model.shard_utilization(fraction, nshards) if lookups else 0.0
        shards.append(
            ShardCost(
                shard=index,
                lookups=lookups,
                load_fraction=fraction,
                occupancy=per_shard_occupancy[index],
                mean_examined=per_shard_mean_examined[index],
                p99_examined=per_shard_p99[index],
                utilization=rho,
                service_ops=service,
                wait_ops=model.wait_ops(rho, service),
            )
        )
    loads = (
        list(per_shard_steered)
        if per_shard_steered is not None
        else [s.lookups for s in shards]
    )
    steered_total = sum(loads)
    mean_load = steered_total / len(loads) if loads else 0.0
    imbalance = max(loads) / mean_load if steered_total else 1.0
    mean_examined = (
        sum(s.lookups * s.mean_examined for s in shards) / total if total else 0.0
    )
    return SMPCostReport(
        nshards=nshards,
        steering=steering,
        steer_ops=steer_ops,
        lookups=total,
        migrations=migrations,
        mean_examined=mean_examined,
        imbalance_factor=imbalance,
        shards=tuple(shards),
        model=model,
    )
