"""Packet steering: which shard serves which packet.

Receive-side scaling (RSS) on a modern NIC hashes each packet's flow
key to one of N per-CPU queues; Sequent's SMPs faced the same decision
in software.  A steering function is the policy seam: given a packet's
four-tuple and the shard count, it names a shard.  Three policies span
the design space the literature argues about:

* :class:`HashSteering` -- RSS proper: a deterministic hash of the
  96-bit key.  Flow-stable (every packet of a connection lands on the
  same shard), so PCB cache lines never migrate between CPUs; balance
  is as good as the hash.
* :class:`RoundRobinSteering` -- perfect packet-level balance, zero
  flow stability.  Every packet of a flow can land on a different
  shard, so the PCB's cache lines bounce between CPUs -- the
  pathological case the contention model (:mod:`repro.smp.contention`)
  prices as a migration per steering miss.
* :class:`StickyFlowSteering` -- a flow director: the first packet of
  a flow is pinned to the currently least-loaded shard and remembered.
  Flow-stable *and* balanced, at the price of a per-flow table lookup
  on the hot path (Le Scouarnec's Cuckoo++ line of work is about
  making exactly this table fast).

Every policy charges a per-packet ``cost_ops`` surcharge -- memory
operations spent deciding, in the same units as "PCBs examined" -- so
the SMP cost model can compare them honestly: hashing reads the header
once (1 op), round-robin reads a counter (0 ops: it stays in a
register), the flow director probes its table (2 ops).
"""

from __future__ import annotations

import abc
from typing import Dict, List

from ..hashing.functions import HashFunction, default_hash, get_hash_function
from ..packet.addresses import FourTuple

__all__ = [
    "SteeringFunction",
    "HashSteering",
    "RoundRobinSteering",
    "StickyFlowSteering",
    "STEERINGS",
    "available_steerings",
    "make_steering",
]


class SteeringFunction(abc.ABC):
    """Maps a four-tuple to a shard index in ``range(nshards)``."""

    #: Short machine-readable name (registry key, sweep axis label).
    name: str = "abstract"
    #: Memory operations charged per steering decision.
    cost_ops: int = 0
    #: Whether every packet of a flow is guaranteed the same shard.
    flow_stable: bool = True

    @abc.abstractmethod
    def shard_of(self, tup: FourTuple, nshards: int) -> int:
        """The shard serving ``tup``'s next packet."""

    def reset(self) -> None:
        """Forget any internal state (counters, flow tables)."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


def _check_nshards(nshards: int) -> None:
    if nshards <= 0:
        raise ValueError(f"nshards must be positive, got {nshards}")


class HashSteering(SteeringFunction):
    """RSS-style steering: hash the 96-bit key, reduce mod N.

    Deterministic per four-tuple across processes and runs (the hash
    functions in :mod:`repro.hashing` are unseeded), which is what
    makes sharded sweeps reproducible under ``--jobs K``.
    """

    name = "hash"
    cost_ops = 1
    flow_stable = True

    def __init__(self, hash_function: HashFunction = default_hash):
        self._hash = hash_function

    def shard_of(self, tup: FourTuple, nshards: int) -> int:
        _check_nshards(nshards)
        return self._hash(tup, nshards)


class RoundRobinSteering(SteeringFunction):
    """Deal packets to shards in rotation, ignoring the flow key.

    Packet-level balance is perfect by construction; flow stability is
    zero, so on an SMP every steering "miss" drags the PCB's cache
    lines to a new CPU.  Exists to quantify that trade, not to win.
    """

    name = "rr"
    cost_ops = 0
    flow_stable = False

    def __init__(self) -> None:
        self._next = 0

    def shard_of(self, tup: FourTuple, nshards: int) -> int:
        _check_nshards(nshards)
        shard = self._next % nshards
        self._next = (self._next + 1) % nshards
        return shard

    def reset(self) -> None:
        self._next = 0


class StickyFlowSteering(SteeringFunction):
    """Flow director: pin each new flow to the least-loaded shard.

    Load is counted in *assigned flows*; ties break toward the lowest
    shard index, so assignment depends only on the order in which new
    flows first appear -- deterministic for a deterministic packet
    stream, in any process.
    """

    name = "sticky"
    cost_ops = 2
    flow_stable = True

    def __init__(self) -> None:
        self._flows: Dict[FourTuple, int] = {}
        self._assigned: List[int] = []

    def shard_of(self, tup: FourTuple, nshards: int) -> int:
        _check_nshards(nshards)
        shard = self._flows.get(tup)
        if shard is not None and shard < nshards:
            return shard
        if len(self._assigned) < nshards:
            self._assigned.extend(
                0 for _ in range(nshards - len(self._assigned))
            )
        shard = min(range(nshards), key=lambda i: (self._assigned[i], i))
        self._flows[tup] = shard
        self._assigned[shard] += 1
        return shard

    def forget(self, tup: FourTuple) -> None:
        """Drop a flow's pin (connection teardown) and its load credit."""
        shard = self._flows.pop(tup, None)
        if shard is not None and shard < len(self._assigned):
            self._assigned[shard] -= 1

    def pin(self, tup: FourTuple, shard: int) -> None:
        """Force a flow's assignment (supervised recovery re-steer).

        When a shard dies with no usable checkpoint, the supervisor
        re-homes its orphaned flows onto survivors; the pin makes the
        director honour that placement for the flow's remaining
        packets.  Load accounting moves with the pin.
        """
        if shard < 0:
            raise ValueError(f"shard must be non-negative, got {shard}")
        self.forget(tup)
        if len(self._assigned) <= shard:
            self._assigned.extend(
                0 for _ in range(shard + 1 - len(self._assigned))
            )
        self._flows[tup] = shard
        self._assigned[shard] += 1

    def assigned_loads(self) -> List[int]:
        """Flows currently pinned per shard (for placement decisions)."""
        return list(self._assigned)

    def reset(self) -> None:
        self._flows.clear()
        self._assigned = []


#: Registry used by the sweep CLI and ``sharded-*`` algorithm specs.
STEERINGS = {
    "hash": HashSteering,
    "rr": RoundRobinSteering,
    "sticky": StickyFlowSteering,
}


def available_steerings():
    """Registered steering names, sorted."""
    return sorted(STEERINGS)


def make_steering(spec: str) -> SteeringFunction:
    """Build a steering function from a spec string.

    ``"hash"``, ``"rr"``, ``"sticky"``, or ``"hash=crc16"`` to pick a
    specific hash function for hash steering.
    """
    name, _, param = spec.partition("=")
    name = name.strip().lower()
    if name not in STEERINGS:
        known = ", ".join(available_steerings())
        raise ValueError(f"unknown steering {name!r}; known: {known}")
    if param:
        if name != "hash":
            raise ValueError(f"steering {name!r} takes no parameter")
        return HashSteering(get_hash_function(param.strip()))
    return STEERINGS[name]()
