"""Shard-level observability, published through :mod:`repro.obs`.

One call exports everything an operator of a sharded demultiplexer
watches: how full each shard is (occupancy gauge plus an exact
occupancy histogram), how evenly traffic spreads (per-shard lookup
loads and the imbalance factor, max/mean), how bad the tail is
(per-shard p99 PCBs examined), and how often steering forced a PCB to
migrate between shards.  Metrics follow the registry's labelling
idiom -- one metric name, a ``shard`` label per sample -- so the
Prometheus rendering groups naturally.
"""

from __future__ import annotations

from typing import Optional

from ..obs.metrics import MetricsRegistry
from .sharded import ShardedDemux

__all__ = ["publish_sharded"]


def publish_sharded(
    registry: MetricsRegistry,
    sharded: ShardedDemux,
    *,
    algorithm: Optional[str] = None,
) -> None:
    """Publish one snapshot of a :class:`ShardedDemux` into ``registry``.

    Gauges are set (last snapshot wins), so repeated publishing is safe
    for both one-shot exports and periodic scrapes.
    """
    label = algorithm or sharded.name

    occupancy = registry.gauge(
        "smp_shard_occupancy", "PCBs resident per shard"
    )
    occupancy_histogram = registry.histogram(
        "smp_shard_occupancy_distribution",
        "distribution of per-shard PCB occupancy",
    )
    loads = registry.gauge(
        "smp_shard_lookups", "lookups steered to each shard"
    )
    migration_loads = registry.gauge(
        "smp_shard_migration_relookups",
        "migration second hops served per shard",
    )
    p99 = registry.gauge(
        "smp_shard_p99_examined", "p99 PCBs examined per shard"
    )
    for index, count in enumerate(sharded.occupancy()):
        occupancy.set(count, algorithm=label, shard=index)
        occupancy_histogram.observe(count, algorithm=label)
    for index, load in enumerate(sharded.shard_loads()):
        loads.set(load, algorithm=label, shard=index)
    for index, load in enumerate(sharded.migration_loads()):
        migration_loads.set(load, algorithm=label, shard=index)
    for index, value in enumerate(sharded.per_shard_p99()):
        p99.set(value, algorithm=label, shard=index)

    registry.gauge(
        "smp_imbalance_factor", "max/mean shard load (1.0 = perfect balance)"
    ).set(sharded.imbalance_factor(), algorithm=label)
    registry.gauge(
        "smp_flow_migrations", "PCB moves forced by non-flow-stable steering"
    ).set(sharded.flow_migrations, algorithm=label)
    registry.gauge(
        "smp_shards", "configured shard count"
    ).set(sharded.nshards, algorithm=label)
