"""Sharded (SMP / receive-side-scaling) demultiplexing.

The paper measures single structures; this package asks what happens
when a symmetric multiprocessor runs one structure per CPU:

* :mod:`~repro.smp.steering` -- RSS-style steering functions (4-tuple
  hash, round-robin, sticky flow director) that pick a shard per
  packet.
* :mod:`~repro.smp.sharded` -- :class:`ShardedDemux`, N instances of
  any registered algorithm behind one ``DemuxAlgorithm`` facade, with
  flow migration for non-flow-stable steering.
* :mod:`~repro.smp.contention` -- the analytic lock/queueing/migration
  cost model that generalizes "PCBs examined" to "memory operations on
  an SMP".
* :mod:`~repro.smp.coalesce` -- interrupt-coalescing batches, sorted
  by connection key to manufacture the packet trains OLTP traffic
  lacks.
* :mod:`~repro.smp.parallel` -- the deterministic process-parallel
  task runner every sweep fans out over.
* :mod:`~repro.smp.shm` -- shared-memory shard workers: per-shard
  processes serving packets from the flat fast-path arrays behind
  bounded SPSC rings, with the steering layer as dispatcher
  (``ShardedDemux(workers=N)`` / the ``workers=`` spec option).
* :mod:`~repro.smp.shm_bench` -- the ``bench-gate --shm`` tier:
  wall-clock aggregate packets/sec of the worker pool against the
  :class:`ContentionModel` prediction (model-vs-measured, reported,
  never gated).
* :mod:`~repro.smp.sweep` -- the ``smp-sweep`` experiment (shard count
  x steering x batch size) and its artifacts.
* :mod:`~repro.smp.metrics` -- shard-level observability published
  through :mod:`repro.obs`.
"""

from .coalesce import BatchCoalescer, CoalesceComparison, measure_coalescing
from .contention import (
    ContentionModel,
    DEFAULT_CONTENTION,
    ShardCost,
    SMPCostReport,
    build_report,
)
from .metrics import publish_sharded
from .parallel import (
    ParallelTaskError,
    RetryLog,
    Task,
    attempt_seed,
    run_tasks,
    task_seed,
)
from .sharded import ShardedDemux
from .shm import ShardMirror, ShmWorkerError, ShmWorkerPool, SpscRing
from .shm_bench import (
    QUICK_SHM_CONFIG,
    ShmBenchConfig,
    ShmBenchReport,
    ShmMeasurement,
    run_shm_bench,
)
from .steering import (
    HashSteering,
    RoundRobinSteering,
    SteeringFunction,
    StickyFlowSteering,
    available_steerings,
    make_steering,
)
from .sweep import (
    SMPSweepConfig,
    SweepResult,
    run_smp_sweep,
    write_sweep_artifacts,
)

__all__ = [
    "BatchCoalescer",
    "CoalesceComparison",
    "ContentionModel",
    "DEFAULT_CONTENTION",
    "HashSteering",
    "ParallelTaskError",
    "QUICK_SHM_CONFIG",
    "RetryLog",
    "RoundRobinSteering",
    "SMPCostReport",
    "SMPSweepConfig",
    "ShardCost",
    "ShardMirror",
    "ShardedDemux",
    "ShmBenchConfig",
    "ShmBenchReport",
    "ShmMeasurement",
    "ShmWorkerError",
    "ShmWorkerPool",
    "SpscRing",
    "SteeringFunction",
    "StickyFlowSteering",
    "SweepResult",
    "Task",
    "attempt_seed",
    "available_steerings",
    "build_report",
    "make_steering",
    "measure_coalescing",
    "publish_sharded",
    "run_shm_bench",
    "run_smp_sweep",
    "run_tasks",
    "task_seed",
    "write_sweep_artifacts",
]
