"""Shared-memory shard workers: true process-parallel demultiplexing.

:mod:`repro.smp.sharded` prices SMP contention analytically;
everything still runs on one CPU.  This module makes the shards
actually concurrent: each worker *process* owns one or more shard
structures and serves packets out of the flat fast-path arrays --
:class:`~repro.fastpath.tables.SlotTable` key mirrors and the cuckoo
slot layout -- exported into :mod:`multiprocessing.shared_memory`.
The dispatcher process keeps the roles a receive-side-scaling NIC
keeps in hardware: it runs the steering function, owns the
flow-director table and the PCB directory, and pushes steering
decisions to workers over one bounded SPSC ring pair per worker.

Wire protocol (fixed-size slots, bulk-packed so a whole batch costs
one ``struct`` call per ring segment):

* request slot ``<QQQQ``: ``(meta, key_lo48, key_hi48, seq)`` where
  ``meta`` packs op, packet kind, batch flags, and the worker-local
  shard slot;
* response slot ``<QQQ``: ``(examined, flags, seq)`` with found/
  cache-hit bits -- exactly the decision triple the conformance
  machinery records, which is what makes golden-trace verification of
  the shared-memory mode possible.

The trailing ``seq`` word in every slot is ring-internal (see
:class:`SpscRing`): a slot is valid only when its sequence stamp
equals ``1 + its absolute ring index``.  Consumption is driven by the
stamps and process-local cursors, never by raw reads of the shared
cursor words, so a transient corrupt read of the header (observed in
the wild as spurious zeros on hot shared pages under some
hypervisors) degrades to a brief stall instead of silently
re-delivering or dropping records.

Determinism contract: the dispatcher steers in input order (identical
to the single-process facade), each shard sees exactly the op
subsequence it would have seen in-process, and rings are FIFO -- so
every decision, per-call or batched, is byte-identical to
``ShardedDemux`` with no workers, for any worker count.  Control
traffic (bootstrap, snapshot/restore for supervised recovery, stats,
shutdown) rides a pipe per worker, off the hot path.
"""

from __future__ import annotations

import multiprocessing
import os
import struct
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..core.base import DemuxAlgorithm, LookupResult
from ..core.pcb import PCB
from ..core.stats import DemuxStats, LookupRecord, PacketKind
from ..packet.addresses import FourTuple

__all__ = ["ShardMirror", "ShmWorkerError", "ShmWorkerPool", "SpscRing"]

_U64 = struct.Struct("<Q")
#: Request slot: meta word, key low half, key high half, sequence stamp.
REQUEST_SLOT = struct.Struct("<QQQQ")
#: Response slot: examined count, decision flags, sequence stamp.
RESPONSE_SLOT = struct.Struct("<QQQ")

_HALF_BITS = 48
_HALF_MASK = (1 << _HALF_BITS) - 1

# meta word layout: op | kind << 4 | flags << 8 | shard slot << 16
OP_LOOKUP = 1
OP_INSERT = 2
OP_REMOVE = 3
OP_NOTE_SEND = 4
FLAG_BATCHED = 1
FLAG_FLUSH = 2

RESP_FOUND = 1
RESP_CACHE_HIT = 2

#: Ring capacity in slots (power of two not required; the cursors are
#: free-running uint64 counters).
DEFAULT_RING_SLOTS = 4096


class ShmWorkerError(RuntimeError):
    """A shard worker died or timed out; carries the worker index."""

    def __init__(self, worker: int, message: str):
        super().__init__(f"shm worker {worker}: {message}")
        self.worker = worker


def _meta(op: int, kind: int = 0, flags: int = 0, slot: int = 0) -> int:
    return op | (kind << 4) | (flags << 8) | (slot << 16)


class SpscRing:
    """Bounded single-producer single-consumer ring over shared bytes.

    ``buffer`` is any writable buffer (a ``SharedMemory.buf``); the
    first 16 bytes hold two free-running uint64 cursors -- ``head``
    (consumer) at offset 0 and ``tail`` (producer) at offset 8 --
    followed by ``capacity`` fixed-size slots whose *last* uint64 is a
    sequence stamp written by the producer after the payload words.

    Correctness does not rest on the shared cursor words.  Each side
    keeps its own cursor in process-local memory; slot validity is
    decided by the sequence stamp (``seq == 1 + absolute index``), and
    the shared words are only *hints* -- the consumer publishes
    ``head`` so the producer can compute free space, the producer
    publishes ``tail`` for introspection.  Hints are folded in
    monotonically and clamped to the protocol invariants (``head <=
    tail``, ``tail - head <= capacity``), so a corrupt read -- a torn
    store on an exotic platform, or the transient zero reads of hot
    shared pages we have observed under virtualized memory reclaim --
    can only make a side briefly *conservative* (push returns 0, pop
    returns nothing), never deliver a record twice or skip one.  The
    failure mode for a *persistently* lost page is a stall that
    surfaces as a pool timeout: fail-stop, not silent corruption.

    Bulk push/pop still pack a whole contiguous run of slots with one
    ``struct`` call (two on wrap-around).  Payload records exclude the
    stamp: a ``<QQQQ`` slot carries 3-tuple records.
    """

    HEADER = 16

    def __init__(self, buffer, slot: struct.Struct, capacity: int):
        self._buf = buffer
        self._slot = slot
        self._capacity = capacity
        self._width = len(slot.unpack_from(bytes(slot.size), 0))
        if self._width < 2:
            raise ValueError("slot must carry at least payload + stamp")
        #: Process-local cursors: authoritative for the role this
        #: process plays (producer owns tail, consumer owns head).
        self._local_head = 0
        self._local_tail = 0
        #: Producer's clamped-monotonic view of the consumer's head.
        self._head_hint = 0

    @staticmethod
    def bytes_needed(slot: struct.Struct, capacity: int) -> int:
        return SpscRing.HEADER + slot.size * capacity

    # Cursor hint accessors: plain loads/stores through struct.
    def _head(self) -> int:
        return _U64.unpack_from(self._buf, 0)[0]

    def _tail(self) -> int:
        return _U64.unpack_from(self._buf, 8)[0]

    def _refresh_head_hint(self) -> int:
        """Fold the consumer's published head into the local view.

        Monotonic and clamped to ``<= local tail``: the consumer can
        never be ahead of what this producer wrote, so any reading
        outside that range is corruption and is ignored.
        """
        seen = self._head()
        if self._head_hint < seen <= self._local_tail:
            self._head_hint = seen
        return self._head_hint

    def free(self) -> int:
        """Producer-side free slots (authoritative for the producer)."""
        return self._capacity - (self._local_tail - self._refresh_head_hint())

    def available(self) -> int:
        """Consumer-side ready estimate (stamp-verified on pop)."""
        tail = self._tail()
        if tail < self._local_head:
            return 0
        return min(tail - self._local_head, self._capacity)

    def push(self, records: Sequence[Tuple[int, ...]]) -> int:
        """Push up to ``len(records)``; returns how many were written.

        Never blocks: the caller decides how to wait (and what else to
        service -- e.g. draining its own inbound ring) when full.
        """
        tail = self._local_tail
        space = self._capacity - (tail - self._refresh_head_hint())
        count = min(len(records), space)
        if count <= 0:
            return 0
        payload = self._width - 1
        written = 0
        while written < count:
            index = (tail + written) % self._capacity
            run = min(count - written, self._capacity - index)
            flat: List[int] = []
            for offset, record in enumerate(
                records[written:written + run]
            ):
                if len(record) != payload:
                    raise ValueError(
                        f"record has {len(record)} fields, slot carries"
                        f" {payload}"
                    )
                flat.extend(record)
                # Stamp: the payload words precede it in memory, so a
                # reader that sees the stamp sees the payload.
                flat.append(tail + written + offset + 1)
            struct.pack_into(
                f"<{self._width * run}Q",
                self._buf,
                self.HEADER + index * self._slot.size,
                *flat,
            )
            written += run
        self._local_tail = tail + count
        _U64.pack_into(self._buf, 8, self._local_tail)
        return count

    def pop(self, limit: int) -> List[Tuple[int, ...]]:
        """Pop up to ``limit`` records (possibly empty; never blocks).

        Consumption is stamp-driven: a slot is taken only if its
        sequence word matches the local head exactly, so stale or
        zeroed slots (and any bogus tail reading) terminate the scan
        instead of yielding phantom records.
        """
        head = self._local_head
        count = min(limit, self.available())
        if count <= 0:
            # The tail hint may lag (or read as garbage) even though
            # records are ready; probe one stamp directly so a lost
            # hint degrades to polling, not a stall.
            if limit <= 0 or not self._stamp_valid(head):
                return []
            count = 1
        records: List[Tuple[int, ...]] = []
        consumed = 0
        width = self._width
        while consumed < count:
            index = (head + consumed) % self._capacity
            run = min(count - consumed, self._capacity - index)
            flat = struct.unpack_from(
                f"<{width * run}Q",
                self._buf,
                self.HEADER + index * self._slot.size,
            )
            good = 0
            for position in range(run):
                base = position * width
                if flat[base + width - 1] != head + consumed + position + 1:
                    break
                good += 1
            records.extend(
                flat[position:position + width - 1]
                for position in range(0, width * good, width)
            )
            consumed += good
            if good < run:
                break
        if consumed:
            self._local_head = head + consumed
            _U64.pack_into(self._buf, 0, self._local_head)
        return records

    def _stamp_valid(self, head: int) -> bool:
        index = head % self._capacity
        offset = (
            self.HEADER + index * self._slot.size + (self._width - 1) * 8
        )
        return _U64.unpack_from(self._buf, offset)[0] == head + 1


def _sleep_briefly(spins: int) -> None:
    """Escalating wait: yield first, then park for tens of microseconds."""
    if spins < 64:
        time.sleep(0)
    else:
        time.sleep(0.00005)


# -- shard state handover ----------------------------------------------

def _export_shards(
    shards: Sequence[DemuxAlgorithm], specs: Sequence[str]
) -> Tuple[List[Tuple[Any, ...]], Optional[bytes]]:
    """Describe every shard for a worker bootstrap.

    Fast structures export their flat arrays into one block of bytes
    (placed in shared memory by the caller); anything else -- and any
    fast structure whose single-entry caches are already populated,
    since the flat arrays do not carry them -- falls back to a
    snapshot payload over the control pipe.  Returns
    ``(descriptors, state_bytes_or_None)``.
    """
    from ..fastpath.algorithms import _FastDemux  # layering: smp > fastpath
    from ..fastpath.cuckoo import FastCuckooDemux

    def flat_mode(shard: DemuxAlgorithm) -> Optional[str]:
        if isinstance(shard, FastCuckooDemux):
            return "cuckoo"  # the slot layout is the whole decision state
        if not isinstance(shard, _FastDemux):
            return None
        cache = getattr(shard, "_cache", None)
        if cache is not None and cache.key is not None:
            return None
        caches = getattr(shard, "_caches", None)
        if caches and any(slot.key is not None for slot in caches):
            return None
        return "tables"

    modes = [flat_mode(shard) for shard in shards]
    total = 0
    for shard, mode in zip(shards, modes):
        if mode == "cuckoo":
            total += shard.shared_size()
        elif mode == "tables":
            total += sum(t.shared_size() for t in shard._tables)
    state = bytearray(total) if total else None
    descriptors: List[Tuple[Any, ...]] = []
    offset = 0
    for shard, spec, mode in zip(shards, specs, modes):
        if mode == "cuckoo":
            offset = shard.export_shared(state, offset)
            descriptors.append(("cuckoo", spec, offset - shard.shared_size()))
        elif mode == "tables":
            start = offset
            counts = []
            for table in shard._tables:
                counts.append(len(table))
                offset = table.export_shared(state, offset)
            descriptors.append(("tables", spec, start, counts))
        else:
            from ..recovery.snapshot import capture_state  # lazy: layering

            descriptors.append(
                ("payload", capture_state(shard, spec=spec or shard.spec))
            )
    return descriptors, bytes(state) if state is not None else None


def _attach_shard(
    descriptor: Tuple[Any, ...],
    state_buf,
    pcbs: Dict[int, PCB],
) -> DemuxAlgorithm:
    """Build one worker-side shard from its bootstrap descriptor."""
    from ..core.registry import make_algorithm
    from ..fastpath.cuckoo import FastCuckooDemux

    mode = descriptor[0]
    if mode == "payload":
        from ..recovery.snapshot import restore_state  # lazy: layering

        shard = restore_state(descriptor[1])
        for pcb in shard:
            pcbs[pcb.four_tuple.key_bits()] = pcb
        return shard

    def pcb_for(key: int) -> PCB:
        pcb = PCB(FourTuple.from_key_bits(key))
        pcbs[key] = pcb
        return pcb

    if mode == "cuckoo":
        _mode, spec, offset = descriptor
        template = make_algorithm(spec)
        if not isinstance(template, FastCuckooDemux):
            raise ShmWorkerError(-1, f"spec {spec!r} is not a cuckoo table")
        shard, _ = FastCuckooDemux.attach_shared(state_buf, offset, pcb_for)
        shard.spec = spec
        return shard

    _mode, spec, offset, counts = descriptor
    shard = make_algorithm(spec)
    from ..fastpath.tables import SlotTable

    tables = []
    for count in counts:
        def interning_pcb_for(key: int, _shard=shard) -> PCB:
            _shard._keycache.entry(FourTuple.from_key_bits(key))
            _shard._present.add(key)
            return pcb_for(key)

        table, offset = SlotTable.attach_shared(
            state_buf, offset, count, interning_pcb_for
        )
        tables.append(table)
    if len(tables) != len(shard._tables):
        raise ShmWorkerError(
            -1,
            f"spec {spec!r} builds {len(shard._tables)} chains,"
            f" export carries {len(tables)}",
        )
    shard._tables = tables
    return shard


# -- the worker process ------------------------------------------------

def _worker_main(
    worker_index: int,
    request_name: str,
    response_name: str,
    ring_slots: int,
    conn,
) -> None:
    """Entry point of one shard worker process."""
    from multiprocessing import shared_memory

    request_shm = shared_memory.SharedMemory(name=request_name)
    response_shm = shared_memory.SharedMemory(name=response_name)
    requests = SpscRing(request_shm.buf, REQUEST_SLOT, ring_slots)
    responses = SpscRing(response_shm.buf, RESPONSE_SLOT, ring_slots)

    # Bootstrap: shard descriptors (and the shared state segment's
    # name, when any shard exported flat arrays).
    message = conn.recv()
    if message[0] != "bootstrap":
        conn.send(("error", f"expected bootstrap, got {message[0]!r}"))
        return
    _tag, descriptors, state_name = message
    state_shm = None
    state_buf = None
    if state_name is not None:
        state_shm = shared_memory.SharedMemory(name=state_name)
        state_buf = state_shm.buf
    shards: List[DemuxAlgorithm] = []
    pcbs: List[Dict[int, PCB]] = []
    try:
        for descriptor in descriptors:
            local: Dict[int, PCB] = {}
            shards.append(_attach_shard(descriptor, state_buf, local))
            pcbs.append(local)
    except Exception as exc:  # surface bootstrap failures, don't hang
        conn.send(("error", f"bootstrap failed: {exc!r}"))
        return
    conn.send(("ready", None))

    pending: List[List[Tuple[FourTuple, PacketKind]]] = [
        [] for _ in shards
    ]
    out: List[Tuple[int, int]] = []
    tuple_cache: Dict[int, FourTuple] = {}
    spins = 0
    running = True
    while running:
        records = requests.pop(512)
        if not records:
            if out:
                pushed = responses.push(out)
                if pushed:
                    del out[:pushed]
                    spins = 0
                    continue
            if conn.poll(0):
                running = _handle_control(conn, shards, pcbs, pending)
                spins = 0
                continue
            spins += 1
            _sleep_briefly(spins)
            continue
        spins = 0
        for meta, lo, hi in records:
            op = meta & 0xF
            slot = meta >> 16
            key = (hi << _HALF_BITS) | lo
            tup = tuple_cache.get(key)
            if tup is None:
                tup = FourTuple.from_key_bits(key)
                tuple_cache[key] = tup
            if op == OP_LOOKUP:
                kind = (
                    PacketKind.ACK if (meta >> 4) & 0xF else PacketKind.DATA
                )
                flags = (meta >> 8) & 0xFF
                if flags & FLAG_BATCHED:
                    pending[slot].append((tup, kind))
                    if flags & FLAG_FLUSH:
                        results = shards[slot].lookup_batch(pending[slot])
                        pending[slot].clear()
                        for result in results:
                            out.append(_encode_response(result))
                else:
                    out.append(
                        _encode_response(shards[slot].lookup(tup, kind))
                    )
            elif op == OP_INSERT:
                pcb = PCB(tup)
                shards[slot].insert(pcb)
                pcbs[slot][key] = pcb
            elif op == OP_REMOVE:
                shards[slot].remove(tup)
                pcbs[slot].pop(key, None)
            elif op == OP_NOTE_SEND:
                pcb = pcbs[slot].get(key)
                if pcb is not None:
                    shards[slot].note_send(pcb)
        while out:
            pushed = responses.push(out)
            del out[:pushed]
            if out:
                _sleep_briefly(65)
    conn.close()
    # Skip interpreter-shutdown GC: attached tables hold numpy views
    # straight over the shared segments, and releasing a SharedMemory
    # under live exports raises BufferError noise on the way out.  The
    # dispatcher owns the segments (and unlinks them); just leave.
    os._exit(0)


def _encode_response(result) -> Tuple[int, int]:
    flags = (RESP_FOUND if result.found else 0) | (
        RESP_CACHE_HIT if result.cache_hit else 0
    )
    return (result.examined, flags)


def _handle_control(conn, shards, pcbs, pending) -> bool:
    """Service one control-pipe message; False means shut down."""
    message = conn.recv()
    tag = message[0]
    try:
        if tag == "stop":
            conn.send(("ok", None))
            return False
        if tag == "snapshot":
            from ..recovery.snapshot import capture_state

            _tag, slot, spec = message
            conn.send(("ok", capture_state(shards[slot], spec=spec)))
        elif tag == "restore":
            from ..recovery.snapshot import restore_state

            _tag, slot, payload = message
            shard = restore_state(payload)
            shards[slot] = shard
            pcbs[slot] = {
                pcb.four_tuple.key_bits(): pcb for pcb in shard
            }
            pending[slot].clear()
            conn.send(("ok", None))
        elif tag == "stats":
            _tag, slot = message
            conn.send(("ok", shards[slot].stats.as_dict()))
        elif tag == "reset":
            for shard in shards:
                shard.stats.reset()
            conn.send(("ok", None))
        else:
            conn.send(("error", f"unknown control message {tag!r}"))
    except Exception as exc:
        conn.send(("error", f"{tag} failed: {exc!r}"))
    return True


# -- dispatcher side ---------------------------------------------------

class _Worker:
    """Dispatcher-side handle of one worker process."""

    def __init__(self, index: int, process, request_ring, response_ring,
                 conn, segments):
        self.index = index
        self.process = process
        self.requests = request_ring
        self.responses = response_ring
        self.conn = conn
        self.segments = segments  # SharedMemory objects to keep alive
        #: Responses popped while waiting for ring space, not yet
        #: consumed by a collect().
        self.stash: List[Tuple[int, int]] = []


class ShmWorkerPool:
    """N shard-worker processes behind SPSC rings, plus control pipes.

    The pool maps ``nshards`` shard structures onto ``nworkers``
    processes round-robin (shard ``i`` lives on worker ``i %
    nworkers``); the facade addresses shards by global index and the
    pool translates to (worker, local slot).
    """

    def __init__(
        self,
        nworkers: int,
        *,
        ring_slots: int = DEFAULT_RING_SLOTS,
        timeout: float = 60.0,
    ):
        if nworkers < 1:
            raise ValueError(f"nworkers must be >= 1, got {nworkers}")
        self.nworkers = nworkers
        self.ring_slots = ring_slots
        self.timeout = timeout
        self._workers: List[_Worker] = []
        self._placement: List[Tuple[int, int]] = []  # shard -> (worker, slot)
        self._closed = False

    # -- lifecycle -----------------------------------------------------

    def start(
        self, shards: Sequence[DemuxAlgorithm], specs: Sequence[str]
    ) -> None:
        """Export every shard's state and launch the worker processes."""
        from multiprocessing import shared_memory

        if self._workers:
            raise RuntimeError("pool already started")
        context = multiprocessing.get_context(
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else None
        )
        owned: List[List[int]] = [[] for _ in range(self.nworkers)]
        self._placement = []
        for shard_index in range(len(shards)):
            worker_index = shard_index % self.nworkers
            self._placement.append(
                (worker_index, len(owned[worker_index]))
            )
            owned[worker_index].append(shard_index)
        for worker_index in range(self.nworkers):
            indices = owned[worker_index]
            descriptors, state = _export_shards(
                [shards[i] for i in indices],
                [specs[i] for i in indices],
            )
            segments = []
            request_shm = shared_memory.SharedMemory(
                create=True,
                size=SpscRing.bytes_needed(REQUEST_SLOT, self.ring_slots),
            )
            response_shm = shared_memory.SharedMemory(
                create=True,
                size=SpscRing.bytes_needed(RESPONSE_SLOT, self.ring_slots),
            )
            segments.extend([request_shm, response_shm])
            # Zero the cursors (shm is zero-filled on Linux, but be
            # explicit -- a stale cursor would desynchronize the ring).
            request_shm.buf[:SpscRing.HEADER] = bytes(SpscRing.HEADER)
            response_shm.buf[:SpscRing.HEADER] = bytes(SpscRing.HEADER)
            state_name = None
            if state is not None:
                state_shm = shared_memory.SharedMemory(
                    create=True, size=max(len(state), 1)
                )
                state_shm.buf[:len(state)] = state
                segments.append(state_shm)
                state_name = state_shm.name
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=_worker_main,
                args=(
                    worker_index,
                    request_shm.name,
                    response_shm.name,
                    self.ring_slots,
                    child_conn,
                ),
                daemon=True,
            )
            process.start()
            child_conn.close()
            worker = _Worker(
                worker_index,
                process,
                SpscRing(request_shm.buf, REQUEST_SLOT, self.ring_slots),
                SpscRing(response_shm.buf, RESPONSE_SLOT, self.ring_slots),
                parent_conn,
                segments,
            )
            worker.conn.send(("bootstrap", descriptors, state_name))
            self._workers.append(worker)
        for worker in self._workers:
            reply = self._recv(worker)
            if reply[0] != "ready":
                raise ShmWorkerError(worker.index, str(reply[1]))

    def close(self) -> None:
        """Stop every worker and release the shared segments."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            try:
                if worker.process.is_alive():
                    worker.conn.send(("stop", None))
            except (BrokenPipeError, OSError):
                pass
        for worker in self._workers:
            worker.process.join(timeout=5.0)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=5.0)
            worker.conn.close()
            # Drop the ring views before releasing the segments: a
            # SharedMemory cannot close while exports are live.
            worker.requests = None
            worker.responses = None
            for segment in worker.segments:
                try:
                    segment.close()
                except BufferError:
                    pass  # a stray view keeps the mmap; still unlink
                try:
                    segment.unlink()
                except (FileNotFoundError, OSError):
                    pass
        self._workers = []

    def __del__(self):  # best-effort safety net; close() is the API
        try:
            self.close()
        except Exception:
            pass

    # -- hot-path ops --------------------------------------------------

    def locate(self, shard: int) -> Tuple[int, int]:
        return self._placement[shard]

    def insert(self, shard: int, key: int) -> None:
        worker_index, slot = self._placement[shard]
        self._push(
            self._workers[worker_index],
            [(_meta(OP_INSERT, slot=slot), key & _HALF_MASK,
              key >> _HALF_BITS)],
        )

    def remove(self, shard: int, key: int) -> None:
        worker_index, slot = self._placement[shard]
        self._push(
            self._workers[worker_index],
            [(_meta(OP_REMOVE, slot=slot), key & _HALF_MASK,
              key >> _HALF_BITS)],
        )

    def note_send(self, shard: int, key: int) -> None:
        worker_index, slot = self._placement[shard]
        self._push(
            self._workers[worker_index],
            [(_meta(OP_NOTE_SEND, slot=slot), key & _HALF_MASK,
              key >> _HALF_BITS)],
        )

    def lookup(self, shard: int, key: int, ack: bool) -> Tuple[int, int]:
        """One per-call lookup; returns ``(examined, flags)``."""
        worker_index, slot = self._placement[shard]
        worker = self._workers[worker_index]
        self._push(
            worker,
            [(_meta(OP_LOOKUP, kind=int(ack), slot=slot),
              key & _HALF_MASK, key >> _HALF_BITS)],
        )
        return self.collect(worker_index, 1)[0]

    def send_batch(
        self, shard: int, items: Sequence[Tuple[int, bool]]
    ) -> None:
        """Queue one shard sub-batch (worker serves via lookup_batch)."""
        if not items:
            return
        worker_index, slot = self._placement[shard]
        records = []
        last = len(items) - 1
        for position, (key, ack) in enumerate(items):
            flags = FLAG_BATCHED | (FLAG_FLUSH if position == last else 0)
            records.append(
                (_meta(OP_LOOKUP, kind=int(ack), flags=flags, slot=slot),
                 key & _HALF_MASK, key >> _HALF_BITS)
            )
        self._push(self._workers[worker_index], records)

    def collect(self, worker_index: int, count: int) -> List[Tuple[int, int]]:
        """Pop exactly ``count`` responses from one worker, FIFO."""
        worker = self._workers[worker_index]
        results: List[Tuple[int, int]] = []
        if worker.stash:
            take = min(count, len(worker.stash))
            results.extend(worker.stash[:take])
            del worker.stash[:take]
        deadline = time.monotonic() + self.timeout
        spins = 0
        while len(results) < count:
            popped = worker.responses.pop(count - len(results))
            if popped:
                results.extend(popped)
                spins = 0
                continue
            self._check_worker(worker, deadline)
            spins += 1
            _sleep_briefly(spins)
        return results

    def _push(self, worker: _Worker, records) -> None:
        deadline = time.monotonic() + self.timeout
        position = 0
        spins = 0
        while position < len(records):
            pushed = worker.requests.push(records[position:])
            position += pushed
            if position < len(records):
                # Ring full: the worker may itself be stalled on a full
                # response ring -- drain it into the stash so both sides
                # keep moving (no deadlock by construction).
                drained = worker.responses.pop(512)
                if drained:
                    worker.stash.extend(drained)
                    spins = 0
                    continue
                self._check_worker(worker, deadline)
                spins += 1
                _sleep_briefly(spins)

    def _check_worker(self, worker: _Worker, deadline: float) -> None:
        if not worker.process.is_alive():
            raise ShmWorkerError(
                worker.index,
                f"process died (exit code {worker.process.exitcode})",
            )
        if time.monotonic() > deadline:
            raise ShmWorkerError(
                worker.index, f"timed out after {self.timeout:.0f}s"
            )

    # -- control-plane ops ---------------------------------------------

    def snapshot_shard(self, shard: int, spec: str) -> Dict[str, Any]:
        """Capture one shard's snapshot payload from its worker."""
        worker_index, slot = self._placement[shard]
        return self._control(worker_index, ("snapshot", slot, spec))

    def restore_shard(self, shard: int, payload: Dict[str, Any]) -> None:
        """Replace one worker-side shard from a snapshot payload."""
        worker_index, slot = self._placement[shard]
        self._control(worker_index, ("restore", slot, payload))

    def shard_stats(self, shard: int) -> Dict[str, Any]:
        worker_index, slot = self._placement[shard]
        return self._control(worker_index, ("stats", slot))

    def reset_stats(self) -> None:
        for worker in self._workers:
            worker.conn.send(("reset", None))
        for worker in self._workers:
            reply = self._recv(worker)
            if reply[0] != "ok":
                raise ShmWorkerError(worker.index, str(reply[1]))

    def _control(self, worker_index: int, message) -> Any:
        worker = self._workers[worker_index]
        worker.conn.send(message)
        reply = self._recv(worker)
        if reply[0] != "ok":
            raise ShmWorkerError(worker.index, str(reply[1]))
        return reply[1]

    def _recv(self, worker: _Worker) -> Tuple[str, Any]:
        deadline = time.monotonic() + self.timeout
        while not worker.conn.poll(0.05):
            self._check_worker(worker, deadline)
        return worker.conn.recv()


class ShardMirror:
    """Dispatcher-side stand-in for one worker-resident shard.

    Exposes the slice of the :class:`DemuxAlgorithm` surface the
    sharded facade (and its observers -- occupancy, per-shard p99,
    aggregated stats, the supervisor's orphan census) actually touches,
    proxying the structural operations through the worker pool.  The
    mirror owns the dispatcher's PCB objects for its shard (PCBs never
    cross the process boundary; the worker keeps twins) and records a
    shard-level :class:`DemuxStats` from the responses -- decision
    identity makes it equal, record for record, to the stats the
    worker-side structure keeps.
    """

    def __init__(
        self,
        pool: ShmWorkerPool,
        index: int,
        spec: str,
        name: str,
        pcbs: Dict[FourTuple, PCB],
        stats: DemuxStats,
    ):
        self.pool = pool
        self.index = index
        self.spec = spec
        self.name = name
        self.pcbs = pcbs
        self.stats = stats

    # -- DemuxAlgorithm surface the facade drives ----------------------

    def lookup(
        self, tup: FourTuple, kind: PacketKind = PacketKind.DATA
    ) -> LookupResult:
        examined, flags = self.pool.lookup(
            self.index, tup.key_bits(), kind is PacketKind.ACK
        )
        return self._result(tup, kind, examined, flags)

    def lookup_batch(
        self, packets: Sequence[Tuple[FourTuple, PacketKind]]
    ) -> List[LookupResult]:
        self.send_batch(packets)
        return self.collect_batch(packets)

    def send_batch(
        self, packets: Sequence[Tuple[FourTuple, PacketKind]]
    ) -> None:
        """Phase one of a batched lookup: enqueue, don't wait.

        The facade sends every shard's sub-batch before collecting any
        results, so the workers genuinely overlap; pair with
        :meth:`collect_batch` over the same packets, in send order
        per worker.
        """
        self.pool.send_batch(
            self.index,
            [
                (tup.key_bits(), kind is PacketKind.ACK)
                for tup, kind in packets
            ],
        )

    def collect_batch(
        self, packets: Sequence[Tuple[FourTuple, PacketKind]]
    ) -> List[LookupResult]:
        """Phase two: collect one result per packet, in order."""
        worker_index, _slot = self.pool.locate(self.index)
        responses = self.pool.collect(worker_index, len(packets))
        return [
            self._result(tup, kind, examined, flags)
            for (tup, kind), (examined, flags) in zip(packets, responses)
        ]

    def insert(self, pcb: PCB) -> None:
        self.pool.insert(self.index, pcb.four_tuple.key_bits())
        self.pcbs[pcb.four_tuple] = pcb

    def remove(self, tup: FourTuple) -> PCB:
        pcb = self.pcbs.pop(tup)  # KeyError when absent, per contract
        self.pool.remove(self.index, tup.key_bits())
        return pcb

    def note_send(self, pcb: PCB) -> None:
        self.pool.note_send(self.index, pcb.four_tuple.key_bits())

    def __len__(self) -> int:
        return len(self.pcbs)

    def __iter__(self):
        return iter(self.pcbs.values())

    def __contains__(self, tup: FourTuple) -> bool:
        return tup in self.pcbs

    def describe(self) -> str:
        return f"{self.name} ({len(self)} PCBs, worker-resident)"

    def __repr__(self) -> str:
        return f"<ShardMirror shard={self.index} {self.describe()}>"

    def _result(
        self, tup: FourTuple, kind: PacketKind, examined: int, flags: int
    ) -> LookupResult:
        found = bool(flags & RESP_FOUND)
        pcb = self.pcbs.get(tup) if found else None
        if found and pcb is None:
            raise ShmWorkerError(
                self.pool.locate(self.index)[0],
                f"found {tup} on shard {self.index} but the dispatcher"
                " directory has no such PCB (state desync)",
            )
        result = LookupResult(
            pcb=pcb,
            examined=examined,
            cache_hit=bool(flags & RESP_CACHE_HIT),
            kind=kind,
        )
        self.stats.record(
            LookupRecord(
                examined=examined,
                cache_hit=result.cache_hit,
                found=found,
                kind=kind,
            )
        )
        return result
