"""The ``smp-sweep`` experiment: shard count x steering x batch size.

Every cell replays the *same* recorded TPC/A packet stream (common
random numbers: one stream per seed) through one configuration --
unsharded baseline, or a :class:`~repro.smp.sharded.ShardedDemux` of S
shards behind a steering policy, with or without interrupt-coalescing
batches -- and reports the measured demux cost plus the SMP
memory-operation cost from :mod:`repro.smp.contention`.  Cells are
pure functions of their parameters, so the sweep fans out over
:func:`repro.smp.parallel.run_tasks` and the artifacts are
byte-identical for any ``--jobs`` value.

The sweep evaluates three acceptance criteria in-band and records the
verdicts in its JSON (``BENCH_smp.json``):

1. hash steering keeps the load imbalance factor <= 1.25 at the
   largest shard count;
2. mean SMP cost is monotonically non-increasing in shard count for
   hash steering (sharding never hurts, because shorter per-shard
   scans dominate the constant steering surcharge);
3. batch-sorted coalescing strictly reduces mean PCBs examined versus
   unbatched delivery on the unsharded structures (synthetic trains
   feed the single-entry caches).
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Callable, Dict, List, Optional, Tuple, Union

from ..core.pcb import PCB
from ..core.registry import make_algorithm
from ..workload.record import record_tpca_stream
from .coalesce import BatchCoalescer
from .contention import ContentionModel, build_report
from .parallel import RetryLog, Task, run_tasks
from .sharded import ShardedDemux
from .steering import make_steering

__all__ = [
    "SMPSweepConfig",
    "SweepResult",
    "run_smp_sweep",
    "write_sweep_artifacts",
]

#: Steering label used for unsharded baseline cells.
BASELINE = "none"


@dataclasses.dataclass(frozen=True)
class SMPSweepConfig:
    """Parameters of one sweep.  Defaults match the acceptance run:
    N=1000 TPC/A connections, shard counts up to 8, all steerings."""

    algorithms: Tuple[str, ...] = ("bsd", "sequent:h=19")
    n_connections: int = 1000
    #: Simulated seconds of TPC/A traffic recorded per seed.
    duration: float = 30.0
    shard_counts: Tuple[int, ...] = (1, 2, 4, 8)
    steerings: Tuple[str, ...] = ("hash", "rr", "sticky")
    batch_sizes: Tuple[int, ...] = (1, 64)
    seeds: Tuple[int, ...] = (7,)
    jobs: int = 1
    #: Serve every sharded cell's shards from this many shared-memory
    #: worker processes (:mod:`repro.smp.shm`); 0 stays in-process.
    #: Deliberately *not* recorded in the artifacts: workers are an
    #: execution engine, not an experiment parameter, and the shm mode
    #: is decision-identical -- ``--workers 2`` artifacts must be
    #: byte-identical to an in-process run.
    workers: int = 0
    utilization: float = 0.6
    #: Extra attempts a failed/crashed cell gets before the sweep fails.
    #: Cells are pure and attempt-independent, so retried results are
    #: byte-identical -- the count is recorded, not hidden.
    retries: int = 2
    #: Seconds between retry rounds (doubling per round).
    retry_backoff: float = 0.0

    def __post_init__(self) -> None:
        if not self.algorithms:
            raise ValueError("need at least one algorithm")
        if self.n_connections < 1:
            raise ValueError("need at least one connection")
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if not self.shard_counts or any(s < 1 for s in self.shard_counts):
            raise ValueError("shard counts must be positive")
        if not self.batch_sizes or any(b < 1 for b in self.batch_sizes):
            raise ValueError("batch sizes must be positive")
        if not self.seeds:
            raise ValueError("need at least one seed")
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        if self.workers < 0:
            raise ValueError("workers must be >= 0")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.retry_backoff < 0:
            raise ValueError("retry_backoff must be >= 0")

    def as_dict(self) -> Dict[str, object]:
        return {
            "algorithms": list(self.algorithms),
            "n_connections": self.n_connections,
            "duration": self.duration,
            "shard_counts": list(self.shard_counts),
            "steerings": list(self.steerings),
            "batch_sizes": list(self.batch_sizes),
            "seeds": list(self.seeds),
            "utilization": self.utilization,
            "retries": self.retries,
            "retry_backoff": self.retry_backoff,
        }


def _run_cell(params: Dict[str, object]) -> Dict[str, object]:
    """One sweep cell; module-level so process pools can pickle it.

    Pure: every output is a deterministic function of ``params``.
    """
    spec = params["algorithm"]
    nshards = params["nshards"]
    steering = params["steering"]
    batch_size = params["batch_size"]
    workers = int(params.get("workers", 0))
    stream = record_tpca_stream(
        params["n_connections"], params["duration"], params["seed"]
    )
    model = ContentionModel(utilization=params["utilization"])

    if nshards == 0:
        algorithm = make_algorithm(spec)
    else:
        algorithm = ShardedDemux(
            lambda: make_algorithm(spec),
            nshards,
            make_steering(steering),
            inner_spec=spec,
            workers=workers or None,
        )
    try:
        for tup in stream.tuples:
            algorithm.insert(PCB(tup))

        train_followers = 0
        if batch_size > 1:
            coalescer = BatchCoalescer(algorithm, batch_size, sort=True)
            coalescer.replay(stream.packets)
            train_followers = coalescer.train_followers
        else:
            for tup, kind in stream.packets:
                algorithm.lookup(tup, kind)

        stats = algorithm.stats
        combined = stats.combined()
        if isinstance(algorithm, ShardedDemux):
            report = algorithm.cost_report(model)
        else:
            report = build_report(
                nshards=1,
                steering=BASELINE,
                steer_ops=0.0,
                migrations=0,
                per_shard_lookups=[stats.lookups],
                per_shard_occupancy=[len(algorithm)],
                per_shard_mean_examined=[stats.mean_examined],
                per_shard_p99=[combined.percentile(0.99)],
                model=model,
            )
    finally:
        close = getattr(algorithm, "close", None)
        if close is not None:
            close()
    return {
        "algorithm": spec,
        "nshards": nshards,
        "steering": steering,
        "batch_size": batch_size,
        "seed": params["seed"],
        "packets": len(stream.packets),
        "mean_examined": round(stats.mean_examined, 4),
        "hit_rate": round(stats.hit_rate, 4),
        "p99_examined": combined.percentile(0.99),
        "max_examined": combined.max_examined,
        "mean_cost_ops": round(report.mean_cost_ops, 4),
        "imbalance_factor": round(report.imbalance_factor, 4),
        "migrations": report.migrations,
        "migration_rate": round(report.migration_rate, 6),
        "train_followers": train_followers,
        "per_shard": [shard.as_dict() for shard in report.shards],
    }


def _cell_grid(config: SMPSweepConfig) -> List[Dict[str, object]]:
    """Every cell's parameters, in the sweep's canonical order."""
    cells = []

    def add(seed, spec, nshards, steering, batch):
        cells.append(
            {
                "algorithm": spec,
                "nshards": nshards,
                "steering": steering,
                "batch_size": batch,
                "seed": seed,
                "n_connections": config.n_connections,
                "duration": config.duration,
                "utilization": config.utilization,
                "workers": config.workers,
            }
        )

    for seed in config.seeds:
        for spec in config.algorithms:
            for batch in config.batch_sizes:
                add(seed, spec, 0, BASELINE, batch)
            for nshards in config.shard_counts:
                for steering in config.steerings:
                    for batch in config.batch_sizes:
                        add(seed, spec, nshards, steering, batch)
    return cells


def _cell_name(params: Dict[str, object]) -> str:
    return (
        f"seed{params['seed']}/{params['algorithm']}"
        f"/S{params['nshards']}/{params['steering']}/B{params['batch_size']}"
    )


@dataclasses.dataclass(frozen=True)
class SweepResult:
    """All cells of one sweep plus the in-band acceptance verdicts."""

    config: SMPSweepConfig
    cells: Tuple[Dict[str, object], ...]
    #: Cell name -> extra attempts that cell needed (empty on a clean run).
    worker_retries: Dict[str, int] = dataclasses.field(default_factory=dict)

    def cell(self, **match: object) -> Dict[str, object]:
        """The unique cell whose fields equal ``match`` (KeyError if not 1)."""
        found = [
            cell
            for cell in self.cells
            if all(cell[key] == value for key, value in match.items())
        ]
        if len(found) != 1:
            raise KeyError(f"{len(found)} cells match {match!r}")
        return found[0]

    # -- acceptance criteria -------------------------------------------

    def criteria(self) -> Dict[str, object]:
        """Evaluate the three acceptance checks over every (seed, algo)."""
        imbalance_checks = []
        monotone_checks = []
        coalesce_checks = []
        top_shards = max(self.config.shard_counts)
        top_batch = max(self.config.batch_sizes)
        for seed in self.config.seeds:
            for spec in self.config.algorithms:
                if "hash" in self.config.steerings:
                    hot = self.cell(
                        seed=seed,
                        algorithm=spec,
                        nshards=top_shards,
                        steering="hash",
                        batch_size=1,
                    )
                    imbalance_checks.append(
                        {
                            "seed": seed,
                            "algorithm": spec,
                            "nshards": top_shards,
                            "imbalance_factor": hot["imbalance_factor"],
                            "ok": hot["imbalance_factor"] <= 1.25,
                        }
                    )
                    costs = [
                        self.cell(
                            seed=seed,
                            algorithm=spec,
                            nshards=nshards,
                            steering="hash",
                            batch_size=1,
                        )["mean_cost_ops"]
                        for nshards in sorted(self.config.shard_counts)
                    ]
                    monotone_checks.append(
                        {
                            "seed": seed,
                            "algorithm": spec,
                            "shard_counts": sorted(self.config.shard_counts),
                            "mean_cost_ops": costs,
                            "ok": all(
                                later <= earlier * (1 + 1e-9)
                                for earlier, later in zip(costs, costs[1:])
                            ),
                        }
                    )
                if top_batch > 1:
                    unbatched = self.cell(
                        seed=seed, algorithm=spec, nshards=0, batch_size=1
                    )
                    batched = self.cell(
                        seed=seed, algorithm=spec, nshards=0, batch_size=top_batch
                    )
                    coalesce_checks.append(
                        {
                            "seed": seed,
                            "algorithm": spec,
                            "batch_size": top_batch,
                            "unbatched_mean_examined": unbatched["mean_examined"],
                            "batched_mean_examined": batched["mean_examined"],
                            "ok": batched["mean_examined"]
                            < unbatched["mean_examined"],
                        }
                    )
        return {
            "imbalance_hash_top_shards": imbalance_checks,
            "cost_monotone_in_shards_hash": monotone_checks,
            "coalescing_strictly_reduces_examined": coalesce_checks,
        }

    @property
    def ok(self) -> bool:
        return all(
            check["ok"]
            for checks in self.criteria().values()
            for check in checks
        )

    # -- rendering -----------------------------------------------------

    def render_text(self) -> str:
        config = self.config
        lines = [
            "SMP sweep: shard count x steering x batch size",
            f"  N={config.n_connections} TPC/A connections,"
            f" {config.duration:g}s recorded stream,"
            f" seeds {list(config.seeds)},"
            f" utilization {config.utilization:g}",
            "",
            f"  {'seed':>4} {'algorithm':<16} {'S':>2} {'steer':<6} {'B':>3}"
            f" {'PCBs/pkt':>9} {'ops/pkt':>9} {'imbal':>6}"
            f" {'migr':>6} {'p99':>5}",
        ]
        for cell in self.cells:
            shards = cell["nshards"] if cell["nshards"] else "-"
            lines.append(
                f"  {cell['seed']:>4} {cell['algorithm']:<16} {shards:>2}"
                f" {cell['steering']:<6} {cell['batch_size']:>3}"
                f" {cell['mean_examined']:>9.2f}"
                f" {cell['mean_cost_ops']:>9.2f}"
                f" {cell['imbalance_factor']:>6.2f}"
                f" {cell['migrations']:>6} {cell['p99_examined']:>5}"
            )
        lines.append("")
        for title, checks in self.criteria().items():
            verdict = "ok" if all(c["ok"] for c in checks) else "FAIL"
            lines.append(f"  criterion {title}: {verdict}")
        total_retries = sum(self.worker_retries.values())
        lines.append(
            f"  worker retries: {total_retries}"
            + (
                f" ({len(self.worker_retries)} cells affected)"
                if total_retries
                else ""
            )
        )
        return "\n".join(lines)

    def to_json(self) -> str:
        payload = {
            "benchmark": "smp_sweep",
            "config": self.config.as_dict(),
            "criteria": self.criteria(),
            "ok": self.ok,
            "worker_retries": {
                "total": sum(self.worker_retries.values()),
                "by_task": dict(self.worker_retries),
            },
            "cells": list(self.cells),
        }
        return json.dumps(payload, indent=2, sort_keys=True)


def run_smp_sweep(
    config: SMPSweepConfig,
    *,
    progress: Optional[Callable[[str], None]] = None,
) -> SweepResult:
    """Run every cell (``config.jobs``-way parallel); deterministic."""
    grid = _cell_grid(config)
    tasks = [
        Task(name=_cell_name(params), fn=_run_cell, args=(params,))
        for params in grid
    ]
    retry_log = RetryLog()
    results = run_tasks(
        tasks,
        config.jobs,
        progress=progress,
        retries=config.retries,
        backoff=config.retry_backoff,
        retry_log=retry_log,
    )
    return SweepResult(
        config=config,
        cells=tuple(results),
        worker_retries=dict(retry_log.by_task),
    )


def write_sweep_artifacts(
    result: SweepResult,
    outdir: Union[str, pathlib.Path],
    *,
    bench_path: Union[str, pathlib.Path, None] = "BENCH_smp.json",
) -> pathlib.Path:
    """Write ``smp_sweep.{txt,json}`` into ``outdir`` plus the BENCH file."""
    outdir = pathlib.Path(outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    (outdir / "smp_sweep.txt").write_text(result.render_text() + "\n")
    (outdir / "smp_sweep.json").write_text(result.to_json() + "\n")
    if bench_path is not None:
        pathlib.Path(bench_path).write_text(result.to_json() + "\n")
    return outdir
