"""Hash functions over the 96-bit TCP demultiplexing key.

The Sequent algorithm (paper Section 3.4) distributes PCBs across ``H``
hash chains.  The paper leaves the hash function itself to the
literature -- "efficient hash functions for protocol addresses are well
known [Jai89, McK91]" -- so this module implements the standard
candidates from that literature and exposes them behind one uniform
callable signature ``fn(tuple, nbuckets) -> bucket``:

* :func:`xor_fold` -- XOR of the key's 16-bit words, folded mod H.
* :func:`add_fold` -- one's-complement-style additive fold (checksum
  flavoured).
* :func:`multiplicative` -- Knuth multiplicative hashing on the mixed
  64-bit fold of the key.
* :func:`crc16_hash` / :func:`crc32_hash` -- CRC over the packed key,
  Jain's best performer.
* :func:`remote_port_only` -- a deliberately poor function (many OLTP
  clients share a source-port allocation pattern) used by the balance
  ablation to show what a bad hash does to the Sequent algorithm.
* :func:`python_builtin` -- Python's tuple hash, as the "random
  function" reference point.

All return a bucket in ``range(nbuckets)`` and are deterministic across
runs and processes (no per-process seeding), so simulations reproduce.
"""

from __future__ import annotations

from typing import Callable, Dict

from ..packet.addresses import FourTuple
from .crc import crc16_ccitt, crc32c

__all__ = [
    "HashFunction",
    "xor_fold",
    "add_fold",
    "multiplicative",
    "crc16_hash",
    "crc32_hash",
    "remote_port_only",
    "python_builtin",
    "HASH_FUNCTIONS",
    "get_hash_function",
    "default_hash",
]

#: Signature every demux hash function follows.
HashFunction = Callable[[FourTuple, int], int]

_KNUTH_64 = 0x9E3779B97F4A7C15  # 2**64 / golden ratio


def _check_buckets(nbuckets: int) -> None:
    if nbuckets <= 0:
        raise ValueError(f"nbuckets must be positive, got {nbuckets}")


def xor_fold(tup: FourTuple, nbuckets: int) -> int:
    """XOR the six 16-bit words of the key, then reduce mod ``nbuckets``.

    Cheap and historically common; weak when the varying bits of the key
    (often just the low bits of the remote port) cancel under XOR.
    """
    _check_buckets(nbuckets)
    acc = 0
    for word in tup.words16():
        acc ^= word
    return acc % nbuckets


def add_fold(tup: FourTuple, nbuckets: int) -> int:
    """Sum the six 16-bit words with end-around carry, reduce mod H.

    The fold the Internet checksum uses; slightly better mixing than XOR
    because carries propagate information between bit positions.
    """
    _check_buckets(nbuckets)
    acc = 0
    for word in tup.words16():
        acc += word
        if acc > 0xFFFF:
            acc = (acc & 0xFFFF) + 1
    return acc % nbuckets


def _mix64(tup: FourTuple) -> int:
    """Fold the 96-bit key to 64 bits with rotation so no field is lost."""
    bits = tup.key_bits()
    high = bits >> 64  # top 32 bits
    low = bits & 0xFFFFFFFFFFFFFFFF
    rotated = ((high << 27) | (high >> 5)) & 0xFFFFFFFFFFFFFFFF
    return low ^ rotated


def multiplicative(tup: FourTuple, nbuckets: int) -> int:
    """Knuth multiplicative hashing of the folded key.

    Multiplies by 2^64/phi and takes the high bits, which spreads
    low-entropy keys (sequential addresses, clustered ports) well.
    """
    _check_buckets(nbuckets)
    mixed = (_mix64(tup) * _KNUTH_64) & 0xFFFFFFFFFFFFFFFF
    return (mixed >> 32) % nbuckets


def _packed_key(tup: FourTuple) -> bytes:
    return tup.key_bits().to_bytes(12, "big")


def crc16_hash(tup: FourTuple, nbuckets: int) -> int:
    """CRC-16/CCITT of the packed 12-byte key, reduced mod H."""
    _check_buckets(nbuckets)
    return crc16_ccitt(_packed_key(tup)) % nbuckets


def crc32_hash(tup: FourTuple, nbuckets: int) -> int:
    """CRC-32C of the packed 12-byte key, reduced mod H."""
    _check_buckets(nbuckets)
    return crc32c(_packed_key(tup)) % nbuckets


def remote_port_only(tup: FourTuple, nbuckets: int) -> int:
    """Hash on the remote port alone -- a known-bad function.

    Many client OSes allocate ephemeral ports sequentially from the same
    base, so distinct hosts collide heavily.  Exists to quantify the
    Sequent algorithm's sensitivity to hash quality.
    """
    _check_buckets(nbuckets)
    return tup.remote_port % nbuckets


def python_builtin(tup: FourTuple, nbuckets: int) -> int:
    """Python's own tuple hash, as an idealized reference point.

    Deterministic here because the key folds to integers (int hashing is
    not randomized by ``PYTHONHASHSEED``).
    """
    _check_buckets(nbuckets)
    key = (
        int(tup.local_addr),
        tup.local_port,
        int(tup.remote_addr),
        tup.remote_port,
    )
    return hash(key) % nbuckets


#: Registry used by the CLI, experiments, and the Sequent constructor.
HASH_FUNCTIONS: Dict[str, HashFunction] = {
    "xor_fold": xor_fold,
    "add_fold": add_fold,
    "multiplicative": multiplicative,
    "crc16": crc16_hash,
    "crc32": crc32_hash,
    "remote_port_only": remote_port_only,
    "python_builtin": python_builtin,
}

#: The default used by :class:`repro.core.sequent.SequentDemux`.
default_hash = crc32_hash


def get_hash_function(name: str) -> HashFunction:
    """Look up a registered hash function by name.

    Raises ``KeyError`` listing the available names on a miss.
    """
    try:
        return HASH_FUNCTIONS[name]
    except KeyError:
        known = ", ".join(sorted(HASH_FUNCTIONS))
        raise KeyError(f"unknown hash function {name!r}; known: {known}") from None
