"""Table-driven CRC-16 and CRC-32 over demultiplexing keys.

Jain's study of hashing schemes for address lookup [Jai89] found CRC
based hashes to distribute real network addresses essentially as well
as a random function; the paper cites it when asserting that "efficient
hash functions for protocol addresses are well known" (Section 3.5).
These CRCs feed :mod:`repro.hashing.functions`.
"""

from __future__ import annotations

__all__ = ["crc16_ccitt", "crc32c", "CRC16_CCITT_POLY", "CRC32C_POLY"]

#: CCITT polynomial x^16 + x^12 + x^5 + 1 (non-reflected form).
CRC16_CCITT_POLY = 0x1021

#: Castagnoli polynomial (reflected form), as used by iSCSI/SCTP.
CRC32C_POLY = 0x82F63B78


def _build_crc16_table(poly: int):
    table = []
    for byte in range(256):
        crc = byte << 8
        for _ in range(8):
            if crc & 0x8000:
                crc = ((crc << 1) ^ poly) & 0xFFFF
            else:
                crc = (crc << 1) & 0xFFFF
        table.append(crc)
    return tuple(table)


def _build_crc32c_table(poly: int):
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ poly
            else:
                crc >>= 1
        table.append(crc)
    return tuple(table)


_CRC16_TABLE = _build_crc16_table(CRC16_CCITT_POLY)
_CRC32C_TABLE = _build_crc32c_table(CRC32C_POLY)


def crc16_ccitt(data: bytes, initial: int = 0xFFFF) -> int:
    """CRC-16/CCITT-FALSE over ``data``."""
    crc = initial
    for byte in data:
        crc = ((crc << 8) & 0xFFFF) ^ _CRC16_TABLE[((crc >> 8) ^ byte) & 0xFF]
    return crc


def crc32c(data: bytes, initial: int = 0xFFFFFFFF) -> int:
    """CRC-32C (Castagnoli) over ``data``."""
    crc = initial
    for byte in data:
        crc = (crc >> 8) ^ _CRC32C_TABLE[(crc ^ byte) & 0xFF]
    return crc ^ 0xFFFFFFFF
