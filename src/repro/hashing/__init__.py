"""Hash functions over protocol addresses, and balance analysis.

Implements the candidates from the literature the paper cites
([Jai89, McK91]) behind one signature ``fn(four_tuple, nbuckets)``, plus
tools to measure how evenly each spreads a connection population (which
bounds how closely the Sequent algorithm tracks its analytic model).
"""

from .analysis import ChainBalance, compare_functions, measure_balance
from .crc import crc16_ccitt, crc32c
from .modern import (
    MICROSOFT_RSS_KEY,
    fnv1a,
    pearson,
    toeplitz,
    toeplitz_hash_value,
)
from .functions import (
    HASH_FUNCTIONS,
    HashFunction,
    add_fold,
    crc16_hash,
    crc32_hash,
    default_hash,
    get_hash_function,
    multiplicative,
    python_builtin,
    remote_port_only,
    xor_fold,
)

__all__ = [
    "ChainBalance",
    "HASH_FUNCTIONS",
    "HashFunction",
    "MICROSOFT_RSS_KEY",
    "add_fold",
    "compare_functions",
    "crc16_ccitt",
    "crc16_hash",
    "crc32_hash",
    "crc32c",
    "default_hash",
    "fnv1a",
    "get_hash_function",
    "measure_balance",
    "multiplicative",
    "pearson",
    "python_builtin",
    "remote_port_only",
    "toeplitz",
    "toeplitz_hash_value",
    "xor_fold",
]
