"""Hash-balance analysis: how evenly a hash spreads connections.

The Sequent algorithm's cost model (paper Eq. 18) assumes PCBs divide
evenly across the ``H`` chains: expected scan ``(N/H + 1)/2``.  A skewed
hash lengthens the busy chains and the *packet-weighted* expected scan
grows, so the analytic curves are a best case.  This module quantifies
that: chain-length distributions, chi-square uniformity statistics, and
the expected-scan-length penalty of a given hash on a given key
population.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Iterable, List, Sequence

from ..packet.addresses import FourTuple
from .functions import HashFunction

__all__ = ["ChainBalance", "measure_balance", "compare_functions"]


@dataclasses.dataclass(frozen=True)
class ChainBalance:
    """Balance statistics for one hash function over one key population."""

    nbuckets: int
    nkeys: int
    chain_lengths: Sequence[int]
    #: Pearson chi-square statistic against the uniform distribution.
    chi_square: float
    #: Longest chain (worst-case lookup scan).
    max_chain: int
    #: Expected PCBs scanned for a uniformly chosen *key* (miss path,
    #: no cache): mean over keys of (len(chain)+1)/2.
    expected_scan: float
    #: The same quantity for a perfectly balanced hash: (N/H + 1)/2.
    ideal_scan: float

    @property
    def scan_penalty(self) -> float:
        """``expected_scan / ideal_scan``; 1.0 is perfectly balanced."""
        if self.ideal_scan == 0:
            return 1.0
        return self.expected_scan / self.ideal_scan

    @property
    def load_factor(self) -> float:
        return self.nkeys / self.nbuckets if self.nbuckets else math.inf

    def chain_histogram(self) -> Dict[int, int]:
        """Map chain length -> number of chains with that length."""
        hist: Dict[int, int] = {}
        for length in self.chain_lengths:
            hist[length] = hist.get(length, 0) + 1
        return dict(sorted(hist.items()))

    def summary(self) -> str:
        return (
            f"H={self.nbuckets} N={self.nkeys}"
            f" max_chain={self.max_chain}"
            f" chi2={self.chi_square:.1f}"
            f" scan={self.expected_scan:.2f}"
            f" (ideal {self.ideal_scan:.2f},"
            f" penalty {self.scan_penalty:.3f}x)"
        )


def measure_balance(
    fn: HashFunction, keys: Iterable[FourTuple], nbuckets: int
) -> ChainBalance:
    """Hash every key and report how the chains came out.

    Duplicate keys are counted once -- a PCB table holds one PCB per
    connection regardless of how many packets arrive on it.
    """
    if nbuckets <= 0:
        raise ValueError(f"nbuckets must be positive, got {nbuckets}")
    unique = list(dict.fromkeys(keys))
    lengths = [0] * nbuckets
    for key in unique:
        bucket = fn(key, nbuckets)
        if not 0 <= bucket < nbuckets:
            raise ValueError(
                f"hash function returned bucket {bucket} outside"
                f" range({nbuckets})"
            )
        lengths[bucket] += 1
    nkeys = len(unique)
    expected = nkeys / nbuckets if nbuckets else 0.0
    if expected > 0:
        chi_square = sum((length - expected) ** 2 / expected for length in lengths)
    else:
        chi_square = 0.0
    if nkeys:
        # Average over keys of the expected scan to find that key in its
        # chain: (chain length + 1) / 2, weighting each chain by its
        # population.
        expected_scan = sum(length * (length + 1) / 2 for length in lengths) / nkeys
    else:
        expected_scan = 0.0
    ideal_scan = (nkeys / nbuckets + 1) / 2 if nkeys else 0.0
    return ChainBalance(
        nbuckets=nbuckets,
        nkeys=nkeys,
        chain_lengths=tuple(lengths),
        chi_square=chi_square,
        max_chain=max(lengths) if lengths else 0,
        expected_scan=expected_scan,
        ideal_scan=ideal_scan,
    )


def compare_functions(
    functions: Dict[str, HashFunction],
    keys: Sequence[FourTuple],
    nbuckets: int,
) -> List:
    """Measure every function on the same keys; worst penalty last."""
    results = [
        (name, measure_balance(fn, keys, nbuckets))
        for name, fn in functions.items()
    ]
    results.sort(key=lambda item: item[1].scan_penalty)
    return results
