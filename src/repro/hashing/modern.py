"""Descendants of the paper's idea: modern connection-hashing functions.

Hash-based connection lookup did not stop at kernel PCB tables; the
same 96-bit-key problem reappears in NIC receive-side scaling (RSS),
flow tables, and load balancers.  This module adds the functions that
lineage produced, behind the same ``fn(tuple, nbuckets)`` signature as
:mod:`repro.hashing.functions`, so the balance analysis and the
Sequent structure can use them interchangeably:

* :func:`fnv1a` -- Fowler/Noll/Vo, the ubiquitous cheap byte hash.
* :func:`pearson` -- Pearson's 1990 table-driven byte hash (a
  contemporary of the paper).
* :func:`toeplitz` -- the Microsoft RSS Toeplitz hash over
  (src addr, dst addr, src port, dst port), computed exactly as a NIC
  does, with the standard verification key.  This is, literally, the
  paper's demultiplexing step moved into silicon.
"""

from __future__ import annotations

from ..packet.addresses import FourTuple
from .functions import HASH_FUNCTIONS, _check_buckets

__all__ = [
    "fnv1a",
    "pearson",
    "toeplitz",
    "toeplitz_hash_value",
    "MICROSOFT_RSS_KEY",
]

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


def fnv1a(tup: FourTuple, nbuckets: int) -> int:
    """FNV-1a over the packed 12-byte key, reduced mod H."""
    _check_buckets(nbuckets)
    value = _FNV_OFFSET
    for byte in tup.key_bits().to_bytes(12, "big"):
        value ^= byte
        value = (value * _FNV_PRIME) & 0xFFFFFFFFFFFFFFFF
    return value % nbuckets


def _build_pearson_table():
    """The permutation from Pearson's CACM paper (a fixed shuffle).

    Any fixed permutation of 0..255 works; this one is generated
    deterministically from a small LCG so the module has no 256-entry
    literal to typo.
    """
    table = list(range(256))
    state = 1
    for i in range(255, 0, -1):
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        j = state % (i + 1)
        table[i], table[j] = table[j], table[i]
    return tuple(table)


_PEARSON_TABLE = _build_pearson_table()


def pearson(tup: FourTuple, nbuckets: int) -> int:
    """Pearson's table-driven hash, widened to 16 bits by double pass."""
    _check_buckets(nbuckets)
    data = tup.key_bits().to_bytes(12, "big")
    h1 = 0
    for byte in data:
        h1 = _PEARSON_TABLE[h1 ^ byte]
    # Second pass with a different initial byte widens to 16 bits.
    h2 = _PEARSON_TABLE[(data[0] + 1) & 0xFF]
    for byte in data[1:]:
        h2 = _PEARSON_TABLE[h2 ^ byte]
    return ((h1 << 8) | h2) % nbuckets


#: The 40-byte verification key from the Microsoft RSS specification.
MICROSOFT_RSS_KEY: bytes = bytes(
    (
        0x6D, 0x5A, 0x56, 0xDA, 0x25, 0x5B, 0x0E, 0xC2,
        0x41, 0x67, 0x25, 0x3D, 0x43, 0xA3, 0x8F, 0xB0,
        0xD0, 0xCA, 0x2B, 0xCB, 0xAE, 0x7B, 0x30, 0xB4,
        0x77, 0xCB, 0x2D, 0xA3, 0x80, 0x30, 0xF2, 0x0C,
        0x6A, 0x42, 0xB7, 0x3B, 0xBE, 0xAC, 0x01, 0xFA,
    )
)


def toeplitz_hash_value(data: bytes, key: bytes = MICROSOFT_RSS_KEY) -> int:
    """The 32-bit Toeplitz hash of ``data`` under ``key``.

    For each set bit of the input (MSB first), XOR in the 32-bit key
    window starting at that bit position -- the textbook (and
    silicon) formulation.
    """
    if len(key) * 8 < len(data) * 8 + 32:
        raise ValueError(
            f"key of {len(key)} bytes too short for {len(data)} input bytes"
        )
    key_bits = int.from_bytes(key, "big")
    key_len_bits = len(key) * 8
    result = 0
    for i, byte in enumerate(data):
        for bit in range(8):
            if byte & (0x80 >> bit):
                offset = i * 8 + bit
                window = (key_bits >> (key_len_bits - 32 - offset)) & 0xFFFFFFFF
                result ^= window
    return result


def _rss_input(tup: FourTuple) -> bytes:
    """The RSS TCP/IPv4 input: src addr, dst addr, src port, dst port.

    RSS hashes from the *packet's* perspective; the receiver-side
    FourTuple's remote side is the packet's source.
    """
    return (
        tup.remote_addr.packed
        + tup.local_addr.packed
        + tup.remote_port.to_bytes(2, "big")
        + tup.local_port.to_bytes(2, "big")
    )


def toeplitz(tup: FourTuple, nbuckets: int) -> int:
    """Microsoft RSS Toeplitz hash of the connection, reduced mod H."""
    _check_buckets(nbuckets)
    return toeplitz_hash_value(_rss_input(tup)) % nbuckets


# Register so the CLI/analysis sweeps include the modern functions.
HASH_FUNCTIONS.setdefault("fnv1a", fnv1a)
HASH_FUNCTIONS.setdefault("pearson", pearson)
HASH_FUNCTIONS.setdefault("toeplitz", toeplitz)
