"""Command-line interface: ``repro-demux``.

Subcommands::

    tables                regenerate the in-text result sets
    figures               render Figures 4 / 13 / 14 as ASCII
    validate              run the simulation-vs-analytic check
    simulate              one workload run against one algorithm
    obs-report            ASCII dashboard from metrics.json + span JSONL
    compare               algorithm matrix over one workload
    fault-matrix          robustness campaign: algorithms x faults x seeds
    smp-sweep             sharded demux: shard count x steering x batch size
    bench-gate            fast-path throughput sweep + cross-PR regression gate
    serve                 live asyncio front end serving real TCP clients
    record-info           validate a recorded capture and print its header
    canary                A/B a candidate algorithm against the incumbent
    leak-audit            churn + SYN-flood memory-bounds audit of the fast path
    hash-balance          chain-balance comparison of the hash functions
    pcap                  summarize a capture written by the simulator
    run-all               write every artifact into an output directory
    report                print the combined markdown report

All output goes to stdout unless ``--out`` is given.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .core.registry import available_algorithms, make_algorithm
from .experiments.figures import figure4, figure13, figure14
from .experiments.report import build_report
from .experiments.runner import run_all
from .experiments.simulate import validate_against_analytic
from .experiments.text_results import all_text_results
from .hashing.analysis import compare_functions
from .hashing.functions import HASH_FUNCTIONS
from .workload.thinktime import make_think_model
from .workload.tpca import TPCAConfig, TPCADemuxSimulation

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-demux",
        description=(
            "Reproduction of McKenney & Dove, 'Efficient Demultiplexing of"
            " Incoming TCP Packets' (SIGCOMM 1992)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("tables", help="regenerate the paper's in-text results")

    figures = sub.add_parser("figures", help="render Figures 4, 13, 14")
    figures.add_argument("--points", type=int, default=41)
    figures.add_argument(
        "--figure", choices=("4", "13", "14"), help="just one figure"
    )

    validate = sub.add_parser(
        "validate", help="simulation vs. analytic model"
    )
    validate.add_argument("--users", type=int, default=500)
    validate.add_argument("--seed", type=int, default=7)
    validate.add_argument("--duration", type=float, default=120.0)
    validate.add_argument(
        "--algorithms",
        nargs="+",
        help="subset to run (default: all)",
    )

    simulate = sub.add_parser(
        "simulate", help="one TPC/A run against one algorithm"
    )
    simulate.add_argument(
        "--algorithm",
        default="sequent:h=19",
        help=f"spec, e.g. {', '.join(available_algorithms())}",
    )
    simulate.add_argument("--users", type=int, default=500)
    simulate.add_argument("--response-time", type=float, default=0.2)
    simulate.add_argument("--rtt", type=float, default=0.001)
    simulate.add_argument("--duration", type=float, default=120.0)
    simulate.add_argument("--seed", type=int, default=1)
    simulate.add_argument(
        "--think-model",
        choices=("exponential", "truncated", "deterministic"),
        default="exponential",
    )
    simulate.add_argument(
        "--full-stack",
        action="store_true",
        help="run real TCP stacks over the simulated network",
    )
    simulate.add_argument(
        "--faults",
        metavar="SPEC",
        help=(
            "fault-injection spec, e.g."
            " 'ge=0.05:0.45,reorder=0.02:0.005,dup=0.02'"
            " (network terms imply --full-stack); infrastructure terms"
            " 'crash=K:W', 'stall=K:W:D', 'snapcorrupt=P' compose in"
            " and need a sharded --algorithm"
        ),
    )
    simulate.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        metavar="N",
        help=(
            "supervise the (sharded) structure and checkpoint every"
            " shard each N operations (enables warm recovery)"
        ),
    )
    simulate.add_argument(
        "--crash-shards",
        metavar="SPEC",
        help=(
            "kill shards mid-run: 'S@P,...' crashes shard S before"
            " packet P, or 'K[:W]' crashes K seeded shards within the"
            " first W packets (default window 1000)"
        ),
    )
    simulate.add_argument(
        "--detect-after",
        type=int,
        default=0,
        metavar="K",
        help=(
            "packets steered at a dead shard that are dropped before"
            " the crash is detected (default 0: immediate)"
        ),
    )
    simulate.add_argument(
        "--slo",
        metavar="SPEC",
        help=(
            "watchdog budget overrides, e.g. 'p99=80,drop=0.1'"
            " (keys: p99, drop, imbalance, retained)"
        ),
    )
    simulate.add_argument(
        "--max-connections",
        type=int,
        default=None,
        help="bound the server's PCB table (full-stack only)",
    )
    simulate.add_argument(
        "--overflow-policy",
        choices=("reject-new", "evict-oldest-embryonic"),
        default="reject-new",
        help="what a full bounded table does with new SYNs",
    )
    simulate.add_argument(
        "--idle-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "reap connections idle this long; enables the lifecycle"
            " reaper (implies --full-stack)"
        ),
    )
    simulate.add_argument(
        "--time-wait",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "reaper-managed TIME-WAIT quarantine instead of the fixed"
            " 2*MSL event (implies --full-stack)"
        ),
    )
    simulate.add_argument(
        "--trace-out",
        metavar="PATH",
        help="write a JSONL event trace (lookups, inserts, sim dispatch)",
    )
    simulate.add_argument(
        "--metrics-out",
        metavar="PATH",
        help=(
            "write run metrics: JSON registry snapshot, or Prometheus"
            " text format if PATH ends in .prom"
        ),
    )
    simulate.add_argument(
        "--profile",
        action="store_true",
        help="sampled perf_counter timing of the lookup hot path",
    )
    simulate.add_argument(
        "--profile-sample-every",
        type=int,
        default=None,
        metavar="N",
        help="time one lookup in N (default 64; implies --profile)",
    )
    simulate.add_argument(
        "--spans-out",
        metavar="PATH",
        help="write sampled per-packet spans as JSONL (enables spans)",
    )
    simulate.add_argument(
        "--span-sample-every",
        type=int,
        default=None,
        metavar="N",
        help="record one packet span in N (default 64; implies spans)",
    )
    simulate.add_argument(
        "--sketch",
        action="store_true",
        help=(
            "stream traffic sketches (quantiles, heavy hitters,"
            " train-ness, population) and publish traffic_* gauges"
        ),
    )
    simulate.add_argument(
        "--sketch-interval",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="virtual seconds between sketch publishes (default 5)",
    )
    simulate.add_argument(
        "--serve-metrics",
        type=int,
        default=None,
        metavar="PORT",
        help=(
            "serve /metrics, /snapshot.json and /healthz over HTTP"
            " during the run (0 picks a free port)"
        ),
    )
    simulate.add_argument(
        "--serve-hold",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="keep the telemetry server up this long after the run",
    )

    obs_report = sub.add_parser(
        "obs-report",
        help="ASCII dashboard from a metrics snapshot (+ optional spans)",
    )
    obs_report.add_argument(
        "--metrics",
        required=True,
        metavar="PATH",
        help="metrics.json from simulate --metrics-out (or /snapshot.json)",
    )
    obs_report.add_argument(
        "--spans",
        metavar="PATH",
        help="span JSONL from simulate --spans-out",
    )
    obs_report.add_argument(
        "--out",
        metavar="PATH",
        help="write the dashboard here instead of stdout",
    )

    compare = sub.add_parser(
        "compare", help="algorithm matrix over one workload"
    )
    compare.add_argument(
        "--workload",
        choices=("tpca", "trains", "polling", "mixed", "churn"),
        default="tpca",
    )
    compare.add_argument(
        "--algorithms",
        nargs="+",
        default=["bsd", "mtf", "sendrecv", "sequent:h=19"],
        help="algorithm specs (e.g. sequent:h=51 multicache:k=16)",
    )
    compare.add_argument("--users", type=int, default=300)
    compare.add_argument("--seed", type=int, default=1)

    matrix = sub.add_parser(
        "fault-matrix",
        help="robustness campaign: algorithms x fault mixes x seeds",
    )
    matrix.add_argument(
        "--algorithms",
        nargs="+",
        default=None,
        help="algorithm specs (default: bsd sendrecv sequent:h=19)",
    )
    matrix.add_argument(
        "--mixes",
        nargs="+",
        default=None,
        help=(
            "standard mix names (clean iid5 ge10 chaos) or custom"
            " name=SPEC entries"
        ),
    )
    matrix.add_argument("--seeds", nargs="+", type=int, default=[1])
    matrix.add_argument("--users", type=int, default=20)
    matrix.add_argument("--duration", type=float, default=30.0)
    matrix.add_argument("--max-connections", type=int, default=None)
    matrix.add_argument(
        "--overflow-policy",
        choices=("reject-new", "evict-oldest-embryonic"),
        default="reject-new",
    )
    matrix.add_argument(
        "--out",
        metavar="DIR",
        default=None,
        help="write fault_matrix.txt and fault_matrix.json into DIR",
    )

    smp = sub.add_parser(
        "smp-sweep",
        help="sharded demux sweep: shard count x steering x batch size",
    )
    smp.add_argument(
        "--algorithms",
        nargs="+",
        default=None,
        help="inner algorithm specs (default: bsd sequent:h=19)",
    )
    smp.add_argument("--users", type=int, default=1000)
    smp.add_argument("--duration", type=float, default=30.0)
    smp.add_argument(
        "--shards",
        nargs="+",
        type=int,
        default=None,
        help="shard counts to sweep (default: 1 2 4 8)",
    )
    smp.add_argument(
        "--steerings",
        nargs="+",
        default=None,
        help="steering policies (default: hash rr sticky)",
    )
    smp.add_argument(
        "--batch-sizes",
        nargs="+",
        type=int,
        default=None,
        help="coalescing batch sizes, 1 = unbatched (default: 1 64)",
    )
    smp.add_argument("--seeds", nargs="+", type=int, default=[7])
    smp.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes (results are identical for any value)",
    )
    smp.add_argument(
        "--workers",
        type=int,
        default=0,
        help=(
            "serve each sharded cell's shards from this many"
            " shared-memory worker processes (repro.smp.shm);"
            " decision-identical, so artifacts match --workers 0"
        ),
    )
    smp.add_argument("--utilization", type=float, default=0.6)
    smp.add_argument(
        "--out",
        metavar="DIR",
        default=None,
        help="write smp_sweep.txt and smp_sweep.json into DIR",
    )
    smp.add_argument(
        "--bench-out",
        metavar="PATH",
        default=None,
        help="also write the JSON payload to PATH (e.g. BENCH_smp.json)",
    )

    gate = sub.add_parser(
        "bench-gate",
        help=(
            "replay recorded TPC/A streams through reference and fast-*"
            " structures, append packets/sec to the benchmark trajectory,"
            " fail on >threshold regression"
        ),
    )
    gate.add_argument(
        "--trajectory",
        metavar="PATH",
        default="BENCH_trajectory.json",
        help="trajectory file to gate against and append to",
    )
    gate.add_argument(
        "--quick",
        action="store_true",
        help="reduced sweep (smaller N, shorter streams; the CI smoke)",
    )
    gate.add_argument(
        "--scale",
        action="store_true",
        help=(
            "million-connection tier: chained incumbent vs the O(1)"
            " fast-cuckoo table at N=10^4-10^5 (override with --users,"
            " up to 10^6)"
        ),
    )
    gate.add_argument(
        "--shm",
        action="store_true",
        help=(
            "shared-memory worker tier: replay one sharded cell with"
            " workers=1/2/8 processes (repro.smp.shm), compare measured"
            " packets/sec against the ContentionModel prediction, and"
            " append a tier=smp-shm entry (reported, never gated)"
        ),
    )
    gate.add_argument(
        "--reap-idle",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "attach a connection reaper during replays (idle timeout in"
            " simulated seconds) so huge sweeps stay memory-bounded;"
            " reaped runs gate against their own baselines"
        ),
    )
    gate.add_argument(
        "--warn-only",
        action="store_true",
        help="report regressions but exit 0 (for jittery shared runners)",
    )
    gate.add_argument(
        "--no-append",
        action="store_true",
        help="measure and compare without recording a new entry",
    )
    gate.add_argument("--seed", type=int, default=None)
    gate.add_argument(
        "--duration",
        type=float,
        default=None,
        help="simulated seconds of TPC/A traffic per stream",
    )
    gate.add_argument(
        "--users",
        nargs="+",
        type=int,
        default=None,
        metavar="N",
        help="connection counts to sweep",
    )
    gate.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="timed replays per cell (best-of-R is recorded)",
    )
    gate.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="fractional packets/sec drop that fails the gate",
    )
    gate.add_argument(
        "--canary",
        metavar="SPEC",
        default=None,
        help=(
            "canary mode: A/B this candidate spec against --incumbent"
            " on mirrored recorded traffic instead of the sweep"
            " (exit 1 = blocked)"
        ),
    )
    gate.add_argument(
        "--incumbent",
        metavar="SPEC",
        default="fast-sequent:h=19",
        help="incumbent spec the canary must beat (canary mode only)",
    )
    gate.add_argument(
        "--capture",
        metavar="PATH",
        default=None,
        help=(
            "recorded capture to replay in canary mode (e.g. from"
            " 'serve --record'); default: a synthetic TPC/A stream"
        ),
    )

    serve = sub.add_parser(
        "serve",
        help=(
            "bind a real TCP socket, route every arriving frame through"
            " a demux algorithm, and drive it with a seeded loop-back"
            " client swarm"
        ),
    )
    serve.add_argument(
        "--algorithm",
        default="fast-sequent:h=19",
        help=f"spec, e.g. {', '.join(available_algorithms())}",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=0, help="0 picks a free port"
    )
    serve.add_argument(
        "--clients", type=int, default=10, help="loop-back swarm size"
    )
    serve.add_argument(
        "--frames", type=int, default=20, help="frames per client"
    )
    serve.add_argument("--seed", type=int, default=7)
    serve.add_argument(
        "--concurrency",
        type=int,
        default=None,
        help="max clients connected at once (default: all)",
    )
    serve.add_argument(
        "--max-sessions",
        type=int,
        default=None,
        help="shed connections beyond this many live sessions",
    )
    serve.add_argument(
        "--drain-timeout",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="graceful-shutdown drain before cancelling handlers",
    )
    serve.add_argument(
        "--record",
        metavar="PATH",
        default=None,
        help="write the served traffic as a recorded-stream capture",
    )
    serve.add_argument(
        "--record-order",
        choices=("canonical", "arrival"),
        default="canonical",
        help=(
            "capture ordering: canonical replays byte-identically"
            " across runs; arrival keeps true interleaving"
        ),
    )
    serve.add_argument(
        "--serve-metrics",
        type=int,
        default=None,
        metavar="PORT",
        help=(
            "serve /metrics, /snapshot.json and /healthz over HTTP"
            " during the run (0 picks a free port)"
        ),
    )

    record_info = sub.add_parser(
        "record-info",
        help="validate a recorded capture and print its header",
    )
    record_info.add_argument("file", help="path to a capture .json")

    canary = sub.add_parser(
        "canary",
        help=(
            "A/B a candidate algorithm against the incumbent on one"
            " capture; exit 1 blocks the promotion"
        ),
    )
    canary.add_argument("candidate", help="candidate algorithm spec")
    canary.add_argument(
        "--incumbent",
        metavar="SPEC",
        default="fast-sequent:h=19",
        help="incumbent spec the candidate must beat",
    )
    canary.add_argument(
        "--capture",
        metavar="PATH",
        default=None,
        help=(
            "recorded capture to replay (e.g. from 'serve --record');"
            " default: a synthetic TPC/A stream"
        ),
    )
    canary.add_argument("--seed", type=int, default=7)
    canary.add_argument(
        "--users",
        type=int,
        default=300,
        help="connections in the synthetic fallback stream",
    )
    canary.add_argument(
        "--duration",
        type=float,
        default=10.0,
        help="synthetic fallback stream's simulated seconds",
    )
    canary.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timed replays per side (best-of-R)",
    )
    canary.add_argument(
        "--pps-margin",
        type=float,
        default=0.05,
        help="fractional packets/sec shortfall tolerated",
    )
    canary.add_argument(
        "--examined-margin",
        type=float,
        default=0.10,
        help="fractional p99-examined excess tolerated",
    )
    canary.add_argument(
        "--json",
        action="store_true",
        help="emit the verdict as JSON instead of text",
    )

    leak = sub.add_parser(
        "leak-audit",
        help=(
            "memory-bounds smoke: churn-storm and SYN-flood each"
            " algorithm, then audit interned keys vs live connections"
        ),
    )
    leak.add_argument(
        "--algorithms",
        nargs="+",
        default=None,
        help=(
            "specs to audit (default: fast-sequent:h=19"
            " sharded-fast-sequent:shards=4,h=19)"
        ),
    )
    leak.add_argument("--seeds", nargs="+", type=int, default=[1])
    leak.add_argument(
        "--steps",
        type=int,
        default=10000,
        help="churn-storm mutation steps per cell",
    )
    leak.add_argument(
        "--grace",
        type=int,
        default=0,
        help="allowed interned-keys overhang above the live population",
    )
    leak.add_argument(
        "--skip-flood",
        action="store_true",
        help="churn-storm cells only (faster; no full-stack pass)",
    )

    balance = sub.add_parser(
        "hash-balance", help="hash function balance comparison"
    )
    balance.add_argument("--users", type=int, default=2000)
    balance.add_argument("--chains", type=int, default=19)

    pcap = sub.add_parser(
        "pcap", help="summarize a capture written by the simulator"
    )
    pcap.add_argument("file", help="path to a .pcap file")
    pcap.add_argument(
        "--flows", action="store_true", help="per-flow breakdown"
    )

    drill = sub.add_parser(
        "recovery-drill",
        help=(
            "crash a shard mid-run and prove warm restore beats cold"
            " rebuild (writes recovery_drill.{txt,json})"
        ),
    )
    drill.add_argument(
        "--algorithms",
        nargs="+",
        metavar="SPEC",
        help="sharded specs to drill (default: the acceptance pair)",
    )
    drill.add_argument(
        "--seeds", type=int, nargs="+", help="drill seeds (default: 1 2)"
    )
    drill.add_argument("--users", type=int, default=None)
    drill.add_argument("--packets", type=int, default=None)
    drill.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="N",
        help="warm copy's checkpoint cadence in operations",
    )
    drill.add_argument(
        "--mttr-budget",
        type=float,
        default=None,
        metavar="MS",
        help="fail the drill if any recovery takes longer (milliseconds)",
    )
    drill.add_argument("--out", default="results")

    runall = sub.add_parser("run-all", help="write all artifacts to a directory")
    runall.add_argument("--out", default="results")
    runall.add_argument("--users", type=int, default=500)
    runall.add_argument("--seed", type=int, default=7)
    runall.add_argument(
        "--no-simulation", action="store_true", help="analytic artifacts only"
    )

    report = sub.add_parser("report", help="print the combined report")
    report.add_argument("--users", type=int, default=500)
    report.add_argument("--seed", type=int, default=7)
    report.add_argument(
        "--no-simulation", action="store_true", help="analytic results only"
    )

    return parser


def _cmd_tables() -> int:
    ok = True
    for table in all_text_results():
        print(table.render())
        print()
        ok = ok and table.all_ok
    return 0 if ok else 1


def _cmd_figures(args) -> int:
    wanted = {
        "4": figure4,
        "13": figure13,
        "14": figure14,
    }
    keys = [args.figure] if args.figure else ["4", "13", "14"]
    for key in keys:
        print(wanted[key](points=args.points).render())
        print()
    return 0


def _cmd_validate(args) -> int:
    result = validate_against_analytic(
        n_users=args.users,
        seed=args.seed,
        duration=args.duration,
        algorithms=args.algorithms,
        progress=lambda msg: print(f"  ... {msg}", file=sys.stderr),
    )
    print(result.render())
    return 0 if result.all_ok else 1


def _cmd_simulate(args) -> int:
    from .obs.metrics import (
        DEFAULT_EXPORT_BUCKETS,
        DemuxStatsExporter,
        MetricsRegistry,
    )
    from .obs.profile import LookupProfiler
    from .obs.trace import JsonlSink, Tracer

    algorithm = make_algorithm(args.algorithm)
    config = TPCAConfig(
        n_users=args.users,
        response_time=args.response_time,
        round_trip=args.rtt,
        duration=args.duration,
        seed=args.seed,
        think_model=make_think_model(args.think_model),
    )

    # -- fault spec: network terms drive the injector, infrastructure
    # terms (crash/stall/snapcorrupt) drive the shard supervisor.
    fault_models = []
    infra_faults = []
    if args.faults:
        from .faults.infra import parse_mixed_spec

        fault_models, infra_faults = parse_mixed_spec(args.faults)

    supervisor = None
    if args.checkpoint_every or args.crash_shards or infra_faults:
        from .faults.infra import ShardCrash, ShardStall, SnapshotCorruption
        from .recovery import ShardSupervisor
        from .smp.sharded import ShardedDemux

        if not isinstance(algorithm, ShardedDemux):
            print(
                f"error: --checkpoint-every/--crash-shards and"
                f" crash/stall/snapcorrupt faults need a sharded"
                f" algorithm, got {args.algorithm!r}",
                file=sys.stderr,
            )
            return 2
        snapshot_fault = None
        for fault in infra_faults:
            if isinstance(fault, SnapshotCorruption):
                fault.bind_seed(args.seed)
                snapshot_fault = fault
        try:
            supervisor = ShardSupervisor(
                algorithm,
                checkpoint_every=args.checkpoint_every,
                detect_after=args.detect_after,
                snapshot_fault=snapshot_fault,
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if args.crash_shards:
            try:
                supervisor.arm_crashes(
                    _parse_crash_shards(
                        args.crash_shards, algorithm.nshards, args.seed
                    )
                )
            except (ValueError, IndexError) as exc:
                print(f"error: --crash-shards: {exc}", file=sys.stderr)
                return 2
        for fault in infra_faults:
            if isinstance(fault, ShardCrash):
                supervisor.arm_crashes(
                    fault.schedule(algorithm.nshards, args.seed)
                )
            elif isinstance(fault, ShardStall):
                supervisor.arm_stalls(
                    fault.schedule(algorithm.nshards, args.seed)
                )
        algorithm = supervisor
    elif args.detect_after:
        print(
            "warning: --detect-after has no effect without"
            " --checkpoint-every, --crash-shards, or a"
            " crash/stall/snapcorrupt fault",
            file=sys.stderr,
        )

    lifecycle = (
        args.idle_timeout is not None or args.time_wait is not None
    )
    full_stack = args.full_stack or bool(fault_models) or lifecycle

    # -- telemetry plane: spans, sketches, registry ------------------
    # The span collector must exist before the simulation is built:
    # the workload's bind_tracer_clock (demux path) or the stack ctor
    # (full-stack path) binds its clock to virtual time.
    wants_spans = (
        bool(args.spans_out)
        or args.sketch
        or args.span_sample_every is not None
    )
    collector = None
    if wants_spans:
        from .obs.spans import DEFAULT_SPAN_SAMPLE_EVERY, SpanCollector

        collector = SpanCollector(
            sample_every=args.span_sample_every or DEFAULT_SPAN_SAMPLE_EVERY
        )
        collector.attach(algorithm)
    characterizer = None
    if args.sketch:
        from .obs.sketch import TrafficCharacterizer

        characterizer = TrafficCharacterizer().attach(collector)

    serve = args.serve_metrics is not None
    registry = None
    if args.metrics_out or serve or args.sketch or args.slo:
        registry = MetricsRegistry()

    if full_stack:
        from .workload.tpca import TPCAFullStackSimulation

        simulation = TPCAFullStackSimulation(
            config,
            algorithm,
            fault_models=fault_models,
            max_connections=args.max_connections,
            overflow_policy=args.overflow_policy,
            idle_timeout=args.idle_timeout,
            time_wait_timeout=args.time_wait,
            spans=collector,
        )
    else:
        simulation = TPCADemuxSimulation(config, algorithm)

    tracer = None
    if args.trace_out:
        tracer = Tracer(JsonlSink(args.trace_out))
        algorithm.tracer = tracer
        tracer.attach_simulator(simulation.sim)

    profiler = None
    if args.profile or args.profile_sample_every is not None:
        if args.profile_sample_every is not None:
            profiler = LookupProfiler(args.profile_sample_every)
        else:
            profiler = LookupProfiler()
        profiler.attach(algorithm)

    # -- registry publishers -----------------------------------------
    # Counter-backed exporters publish *deltas*, so the periodic
    # publisher and the final flush must reuse one instance each --
    # fresh exporters per tick would re-add the running totals.
    publish_steps = []
    if registry is not None:
        from .fastpath.metrics import publish_fastpath

        demux_exporter = DemuxStatsExporter(
            registry, algorithm=algorithm.name
        )
        publish_steps.append(
            lambda: demux_exporter.publish(algorithm.stats)
        )
        publish_steps.append(lambda: publish_fastpath(registry, algorithm))
        sharded_view = (
            supervisor.sharded if supervisor is not None else algorithm
        )
        if getattr(sharded_view, "shards", None) is not None:
            from .smp.metrics import publish_sharded

            publish_steps.append(
                lambda: publish_sharded(registry, sharded_view)
            )
        if supervisor is not None:
            from .recovery import publish_recovery

            publish_steps.append(
                lambda: publish_recovery(registry, supervisor)
            )
        sim_gauges = registry.gauge("sim_run", "simulation run facts")

        def publish_sim() -> None:
            sim_gauges.set(simulation.sim.events_run, name="events_run")
            sim_gauges.set(
                simulation.transactions_completed, name="transactions"
            )
            sim_gauges.set(simulation.sim.now, name="virtual_time_seconds")
            sim_gauges.set(args.users, name="users")
            sim_gauges.set(args.seed, name="seed")

        publish_steps.append(publish_sim)
        if full_stack:
            from .faults.metrics import InjectorExporter, StackFaultExporter

            host = str(simulation.server.address)
            stack_exporter = StackFaultExporter(registry, host=host)
            publish_steps.append(
                lambda: stack_exporter.publish(simulation.server)
            )
            received_counter = registry.counter(
                "packets_received_total",
                "inbound packets accepted by the stack",
            )
            received_state = {"last": 0}

            def publish_received() -> None:
                current = simulation.server.packets_received
                received_counter.inc(
                    current - received_state["last"], host=host
                )
                received_state["last"] = current

            publish_steps.append(publish_received)
            if simulation.injector is not None:
                injector_exporter = InjectorExporter(registry, host=host)
                publish_steps.append(
                    lambda: injector_exporter.publish(simulation.injector)
                )
            if simulation.server.reaper is not None:
                from .lifecycle import publish_lifecycle

                publish_steps.append(
                    lambda: publish_lifecycle(
                        registry, simulation.server.reaper
                    )
                )

    def publish_all() -> None:
        for step in publish_steps:
            step()
        if characterizer is not None:
            characterizer.publish(registry)

    # -- live telemetry server + watchdog ----------------------------
    watchdog = None
    if registry is not None:
        from .obs.watchdog import HealthWatchdog, default_rules, parse_slo_spec

        try:
            slo_kwargs = parse_slo_spec(args.slo) if args.slo else {}
        except ValueError as exc:
            print(f"error: --slo: {exc}", file=sys.stderr)
            return 2
        watchdog = HealthWatchdog(default_rules(**slo_kwargs), tracer=tracer)
    server = None
    if serve:
        from .obs.live import TelemetryServer

        def run_snapshot():
            return {
                "algorithm": algorithm.name,
                "events_run": simulation.sim.events_run,
                "virtual_time": simulation.sim.now,
                "transactions": simulation.transactions_completed,
            }

        server = TelemetryServer(
            registry,
            watchdog=watchdog,
            port=args.serve_metrics,
            extra_snapshot=run_snapshot,
            clock=lambda: simulation.sim.now,
        )
        port = server.start()
        print(
            f"  telemetry: http://127.0.0.1:{port}/metrics"
            " (/snapshot.json, /healthz)",
            file=sys.stderr,
        )

        def publish_periodically() -> None:
            with server.lock:
                publish_all()
            simulation.sim.schedule(
                args.sketch_interval, publish_periodically
            )

        simulation.sim.schedule(args.sketch_interval, publish_periodically)
    elif characterizer is not None:
        characterizer.attach_simulator(
            simulation.sim, registry, interval=args.sketch_interval
        )

    exit_code = 0
    result = simulation.run()
    print(result.summary())
    print(f"  max examined: {result.max_examined}")
    print(f"  structure: {algorithm.describe()}")
    if supervisor is not None:
        summary = supervisor.recovery_summary()
        modes = ", ".join(
            f"{mode}={count}" for mode, count in summary["modes"].items()
        )
        print(
            f"  recovery: crashes={summary['crashes_injected']}"
            f" stalls={summary['stalls_injected']}"
            f" recoveries={summary['recoveries']}"
            + (f" ({modes})" if modes else "")
            + f" dropped={summary['packets_dropped']}"
            f" checkpoints={summary['checkpoints_taken']}"
            f" corrupt={summary['checkpoint_corruptions_detected']}"
            f" mttr-max={summary['mttr_ms_max']:.2f}ms"
        )
        if summary["dead_shards"]:
            print(f"  recovery: shards still dead: {summary['dead_shards']}")
    if full_stack:
        from .faults.audit import audit_leaks, audit_stack

        stack = simulation.server
        print(
            f"  transactions: {simulation.transactions_completed},"
            f" users completed: {simulation.users_completed}/{args.users}"
        )
        drops = ", ".join(f"{k}={v}" for k, v in stack.drops.items())
        print(f"  drops: {drops}")
        if simulation.injector is not None:
            print(f"  {simulation.injector.summary()}")
            print(f"  fault digest: {simulation.injector.schedule_digest()}")
        if stack.reaper is not None:
            stats = stack.reaper.stats
            print(
                f"  reaped: idle={stack.reaped['idle']}"
                f" time-wait={stack.reaped['time-wait']}"
                f" spurious-wakeups={stats.spurious_wakeups}"
                f" timers={stats.timers_scheduled}"
            )
        audit = audit_stack(stack)
        print(f"  {audit.describe()}")
        leak = audit_leaks(stack.demux)
        print(f"  {leak.describe()}")
        if not audit.ok or not leak.ok:
            exit_code = 1

    if profiler is not None:
        print(f"  profile: {profiler.report().render()}")
    if tracer is not None:
        tracer.close()
        print(f"  trace written to {args.trace_out}")

    # -- final publish, health verdict, artifacts --------------------
    if registry is not None:
        if server is not None:
            with server.lock:
                publish_all()
        else:
            publish_all()
        if profiler is not None:
            report = profiler.report()
            profile_gauges = registry.gauge(
                "lookup_wallclock_ns", "sampled lookup latency"
            )
            profile_gauges.set(report.mean_ns, stat="mean")
            profile_gauges.set(report.p50_ns, stat="p50")
            profile_gauges.set(report.p95_ns, stat="p95")
            profile_gauges.set(report.samples, stat="samples")
        health = watchdog.evaluate(registry, now=simulation.sim.now)
        print(f"  health: {health.describe()}")
    if collector is not None:
        print(f"  {collector.summary()}")
    if characterizer is not None:
        print(f"  {characterizer.summary()}")
    if args.spans_out:
        count = collector.to_jsonl(args.spans_out)
        print(f"  {count} spans written to {args.spans_out}")
    if args.metrics_out:
        if args.metrics_out.endswith(".prom"):
            text = registry.to_prometheus(
                histogram_buckets=DEFAULT_EXPORT_BUCKETS
            )
        else:
            text = registry.to_json() + "\n"
        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"  metrics written to {args.metrics_out}")
    if server is not None:
        if args.serve_hold > 0:
            import time

            print(
                f"  holding telemetry server for {args.serve_hold:g}s",
                file=sys.stderr,
            )
            time.sleep(args.serve_hold)
        server.stop()
    return exit_code


def _cmd_obs_report(args) -> int:
    from .obs.report import load_metrics_snapshot, render_dashboard
    from .obs.spans import read_spans_jsonl

    snapshot = load_metrics_snapshot(args.metrics)
    spans = read_spans_jsonl(args.spans) if args.spans else None
    text = render_dashboard(snapshot, spans=spans)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"dashboard written to {args.out}")
    else:
        print(text)
    return 0


def _cmd_compare(args) -> int:
    from .workload.churn import ChurnConfig, ChurnWorkload
    from .workload.mixed import MixedConfig, MixedWorkload
    from .workload.polling import PollingConfig, PollingWorkload
    from .workload.tpca import TPCADemuxSimulation
    from .workload.trains import PacketTrainWorkload, TrainConfig

    def run(spec: str):
        algorithm = make_algorithm(spec)
        if args.workload == "tpca":
            return TPCADemuxSimulation(
                TPCAConfig(n_users=args.users, seed=args.seed), algorithm
            ).run()
        if args.workload == "trains":
            config = TrainConfig(
                n_connections=max(2, args.users // 10),
                n_trains=1000,
                seed=args.seed,
            )
            return PacketTrainWorkload(config, algorithm).run()
        if args.workload == "polling":
            config = PollingConfig(n_terminals=args.users, n_cycles=30)
            return PollingWorkload(config, algorithm).run()
        if args.workload == "mixed":
            config = MixedConfig(
                n_oltp_users=args.users, bulk_rate=50.0, seed=args.seed
            )
            return MixedWorkload(config, algorithm).run()
        config = ChurnConfig(n_users=args.users, seed=args.seed)
        return ChurnWorkload(config, algorithm).run()

    print(
        f"workload={args.workload} users={args.users} seed={args.seed}"
    )
    print(
        f"  {'algorithm':<18} {'PCBs/pkt':>9} {'data':>9} {'ack':>9}"
        f" {'hit rate':>9}"
    )
    for spec in args.algorithms:
        result = run(spec)
        print(
            f"  {spec:<18} {result.mean_examined:>9.2f}"
            f" {result.data_mean_examined:>9.2f}"
            f" {result.ack_mean_examined:>9.2f}"
            f" {result.cache_hit_rate:>9.2%}"
        )
    return 0


def _cmd_fault_matrix(args) -> int:
    import os

    from .faults.config import STANDARD_MIXES, FaultSpecError
    from .faults.matrix import DEFAULT_ALGORITHMS, run_fault_matrix

    standard = dict(STANDARD_MIXES)
    if args.mixes:
        mixes = []
        for entry in args.mixes:
            if entry in standard:
                mixes.append((entry, standard[entry]))
            elif "=" in entry:
                name, _, spec = entry.partition("=")
                mixes.append((name, spec))
            else:
                known = ", ".join(standard)
                raise FaultSpecError(
                    f"unknown mix {entry!r}; known: {known} (or name=SPEC)"
                )
    else:
        mixes = list(STANDARD_MIXES)

    result = run_fault_matrix(
        algorithms=args.algorithms or DEFAULT_ALGORITHMS,
        mixes=mixes,
        seeds=args.seeds,
        n_users=args.users,
        duration=args.duration,
        max_connections=args.max_connections,
        overflow_policy=args.overflow_policy,
        progress=lambda cell: print(
            f"  ... {cell.algorithm} / {cell.mix} / seed {cell.seed}:"
            f" {'ok' if cell.ok else 'FAIL'}",
            file=sys.stderr,
        ),
    )
    text = result.render_text()
    print(text)

    # Re-judge the campaign with the same SLO rules /healthz applies:
    # publish every cell's drop taxonomy and accepted-packet count
    # into a throwaway registry and let the watchdog rate it.  The
    # verdict is informational -- exit status stays with result.ok.
    from .obs.metrics import MetricsRegistry
    from .obs.watchdog import HealthWatchdog, default_rules

    registry = MetricsRegistry()
    drop_counter = registry.counter(
        "packet_drops_total", "packets dropped, by taxonomy reason"
    )
    received_counter = registry.counter(
        "packets_received_total", "inbound packets accepted by the stack"
    )
    for cell in result.cells:
        labels = {
            "algorithm": cell.algorithm,
            "mix": cell.mix,
            "seed": str(cell.seed),
        }
        received_counter.inc(cell.packets_received, **labels)
        for reason, count in cell.drops.items():
            drop_counter.inc(count, reason=reason, **labels)
    health = HealthWatchdog(default_rules()).evaluate(registry)
    print(f"watchdog: {health.describe()}")

    if args.out:
        os.makedirs(args.out, exist_ok=True)
        txt_path = os.path.join(args.out, "fault_matrix.txt")
        json_path = os.path.join(args.out, "fault_matrix.json")
        with open(txt_path, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        with open(json_path, "w", encoding="utf-8") as handle:
            handle.write(result.to_json() + "\n")
        print(f"report written to {txt_path} and {json_path}")
    return 0 if result.ok else 1


def _cmd_smp_sweep(args) -> int:
    from .smp.sweep import SMPSweepConfig, run_smp_sweep, write_sweep_artifacts

    kwargs = {
        "n_connections": args.users,
        "duration": args.duration,
        "seeds": tuple(args.seeds),
        "jobs": args.jobs,
        "workers": args.workers,
        "utilization": args.utilization,
    }
    if args.algorithms:
        kwargs["algorithms"] = tuple(args.algorithms)
    if args.shards:
        kwargs["shard_counts"] = tuple(args.shards)
    if args.steerings:
        kwargs["steerings"] = tuple(args.steerings)
    if args.batch_sizes:
        kwargs["batch_sizes"] = tuple(args.batch_sizes)
    config = SMPSweepConfig(**kwargs)

    result = run_smp_sweep(
        config,
        progress=lambda name: print(f"  ... {name}", file=sys.stderr),
    )
    print(result.render_text())
    if args.out:
        outdir = write_sweep_artifacts(
            result, args.out, bench_path=args.bench_out
        )
        written = f"{outdir}/smp_sweep.txt and {outdir}/smp_sweep.json"
        if args.bench_out:
            written += f" (bench: {args.bench_out})"
        print(f"report written to {written}")
    elif args.bench_out:
        import pathlib

        pathlib.Path(args.bench_out).write_text(result.to_json() + "\n")
        print(f"bench payload written to {args.bench_out}")
    return 0 if result.ok else 1


def _canary_stream(capture, *, users, duration, seed, quick=False):
    """The capture behind a canary run: a recorded file, or synthetic
    TPC/A traffic when none is given (``quick`` shrinks the fallback)."""
    from .workload.record import load_stream, record_tpca_stream

    if capture is not None:
        return load_stream(capture)
    if quick:
        users, duration = min(users, 200), min(duration, 10.0)
    return record_tpca_stream(n_users=users, duration=duration, seed=seed)


def _run_canary_cli(
    *,
    candidate,
    incumbent,
    capture,
    users,
    duration,
    seed,
    repeats,
    pps_margin,
    examined_margin,
    as_json=False,
    quick=False,
) -> int:
    import json as json_module

    from .fastpath.gate import CanaryConfig, run_canary
    from .workload.record import CaptureFormatError

    try:
        stream = _canary_stream(
            capture, users=users, duration=duration, seed=seed,
            quick=quick,
        )
    except (CaptureFormatError, OSError) as exc:
        print(f"error: --capture: {exc}", file=sys.stderr)
        return 2
    try:
        config = CanaryConfig(
            candidate=candidate,
            incumbent=incumbent,
            repeats=repeats,
            pps_margin=pps_margin,
            examined_margin=examined_margin,
        )
        report = run_canary(
            stream,
            config,
            progress=lambda msg: print(f"  ... {msg}", file=sys.stderr),
        )
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if as_json:
        print(json_module.dumps(report.to_json(), indent=2, sort_keys=True))
    else:
        print(report.render_text())
    return 0 if report.promoted else 1


def _cmd_canary(args) -> int:
    return _run_canary_cli(
        candidate=args.candidate,
        incumbent=args.incumbent,
        capture=args.capture,
        users=args.users,
        duration=args.duration,
        seed=args.seed,
        repeats=args.repeats,
        pps_margin=args.pps_margin,
        examined_margin=args.examined_margin,
        as_json=args.json,
    )


def _cmd_record_info(args) -> int:
    from .workload.record import CaptureFormatError, stream_info

    try:
        info = stream_info(args.file)
    except (CaptureFormatError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    width = max(len(key) for key in info)
    for key, value in info.items():
        print(f"  {key:<{width}}  {value}")
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from .serve import LoadConfig, ServeConfig, run_self_drive

    try:
        serve_config = ServeConfig(
            algorithm=args.algorithm,
            host=args.host,
            port=args.port,
            max_sessions=args.max_sessions,
            drain_timeout=args.drain_timeout,
            record_order=args.record_order,
        )
        load = LoadConfig(
            clients=args.clients,
            frames=args.frames,
            seed=args.seed,
            concurrency=args.concurrency,
        )
        algorithm = make_algorithm(args.algorithm)
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    def on_telemetry(telemetry) -> None:
        print(
            f"  telemetry: {telemetry.url('/metrics')}"
            " (/snapshot.json, /healthz)",
            file=sys.stderr,
        )

    report = asyncio.run(
        run_self_drive(
            serve_config,
            load,
            record_path=args.record,
            telemetry_port=args.serve_metrics,
            algorithm=algorithm,
            on_telemetry=(
                on_telemetry if args.serve_metrics is not None else None
            ),
        )
    )
    print(report.render_text())
    return 0 if report.ok else 1


def _cmd_bench_gate(args) -> int:
    import dataclasses

    from .fastpath.gate import (
        GateConfig,
        QUICK_CONFIG,
        SCALE_CONFIG,
        run_gate,
    )

    if args.canary is not None:
        return _run_canary_cli(
            candidate=args.canary,
            incumbent=args.incumbent,
            capture=args.capture,
            users=300,
            duration=30.0,
            seed=args.seed if args.seed is not None else 7,
            repeats=args.repeats if args.repeats is not None else 3,
            pps_margin=0.05,
            examined_margin=0.10,
            quick=args.quick,
        )
    if args.capture is not None:
        print(
            "error: --capture only applies to canary mode (--canary)",
            file=sys.stderr,
        )
        return 2

    if args.shm:
        from .smp.shm_bench import (
            QUICK_SHM_CONFIG,
            ShmBenchConfig,
            run_shm_bench,
        )

        shm_config = QUICK_SHM_CONFIG if args.quick else ShmBenchConfig()
        shm_overrides = {}
        if args.seed is not None:
            shm_overrides["seed"] = args.seed
        if args.duration is not None:
            shm_overrides["duration"] = args.duration
        if args.users is not None:
            shm_overrides["n_users"] = args.users[0]
        if args.repeats is not None:
            shm_overrides["repeats"] = args.repeats
        if shm_overrides:
            try:
                shm_config = dataclasses.replace(shm_config, **shm_overrides)
            except ValueError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
        shm_report = run_shm_bench(
            shm_config,
            args.trajectory,
            append=not args.no_append,
            progress=lambda msg: print(f"  ... {msg}", file=sys.stderr),
        )
        print(shm_report.render_text())
        # Model-vs-measured is a report, not a gate: the documented
        # result may well be "dispatcher-bound, target not met".
        return 0

    if args.scale and args.quick:
        # --quick shrinks the scale tier too: the smallest interesting
        # N with one repeat, for CI smoke runs.
        config = dataclasses.replace(
            SCALE_CONFIG, n_sweep=(10_000,), duration=2.0
        )
    elif args.scale:
        config = SCALE_CONFIG
    elif args.quick:
        config = QUICK_CONFIG
    else:
        config = GateConfig()
    overrides = {}
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.duration is not None:
        overrides["duration"] = args.duration
    if args.users is not None:
        overrides["n_sweep"] = tuple(args.users)
    if args.repeats is not None:
        overrides["repeats"] = args.repeats
    if args.threshold is not None:
        overrides["threshold"] = args.threshold
    if args.reap_idle is not None:
        overrides["reap_idle"] = args.reap_idle
    if overrides:
        try:
            config = dataclasses.replace(config, **overrides)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    report = run_gate(
        config,
        args.trajectory,
        append=not args.no_append,
        progress=lambda msg: print(f"  ... {msg}", file=sys.stderr),
    )
    print(report.render_text())
    if not report.ok and args.warn_only:
        print("warn-only: regression(s) reported but not enforced")
    return 0 if report.ok or args.warn_only else 1


#: Default structures the leak audit exercises: the plain fast path
#: and the sharded facade (whose shards intern independently).
LEAK_AUDIT_ALGORITHMS = (
    "fast-sequent:h=19",
    "sharded-fast-sequent:shards=4,h=19",
)


def _cmd_leak_audit(args) -> int:
    from .faults.audit import audit_leaks, audit_stack
    from .lifecycle.metrics import count_interned
    from .obs.metrics import MetricsRegistry
    from .obs.watchdog import HealthWatchdog, default_rules
    from .workload.adversarial import ChurnStormWorkload, SynFloodWorkload

    specs = args.algorithms or list(LEAK_AUDIT_ALGORITHMS)
    failures = []

    # Every cell's live-vs-interned pair also lands in a registry, so
    # the retained-entries SLO rule re-judges the campaign with the
    # exact logic /healthz uses (informational; the audits decide).
    registry = MetricsRegistry()
    retention = registry.gauge(
        "lifecycle_retention",
        "live PCBs vs interned fast-path keys (leak-audit pair)",
    )
    watchdog = HealthWatchdog(
        default_rules(retention_grace=float(args.grace))
    )

    def record_retention(algorithm, spec, seed, phase):
        labels = {"algorithm": spec, "seed": str(seed), "phase": phase}
        retention.set(len(algorithm), population="live_pcbs", **labels)
        interned = count_interned(algorithm)
        if interned is not None:
            retention.set(interned, population="interned_keys", **labels)

    def check(label, audit):
        print(f"  {audit.describe()}")
        if not audit.ok:
            failures.append(label)

    for spec in specs:
        for seed in args.seeds:
            label = f"{spec} seed={seed}"
            print(f"churn-storm: {label}")
            algorithm = make_algorithm(spec)
            result = ChurnStormWorkload(
                algorithm, steps=args.steps, seed=seed
            ).run()
            print(f"  {result.summary()}")
            record_retention(algorithm, spec, seed, "churn")
            check(f"churn {label}", audit_leaks(algorithm, grace=args.grace))
            # Drain the survivors: with every connection gone, the
            # intern tables must be empty -- the PR 4 leak in one line.
            for pcb in list(algorithm):
                algorithm.remove(pcb.four_tuple)
            drained = count_interned(algorithm)
            status = "OK" if not drained else f"LEAK ({drained} retained)"
            print(f"  drained: live=0 interned={drained or 0}, {status}")
            if drained:
                failures.append(f"drain {label}")

            if args.skip_flood:
                continue
            print(f"syn-flood: {label}")
            flood = SynFloodWorkload(
                algorithm=make_algorithm(spec),
                max_connections=64,
                overflow_policy="evict-oldest-embryonic",
                idle_timeout=5.0,
                time_wait_timeout=0.5,
                seed=seed,
            )
            flood_result = flood.run()
            print(f"  {flood_result.summary()}")
            reaped = flood.server.reaped
            print(
                f"  reaped: idle={reaped['idle']}"
                f" time-wait={reaped['time-wait']}"
            )
            record_retention(flood.server.demux, spec, seed, "flood")
            check(f"flood {label} (stack)", audit_stack(flood.server))
            check(
                f"flood {label} (leaks)",
                audit_leaks(flood.server.demux, grace=args.grace),
            )

    health = watchdog.evaluate(registry)
    print(f"watchdog: {health.describe()}")
    if failures:
        print(f"leak-audit: {len(failures)} FAILURE(S): {', '.join(failures)}")
        return 1
    print("leak-audit: all cells OK")
    return 0


def _cmd_hash_balance(args) -> int:
    config = TPCAConfig(n_users=args.users)
    keys = [config.user_tuple(i) for i in range(args.users)]
    print(
        f"{args.users} TPC/A connections over {args.chains} chains"
        f" (ideal scan {(args.users / args.chains + 1) / 2:.2f}):"
    )
    for name, balance in compare_functions(HASH_FUNCTIONS, keys, args.chains):
        print(f"  {name:<18} {balance.summary()}")
    return 0


def _cmd_pcap(args) -> int:
    from .sim.pcap import PcapReader

    records = PcapReader(args.file).read_all()
    if not records:
        print(f"{args.file}: empty capture")
        return 0
    first, last = records[0][0], records[-1][0]
    total_bytes = sum(packet.wire_length for _, packet in records)
    pure_acks = sum(1 for _, packet in records if packet.is_pure_ack)
    print(f"{args.file}: {len(records)} packets,"
          f" {total_bytes} IP bytes,"
          f" {last - first:.6f}s span")
    print(f"  pure acks: {pure_acks},"
          f" data/control: {len(records) - pure_acks}")
    if args.flows:
        flows = {}
        for _, packet in records:
            # Normalize both directions onto one flow key.
            tup = packet.four_tuple
            key = min(
                (str(tup.local_addr), tup.local_port,
                 str(tup.remote_addr), tup.remote_port),
                (str(tup.remote_addr), tup.remote_port,
                 str(tup.local_addr), tup.local_port),
            )
            entry = flows.setdefault(key, {"packets": 0, "bytes": 0})
            entry["packets"] += 1
            entry["bytes"] += len(packet.tcp.payload)
        print(f"  {len(flows)} flows:")
        for key, entry in sorted(flows.items()):
            a_addr, a_port, b_addr, b_port = key
            print(
                f"    {a_addr}:{a_port} <-> {b_addr}:{b_port}:"
                f" {entry['packets']} pkts,"
                f" {entry['bytes']} payload bytes"
            )
    return 0


def _parse_crash_shards(spec: str, nshards: int, seed: int):
    """``--crash-shards``: explicit ``S@P,...`` pairs, or a seeded
    ``K[:W]`` count routed through :class:`~repro.faults.infra.ShardCrash`
    so the CLI and the fault grammar crash identically."""
    from .faults.infra import ShardCrash

    spec = spec.strip()
    if "@" in spec:
        schedule = []
        for term in spec.split(","):
            term = term.strip()
            if not term:
                continue
            try:
                shard_text, packet_text = term.split("@")
                shard, packet = int(shard_text), int(packet_text)
            except ValueError:
                raise ValueError(
                    f"bad --crash-shards term {term!r}: expected SHARD@PACKET"
                ) from None
            schedule.append((packet, shard))
        return sorted(schedule)
    count, _, window = spec.partition(":")
    try:
        crash = ShardCrash(
            count=int(count), window=int(window) if window else 1000
        )
    except ValueError as exc:
        raise ValueError(f"bad --crash-shards spec {spec!r}: {exc}") from None
    return crash.schedule(nshards, seed)


def _cmd_recovery_drill(args) -> int:
    import json as json_module
    import pathlib

    from .recovery import DrillConfig, run_recovery_drill

    overrides = {}
    if args.algorithms:
        overrides["algorithms"] = tuple(args.algorithms)
    if args.seeds:
        overrides["seeds"] = tuple(args.seeds)
    if args.users is not None:
        overrides["n_users"] = args.users
    if args.packets is not None:
        overrides["n_packets"] = args.packets
    if args.checkpoint_every is not None:
        overrides["checkpoint_every"] = args.checkpoint_every
    if args.mttr_budget is not None:
        overrides["mttr_budget_ms"] = args.mttr_budget
    result = run_recovery_drill(DrillConfig(**overrides))

    outdir = pathlib.Path(args.out)
    outdir.mkdir(parents=True, exist_ok=True)
    text = result.render_text()
    (outdir / "recovery_drill.txt").write_text(text + "\n")
    (outdir / "recovery_drill.json").write_text(
        json_module.dumps(result.to_json(), indent=2, sort_keys=True) + "\n"
    )
    print(text)
    print(f"  artifacts written to {outdir}/recovery_drill.{{txt,json}}")
    return 0 if result.ok else 1


def _cmd_run_all(args) -> int:
    outdir = run_all(
        args.out,
        include_simulation=not args.no_simulation,
        sim_users=args.users,
        seed=args.seed,
        progress=lambda msg: print(f"  ... {msg}", file=sys.stderr),
    )
    print(f"artifacts written to {outdir}/")
    return 0


def _cmd_report(args) -> int:
    print(
        build_report(
            include_simulation=not args.no_simulation,
            sim_users=args.users,
            seed=args.seed,
            progress=lambda msg: print(f"  ... {msg}", file=sys.stderr),
        )
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "tables": lambda: _cmd_tables(),
        "figures": lambda: _cmd_figures(args),
        "validate": lambda: _cmd_validate(args),
        "simulate": lambda: _cmd_simulate(args),
        "obs-report": lambda: _cmd_obs_report(args),
        "compare": lambda: _cmd_compare(args),
        "fault-matrix": lambda: _cmd_fault_matrix(args),
        "smp-sweep": lambda: _cmd_smp_sweep(args),
        "bench-gate": lambda: _cmd_bench_gate(args),
        "serve": lambda: _cmd_serve(args),
        "record-info": lambda: _cmd_record_info(args),
        "canary": lambda: _cmd_canary(args),
        "leak-audit": lambda: _cmd_leak_audit(args),
        "hash-balance": lambda: _cmd_hash_balance(args),
        "pcap": lambda: _cmd_pcap(args),
        "recovery-drill": lambda: _cmd_recovery_drill(args),
        "run-all": lambda: _cmd_run_all(args),
        "report": lambda: _cmd_report(args),
    }
    return handlers[args.command]()


if __name__ == "__main__":
    sys.exit(main())
