"""The host TCP stack: the inbound path the paper measures.

A :class:`HostStack` owns one IP address, one PCB table (with a
pluggable demultiplexing algorithm -- the paper's variable), and the
endpoints of its connections.  Its :meth:`deliver` method is the code
path the whole reproduction is about:

1. classify the inbound segment (data vs. pure transport-level ack);
2. run the demux algorithm's cost-accounted PCB lookup;
3. on a miss, consult the listener table (SYNs for new connections);
4. hand the segment to the endpoint state machine.

Outbound packets update the algorithm's send-side knowledge
(:meth:`~repro.core.base.DemuxAlgorithm.note_send`), which is what the
Partridge/Pink cache keys on.

Robustness contract (exercised by :mod:`repro.faults`): ``deliver``
never lets a parsing error escape into the simulator event loop.  Raw
bytes that fail IP/TCP parsing or checksum verification are counted
and dropped, and every drop is classified into a small taxonomy
(:data:`DROP_REASONS`) that :func:`repro.faults.metrics.publish_stack`
exports through the observability registry.
"""

from __future__ import annotations

import itertools
from typing import Callable, Optional, Union

from ..core.base import DemuxAlgorithm
from ..core.pcb import PCB
from ..core.stats import PacketKind
from ..lifecycle.reaper import ConnectionReaper
from ..packet.addresses import FourTuple, IPv4Address
from ..packet.builder import Packet, parse_packet
from ..packet.ip import IPv4Header, PacketError
from ..packet.tcp import TCPFlags, TCPSegment
from ..sim.engine import Simulator
from ..sim.network import Network
from ..sim.trace import Tracer
from .endpoint import TCPEndpoint
from .listener import Listener
from .pcb_table import PCBTable
from .states import TCPState

__all__ = ["DROP_REASONS", "HostStack"]

_EPHEMERAL_BASE = 49152

#: The inbound drop taxonomy.  "corrupt": bytes that failed parsing or
#: checksum; "no-listener": SYN with no (or refusing) listener;
#: "table-full": SYN shed because the bounded PCB table was at
#: capacity; "bad-state": non-SYN segment matching no connection.
DROP_REASONS = ("corrupt", "no-listener", "table-full", "bad-state")


class HostStack:
    """One simulated host's TCP implementation."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        address: Union[str, IPv4Address],
        algorithm: DemuxAlgorithm,
        *,
        mss: int = 536,
        tracer: Optional[Tracer] = None,
        delayed_ack: bool = False,
        max_connections: Optional[int] = None,
        overflow_policy: str = "reject-new",
        idle_timeout: Optional[float] = None,
        time_wait_timeout: Optional[float] = None,
        reap_interval: Optional[float] = None,
        spans: Optional[object] = None,
    ):
        self.sim = sim
        self.network = network
        self._address = IPv4Address(address)
        self.table = PCBTable(
            algorithm,
            max_connections=max_connections,
            overflow_policy=overflow_policy,
        )
        self._tracer = tracer or Tracer(enabled=False)
        #: Optional :class:`repro.obs.SpanCollector`: ``deliver`` opens
        #: one packet context per inbound segment, the demux lookup and
        #: drop taxonomy add stages inside it, and reaper evictions are
        #: recorded as standalone ``reap`` spans.  Attaching here also
        #: hooks the demux algorithm and binds the virtual clock.
        self.spans = spans
        if spans is not None:
            algorithm.spans = spans
            if spans.clock is None:
                spans.clock = lambda: self.sim.now
        self._mss = mss
        self._delayed_ack = delayed_ack
        self._iss_counter = itertools.count(1000, 64000)
        self._port_counter = itertools.count(_EPHEMERAL_BASE)
        # Inbound-path counters.
        self.packets_received = 0
        self.packets_sent = 0
        self.demux_misses_to_listener = 0
        self.demux_drops = 0
        self.resets_sent = 0
        self.out_of_order = 0
        #: Inbound drops classified by :data:`DROP_REASONS`.
        self.drops = {reason: 0 for reason in DROP_REASONS}
        #: Connections evicted by the lifecycle reaper, by reason.
        self.reaped = {"idle": 0, "time-wait": 0}
        #: Lifecycle reaper, or ``None`` when no timeout is configured.
        self.reaper: Optional[ConnectionReaper] = None
        if idle_timeout is not None or time_wait_timeout is not None:
            self.reaper = ConnectionReaper(
                self.table.algorithm,
                idle_timeout=idle_timeout,
                time_wait=time_wait_timeout,
                on_reap=self._reap_connection,
                clock=lambda: self.sim.now,
            )
            shortest = min(
                value
                for value in (idle_timeout, time_wait_timeout)
                if value is not None
            )
            self._reap_interval = (
                reap_interval if reap_interval is not None
                else max(shortest / 4.0, 4 * self.reaper.wheel.tick)
            )
            # NOTE: the periodic tick keeps the simulator's event queue
            # non-empty, so lifecycle-enabled runs must use
            # ``sim.run(until=...)``, never a bare drain-the-queue run.
            self.sim.schedule(self._reap_interval, self._reap_tick)
        network.attach(self)

    # -- Host protocol ------------------------------------------------------

    @property
    def address(self) -> IPv4Address:
        return self._address

    @property
    def demux(self) -> DemuxAlgorithm:
        """The pluggable PCB-lookup algorithm under study."""
        return self.table.algorithm

    def drop(self, reason: str, detail: str = "") -> None:
        """Count one inbound drop under the given taxonomy reason."""
        if reason not in self.drops:
            raise ValueError(f"unknown drop reason {reason!r}")
        self.drops[reason] += 1
        if self.spans is not None:
            # Attaches to the current packet's span, if one is open and
            # sampled; corrupt drops happen before any context exists
            # (no four-tuple is known) and are a collector no-op.
            self.spans.stage("drop", reason=reason)
        self.trace("drop", detail or reason, reason=reason)

    def deliver(self, packet: Union[Packet, bytes, bytearray, memoryview]) -> None:
        """The inbound path: demultiplex, then run the state machine.

        Accepts either an in-memory :class:`Packet` (the fast path the
        simulations use) or raw bytes off the wire, which are parsed
        with full checksum verification.  Malformed or corrupted bytes
        are counted (``drops["corrupt"]``) and dropped -- a
        ``PacketError`` never propagates into the simulator event loop.
        """
        self.packets_received += 1
        if isinstance(packet, (bytes, bytearray, memoryview)):
            try:
                packet = parse_packet(bytes(packet))
            except PacketError as exc:
                self.drop("corrupt", f"unparseable inbound bytes: {exc}")
                return
        segment = packet.tcp
        kind = PacketKind.ACK if segment.is_pure_ack else PacketKind.DATA
        tup = packet.four_tuple
        spans = self.spans
        if spans is None:
            self._deliver_segment(packet, segment, tup, kind)
            return
        spans.open_packet(tup, kind, owner="stack")
        try:
            self._deliver_segment(packet, segment, tup, kind)
        finally:
            spans.close_packet("stack")

    def _deliver_segment(
        self, packet: Packet, segment: TCPSegment, tup: FourTuple,
        kind: PacketKind,
    ) -> None:
        """Demux and dispatch one parsed segment (span context open)."""
        result = self.table.lookup(tup, kind)
        self.trace(
            "demux", f"{tup}", kind=kind.value, examined=result.examined,
            hit=result.cache_hit,
        )
        if result.found:
            endpoint = result.pcb.user_data
            if isinstance(endpoint, TCPEndpoint):
                if self.spans is not None:
                    self.spans.stage("deliver", target="endpoint")
                endpoint.handle(packet)
            return
        # No established connection: a SYN may create one.
        if segment.is_syn and not segment.is_ack:
            self._handle_listener_syn(packet, tup)
            return
        self.demux_drops += 1
        self.drop("bad-state", f"stray segment {tup}")
        if not segment.is_rst:
            self._send_reset(packet)

    # -- passive open ------------------------------------------------------

    def _handle_listener_syn(self, packet: Packet, tup: FourTuple) -> None:
        listener = self.table.find_listener(tup.local_addr, tup.local_port)
        if listener is None:
            self.demux_drops += 1
            self.drop("no-listener", f"SYN for {tup}")
            self._send_reset(packet)
            return
        if self.table.is_full and not self._make_room():
            # Shed the SYN silently (no RST): under a SYN flood an
            # answer per refused SYN would double the attack's cost.
            self.demux_drops += 1
            self.drop("table-full", f"SYN for {tup}")
            return
        if not listener.admit():
            self.demux_drops += 1
            self.drop("no-listener", f"SYN refused (backlog) for {tup}")
            self._send_reset(packet)
            return
        self.demux_misses_to_listener += 1
        if self.spans is not None:
            self.spans.stage("deliver", target="listener")
        pcb = PCB(tup, mss=self._mss)

        def on_establish(endpoint: TCPEndpoint) -> None:
            listener.established(endpoint)

        def on_close(endpoint: TCPEndpoint) -> None:
            if endpoint.state is not TCPState.ESTABLISHED and endpoint.aborted:
                listener.handshake_failed()
            self._close_callback(listener, endpoint)

        endpoint = TCPEndpoint(
            self,
            pcb,
            on_data=listener.on_data,
            on_establish=on_establish,
            on_close=on_close,
            delayed_ack=self._delayed_ack,
        )
        self.table.insert(pcb)
        endpoint.open_passive(packet)

    @staticmethod
    def _close_callback(listener: Listener, endpoint: TCPEndpoint) -> None:
        if listener.on_close:
            listener.on_close(endpoint)

    def _make_room(self) -> bool:
        """Try to free one table slot for a new connection.

        Under ``evict-oldest-embryonic``, the oldest handshake-phase
        connection is aborted (RST to its peer, timers cancelled, PCB
        removed via the normal teardown path).  Established connections
        are never evicted.  Returns True if a slot is now free.
        """
        if self.table.overflow_policy != "evict-oldest-embryonic":
            return False
        victim = self.table.embryonic_victim()
        if victim is None:
            return False
        self.table.embryonic_evictions += 1
        self.trace("evict", f"{victim.four_tuple}", state=victim.state)
        endpoint = victim.user_data
        if isinstance(endpoint, TCPEndpoint):
            endpoint.abort()  # teardown removes the PCB via forget()
        else:
            self.table.remove(victim.four_tuple)
        return not self.table.is_full

    def listen(
        self,
        port: int,
        *,
        address: Optional[IPv4Address] = None,
        on_accept: Optional[Callable[[TCPEndpoint], None]] = None,
        on_data: Optional[Callable[[TCPEndpoint, bytes], None]] = None,
        on_close: Optional[Callable[[TCPEndpoint], None]] = None,
        backlog: int = 0,
    ) -> Listener:
        """Open a passive socket; returns the :class:`Listener`."""
        listener = Listener(
            self,
            port,
            address=address,
            on_accept=on_accept,
            on_data=on_data,
            on_close=on_close,
            backlog=backlog,
        )
        self.table.add_listener(port, listener, address)
        return listener

    # -- active open ---------------------------------------------------------

    def connect(
        self,
        remote_addr: Union[str, IPv4Address],
        remote_port: int,
        *,
        local_port: Optional[int] = None,
        on_data: Optional[Callable[[TCPEndpoint, bytes], None]] = None,
        on_establish: Optional[Callable[[TCPEndpoint], None]] = None,
        on_close: Optional[Callable[[TCPEndpoint], None]] = None,
    ) -> TCPEndpoint:
        """Open a connection; the returned endpoint is in SYN_SENT."""
        tup = FourTuple.create(
            self._address,
            self.allocate_port() if local_port is None else local_port,
            IPv4Address(remote_addr),
            remote_port,
        )
        pcb = PCB(tup, mss=self._mss)
        endpoint = TCPEndpoint(
            self,
            pcb,
            on_data=on_data,
            on_establish=on_establish,
            on_close=on_close,
            delayed_ack=self._delayed_ack,
        )
        self.table.insert(pcb)
        endpoint.open_active()
        return endpoint

    def allocate_port(self) -> int:
        """Next ephemeral port (wraps back to the base at 65535)."""
        port = next(self._port_counter)
        if port > 0xFFFF:
            self._port_counter = itertools.count(_EPHEMERAL_BASE)
            port = next(self._port_counter)
        return port

    def next_iss(self) -> int:
        """Deterministic initial send sequence (RFC-793-style clock)."""
        return next(self._iss_counter) & 0xFFFFFFFF

    # -- outbound and bookkeeping -------------------------------------------

    def transmit(self, endpoint: TCPEndpoint, packet: Packet) -> None:
        """Send an endpoint's packet; updates send-side demux state."""
        self.packets_sent += 1
        endpoint.pcb.note_send(len(packet.tcp.payload))
        self.table.note_send(endpoint.pcb)
        self.trace("send", f"{packet}")
        self.network.send(packet)

    def _send_reset(self, offending: Packet) -> None:
        """RST for a segment with no home (RFC 793 rules, simplified)."""
        self.resets_sent += 1
        seg = offending.tcp
        if seg.is_ack:
            seq, ack, flags = seg.ack, 0, TCPFlags.RST
        else:
            seq = 0
            ack = (seg.seq + seg.segment_length) & 0xFFFFFFFF
            flags = TCPFlags.RST | TCPFlags.ACK
        reset = TCPSegment(
            src_port=seg.dst_port,
            dst_port=seg.src_port,
            seq=seq,
            ack=ack,
            flags=flags,
        )
        packet = Packet(
            ip=IPv4Header(src=offending.ip.dst, dst=offending.ip.src), tcp=reset
        )
        self.packets_sent += 1
        self.network.send(packet)

    def forget(self, endpoint: TCPEndpoint) -> None:
        """Remove a closed endpoint's PCB from the demux table."""
        tup = endpoint.pcb.four_tuple
        try:
            self.table.remove(tup)
        except KeyError:
            pass  # already removed (abort during teardown)

    # -- connection lifecycle (reaper-driven) -------------------------------

    def _reap_tick(self) -> None:
        self.reaper.advance(self.sim.now)
        self.sim.schedule(self._reap_interval, self._reap_tick)

    def _reap_connection(self, pcb: PCB, reason: str) -> None:
        """The reaper decided ``pcb`` must go; tear it down properly.

        TIME-WAIT connections finish their quarantine through the
        normal close path; everything else is aborted (RST to the
        peer, timers cancelled) so idle eviction is visible on the
        wire, as a real stack's keepalive failure would be.
        """
        self.reaped[reason] += 1
        if self.spans is not None:
            self.spans.note_reap(pcb.four_tuple, reason)
        self.trace("reap", f"{pcb.four_tuple}", reason=reason, state=pcb.state)
        endpoint = pcb.user_data
        if isinstance(endpoint, TCPEndpoint):
            if endpoint.state is TCPState.TIME_WAIT:
                endpoint.expire_time_wait()
            else:
                endpoint.abort()  # teardown removes the PCB via forget()
        else:
            try:
                self.table.remove(pcb.four_tuple)
            except KeyError:
                pass

    def count_out_of_order(self) -> None:
        self.out_of_order += 1

    def trace(self, category: str, message: str, **data) -> None:
        self._tracer.record(self.sim.now, category, message, **data)

    def __repr__(self) -> str:
        return (
            f"<HostStack {self._address} {self.demux.name}"
            f" pcbs={len(self.table)}>"
        )
