"""The host's PCB table: pluggable demux algorithm plus listener table.

Inbound segment classification follows the paper's world:

1. the *established-connection* lookup runs through one of the
   :mod:`repro.core` algorithms (this is the search the paper costs);
2. if no connection matches, a *listener* table is consulted by
   (local address, local port) with address wildcarding -- the path a
   SYN for a new connection takes.

Historically BSD kept listening PCBs on the same linear list and
wildcard-matched during the one scan; separating the tables keeps the
measured algorithms exactly as the paper models them (exact 96-bit
match), and the listener probe is not charged to the demux statistics.
DESIGN.md records this choice.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from ..core.base import DemuxAlgorithm, LookupResult
from ..core.pcb import PCB
from ..core.stats import PacketKind
from ..packet.addresses import FourTuple, IPv4Address

__all__ = ["ListenerKey", "PCBTable"]

#: (local address or None for wildcard, local port)
ListenerKey = Tuple[Optional[IPv4Address], int]


class PCBTable:
    """Established-connection demux + listener lookup for one host."""

    def __init__(self, algorithm: DemuxAlgorithm):
        self._algorithm = algorithm
        self._listeners: Dict[ListenerKey, object] = {}

    @property
    def algorithm(self) -> DemuxAlgorithm:
        """The pluggable established-connection lookup structure."""
        return self._algorithm

    # -- established connections -----------------------------------------

    def insert(self, pcb: PCB) -> None:
        self._algorithm.insert(pcb)

    def remove(self, tup: FourTuple) -> PCB:
        return self._algorithm.remove(tup)

    def lookup(self, tup: FourTuple, kind: PacketKind) -> LookupResult:
        """The cost-accounted lookup the paper studies."""
        return self._algorithm.lookup(tup, kind)

    def note_send(self, pcb: PCB) -> None:
        self._algorithm.note_send(pcb)

    def __len__(self) -> int:
        return len(self._algorithm)

    def __iter__(self) -> Iterator[PCB]:
        return iter(self._algorithm)

    # -- listeners ---------------------------------------------------------

    def add_listener(
        self, port: int, owner: object, address: Optional[IPv4Address] = None
    ) -> None:
        """Register a listening socket on (address, port).

        ``address=None`` listens on all local addresses (INADDR_ANY).
        """
        key: ListenerKey = (address, port)
        if key in self._listeners:
            raise ValueError(f"already listening on {address or '*'}:{port}")
        self._listeners[key] = owner

    def remove_listener(self, port: int, address: Optional[IPv4Address] = None):
        return self._listeners.pop((address, port))  # KeyError if absent

    def find_listener(self, local_addr: IPv4Address, local_port: int):
        """Exact (addr, port) match first, then the wildcard."""
        owner = self._listeners.get((local_addr, local_port))
        if owner is None:
            owner = self._listeners.get((None, local_port))
        return owner

    @property
    def listener_count(self) -> int:
        return len(self._listeners)
