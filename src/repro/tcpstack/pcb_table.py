"""The host's PCB table: pluggable demux algorithm plus listener table.

Inbound segment classification follows the paper's world:

1. the *established-connection* lookup runs through one of the
   :mod:`repro.core` algorithms (this is the search the paper costs);
2. if no connection matches, a *listener* table is consulted by
   (local address, local port) with address wildcarding -- the path a
   SYN for a new connection takes.

Historically BSD kept listening PCBs on the same linear list and
wildcard-matched during the one scan; separating the tables keeps the
measured algorithms exactly as the paper models them (exact 96-bit
match), and the listener probe is not charged to the demux statistics.
DESIGN.md records this choice.

The table can be *bounded* (``max_connections``), which a production
demultiplexer needs to survive connection storms: a full table either
rejects new connections (``overflow_policy="reject-new"``) or makes
room by evicting the oldest *embryonic* connection -- one still in
handshake, the SYN-flood signature -- via
``overflow_policy="evict-oldest-embryonic"``.  Established connections
are never evicted.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, Optional, Tuple

from ..core.base import DemuxAlgorithm, DemuxError, LookupResult
from ..core.pcb import PCB
from ..core.stats import PacketKind
from ..packet.addresses import FourTuple, IPv4Address

__all__ = [
    "EMBRYONIC_STATES",
    "ListenerKey",
    "OVERFLOW_POLICIES",
    "PCBTable",
    "TableFullError",
]

#: (local address or None for wildcard, local port)
ListenerKey = Tuple[Optional[IPv4Address], int]

#: Connection states that have not completed a handshake; these are the
#: only eviction candidates under ``evict-oldest-embryonic``.
EMBRYONIC_STATES = frozenset({"LISTEN", "SYN_SENT", "SYN_RCVD"})

OVERFLOW_POLICIES = ("reject-new", "evict-oldest-embryonic")


class TableFullError(DemuxError):
    """Raised when inserting into a bounded table at capacity."""


class PCBTable:
    """Established-connection demux + listener lookup for one host."""

    def __init__(
        self,
        algorithm: DemuxAlgorithm,
        *,
        max_connections: Optional[int] = None,
        overflow_policy: str = "reject-new",
    ):
        if max_connections is not None and max_connections < 1:
            raise ValueError(
                f"max_connections must be >= 1, got {max_connections}"
            )
        if overflow_policy not in OVERFLOW_POLICIES:
            raise ValueError(
                f"unknown overflow policy {overflow_policy!r};"
                f" known: {', '.join(OVERFLOW_POLICIES)}"
            )
        self._algorithm = algorithm
        self._listeners: Dict[ListenerKey, object] = {}
        self.max_connections = max_connections
        self.overflow_policy = overflow_policy
        #: Inserts refused because the table was full (reject-new, or
        #: evict policy with no embryonic victim available).
        self.overflow_rejections = 0
        #: Embryonic connections evicted to admit new ones.
        self.embryonic_evictions = 0
        self._insert_seq = itertools.count()
        self._order: Dict[FourTuple, int] = {}

    @property
    def algorithm(self) -> DemuxAlgorithm:
        """The pluggable established-connection lookup structure."""
        return self._algorithm

    # -- established connections -----------------------------------------

    @property
    def is_full(self) -> bool:
        return (
            self.max_connections is not None
            and len(self._algorithm) >= self.max_connections
        )

    def embryonic_victim(self) -> Optional[PCB]:
        """The oldest-inserted embryonic PCB, or ``None``.

        O(N) scan; only runs when a bounded table is full, where
        shedding work dominates the scan cost anyway.
        """
        victim: Optional[PCB] = None
        victim_seq = 0
        for pcb in self._algorithm:
            if pcb.state not in EMBRYONIC_STATES:
                continue
            seq = self._order.get(pcb.four_tuple, -1)
            if victim is None or seq < victim_seq:
                victim, victim_seq = pcb, seq
        return victim

    def insert(self, pcb: PCB) -> None:
        """Install a PCB; raises :class:`TableFullError` at capacity.

        Callers wanting the eviction policy (the stack's SYN path)
        check :attr:`is_full` and evict *before* inserting -- the
        table itself never tears down live endpoints.
        """
        if self.is_full:
            self.overflow_rejections += 1
            raise TableFullError(
                f"PCB table full ({self.max_connections} connections)"
            )
        self._algorithm.insert(pcb)
        self._order[pcb.four_tuple] = next(self._insert_seq)

    def remove(self, tup: FourTuple) -> PCB:
        pcb = self._algorithm.remove(tup)
        self._order.pop(tup, None)
        return pcb

    def lookup(self, tup: FourTuple, kind: PacketKind) -> LookupResult:
        """The cost-accounted lookup the paper studies."""
        return self._algorithm.lookup(tup, kind)

    def note_send(self, pcb: PCB) -> None:
        self._algorithm.note_send(pcb)

    def __len__(self) -> int:
        return len(self._algorithm)

    def __iter__(self) -> Iterator[PCB]:
        return iter(self._algorithm)

    def state_census(self) -> Dict[str, int]:
        """Live PCBs bucketed by TCP state (O(N); diagnostics only)."""
        census: Dict[str, int] = {}
        for pcb in self._algorithm:
            census[pcb.state] = census.get(pcb.state, 0) + 1
        return census

    @property
    def time_wait_count(self) -> int:
        """Connections lingering in TIME-WAIT, the reaper's main prey."""
        return sum(
            1 for pcb in self._algorithm if pcb.state == "TIME_WAIT"
        )

    # -- listeners ---------------------------------------------------------

    def add_listener(
        self, port: int, owner: object, address: Optional[IPv4Address] = None
    ) -> None:
        """Register a listening socket on (address, port).

        ``address=None`` listens on all local addresses (INADDR_ANY).
        """
        key: ListenerKey = (address, port)
        if key in self._listeners:
            raise ValueError(f"already listening on {address or '*'}:{port}")
        self._listeners[key] = owner

    def remove_listener(self, port: int, address: Optional[IPv4Address] = None):
        return self._listeners.pop((address, port))  # KeyError if absent

    def find_listener(self, local_addr: IPv4Address, local_port: int):
        """Exact (addr, port) match first, then the wildcard."""
        owner = self._listeners.get((local_addr, local_port))
        if owner is None:
            owner = self._listeners.get((None, local_port))
        return owner

    @property
    def listener_count(self) -> int:
        return len(self._listeners)
