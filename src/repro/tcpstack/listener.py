"""Listening sockets: passive open and connection acceptance."""

from __future__ import annotations

from typing import Callable, List, Optional

from ..packet.addresses import IPv4Address
from .endpoint import TCPEndpoint

__all__ = ["Listener"]


class Listener:
    """A passive socket on (address, port), owned by a HostStack.

    ``on_accept(endpoint)`` fires when a new connection completes its
    handshake (reaches ESTABLISHED); connections are also queued on
    :attr:`accepted` for pull-style consumers.  ``on_data`` /
    ``on_close`` are installed on every accepted endpoint.
    """

    def __init__(
        self,
        stack,
        port: int,
        *,
        address: Optional[IPv4Address] = None,
        on_accept: Optional[Callable[[TCPEndpoint], None]] = None,
        on_data: Optional[Callable[[TCPEndpoint, bytes], None]] = None,
        on_close: Optional[Callable[[TCPEndpoint], None]] = None,
        backlog: int = 0,
    ):
        self._stack = stack
        self.port = port
        self.address = address
        self.on_accept = on_accept
        self.on_data = on_data
        self.on_close = on_close
        #: 0 means unlimited (simulation convenience).
        self.backlog = backlog
        self.accepted: List[TCPEndpoint] = []
        self.syn_count = 0
        self.refused = 0
        self._half_open = 0
        self._closed = False

    @property
    def is_closed(self) -> bool:
        return self._closed

    def admit(self) -> bool:
        """Called by the stack per inbound SYN; False refuses (backlog)."""
        if self._closed:
            return False
        self.syn_count += 1
        if self.backlog and self._half_open >= self.backlog:
            self.refused += 1
            return False
        self._half_open += 1
        return True

    def established(self, endpoint: TCPEndpoint) -> None:
        """Called by the stack when an admitted connection completes."""
        self._half_open = max(0, self._half_open - 1)
        self.accepted.append(endpoint)
        if self.on_accept:
            self.on_accept(endpoint)

    def handshake_failed(self) -> None:
        """Called if an admitted connection dies before ESTABLISHED."""
        self._half_open = max(0, self._half_open - 1)

    def close(self) -> None:
        """Stop accepting; existing connections are unaffected."""
        if not self._closed:
            self._closed = True
            self._stack.table.remove_listener(self.port, self.address)

    def __repr__(self) -> str:
        where = self.address or "*"
        return f"<Listener {where}:{self.port} accepted={len(self.accepted)}>"
