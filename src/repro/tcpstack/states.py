"""TCP connection states and legal transitions (RFC 793 subset).

The reproduction needs real connections -- the PCBs the demultiplexer
searches belong to endpoints that performed a handshake and will
eventually tear down -- so the stack carries the RFC 793 state machine
for the paths it exercises: passive/active open, data transfer, and
orderly close from either side.  Simultaneous open and most RST edge
cases are validated as transitions but not driven by the workloads.
"""

from __future__ import annotations

import enum
from typing import Dict, FrozenSet

__all__ = ["TCPState", "TCPStateError", "can_transition", "check_transition"]


class TCPState(enum.Enum):
    """RFC 793 connection states."""

    CLOSED = "CLOSED"
    LISTEN = "LISTEN"
    SYN_SENT = "SYN_SENT"
    SYN_RCVD = "SYN_RCVD"
    ESTABLISHED = "ESTABLISHED"
    FIN_WAIT_1 = "FIN_WAIT_1"
    FIN_WAIT_2 = "FIN_WAIT_2"
    CLOSE_WAIT = "CLOSE_WAIT"
    CLOSING = "CLOSING"
    LAST_ACK = "LAST_ACK"
    TIME_WAIT = "TIME_WAIT"

    def __str__(self) -> str:
        return self.value


class TCPStateError(Exception):
    """Raised on an illegal state transition."""


#: Legal transitions, per the RFC 793 state diagram (RST paths collapse
#: to CLOSED from any synchronized state).
_TRANSITIONS: Dict[TCPState, FrozenSet[TCPState]] = {
    TCPState.CLOSED: frozenset({TCPState.LISTEN, TCPState.SYN_SENT}),
    TCPState.LISTEN: frozenset(
        {TCPState.SYN_RCVD, TCPState.SYN_SENT, TCPState.CLOSED}
    ),
    TCPState.SYN_SENT: frozenset(
        {TCPState.ESTABLISHED, TCPState.SYN_RCVD, TCPState.CLOSED}
    ),
    TCPState.SYN_RCVD: frozenset(
        {TCPState.ESTABLISHED, TCPState.FIN_WAIT_1, TCPState.CLOSED}
    ),
    TCPState.ESTABLISHED: frozenset(
        {TCPState.FIN_WAIT_1, TCPState.CLOSE_WAIT, TCPState.CLOSED}
    ),
    TCPState.FIN_WAIT_1: frozenset(
        {TCPState.FIN_WAIT_2, TCPState.CLOSING, TCPState.TIME_WAIT, TCPState.CLOSED}
    ),
    TCPState.FIN_WAIT_2: frozenset({TCPState.TIME_WAIT, TCPState.CLOSED}),
    TCPState.CLOSE_WAIT: frozenset({TCPState.LAST_ACK, TCPState.CLOSED}),
    TCPState.CLOSING: frozenset({TCPState.TIME_WAIT, TCPState.CLOSED}),
    TCPState.LAST_ACK: frozenset({TCPState.CLOSED}),
    TCPState.TIME_WAIT: frozenset({TCPState.CLOSED}),
}

#: States in which the connection appears in the demux table.
SYNCHRONIZED_STATES = frozenset(
    {
        TCPState.SYN_RCVD,
        TCPState.ESTABLISHED,
        TCPState.FIN_WAIT_1,
        TCPState.FIN_WAIT_2,
        TCPState.CLOSE_WAIT,
        TCPState.CLOSING,
        TCPState.LAST_ACK,
        TCPState.TIME_WAIT,
    }
)


def can_transition(current: TCPState, target: TCPState) -> bool:
    """True if RFC 793 permits moving from ``current`` to ``target``."""
    return target in _TRANSITIONS.get(current, frozenset())


def check_transition(current: TCPState, target: TCPState) -> None:
    """Raise :class:`TCPStateError` on an illegal transition."""
    if not can_transition(current, target):
        raise TCPStateError(f"illegal TCP transition {current} -> {target}")
