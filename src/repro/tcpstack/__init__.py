"""Minimal TCP endpoint stack over the simulated network.

:class:`HostStack` is a host with one IP address whose inbound path
runs a pluggable :mod:`repro.core` demultiplexing algorithm;
:class:`TCPEndpoint` is the RFC 793 state machine for one connection;
:class:`Listener` accepts passive opens; :class:`PCBTable` joins the
demux algorithm with the listener table.
"""

from .endpoint import TCPEndpoint
from .listener import Listener
from .pcb_table import PCBTable
from .stack import HostStack
from .states import TCPState, TCPStateError, can_transition, check_transition

__all__ = [
    "HostStack",
    "Listener",
    "PCBTable",
    "TCPEndpoint",
    "TCPState",
    "TCPStateError",
    "can_transition",
    "check_transition",
]
