"""A TCP connection endpoint: handshake, data transfer, orderly close.

Implements the RFC 793 paths the workloads exercise, over the simulated
network: active/passive open, in-order data delivery with immediate or
delayed acknowledgements, retransmission with exponential backoff, RTT
estimation per Jacobson's algorithm [Jac88] (the congestion-avoidance
paper this one cites), and four-way close from either side.

Delayed acknowledgements exist because the paper's footnote 2 observes
they "can eliminate the need for the second packet" of the four-packet
TPC/A exchange -- an ablation bench measures exactly that effect on the
server's demultiplexing load.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ..core.pcb import PCB
from ..packet.builder import Packet
from ..packet.ip import IPv4Header
from ..packet.tcp import TCPFlags, TCPSegment
from .states import SYNCHRONIZED_STATES, TCPState, check_transition

__all__ = ["TCPEndpoint"]

#: Retransmission limits.
_MAX_RETRIES = 8
_MIN_RTO = 0.2
_MAX_RTO = 60.0

#: 2*MSL for TIME_WAIT, scaled down for simulation practicality.
_TIME_WAIT_SECONDS = 1.0


class TCPEndpoint:
    """One endpoint of one connection, owned by a
    :class:`~repro.tcpstack.stack.HostStack`."""

    def __init__(
        self,
        stack,
        pcb: PCB,
        *,
        on_data: Optional[Callable[["TCPEndpoint", bytes], None]] = None,
        on_establish: Optional[Callable[["TCPEndpoint"], None]] = None,
        on_close: Optional[Callable[["TCPEndpoint"], None]] = None,
        delayed_ack: bool = False,
        delayed_ack_timeout: float = 0.2,
    ):
        self._stack = stack
        self.pcb = pcb
        pcb.user_data = self
        self.on_data = on_data
        self.on_establish = on_establish
        self.on_close = on_close
        self._delayed_ack = delayed_ack
        self._delack_timeout = delayed_ack_timeout
        self._delack_event = None
        #: True while inbound data awaits acknowledgement; any outbound
        #: segment carrying ACK clears it (the piggyback).
        self._ack_pending = False
        self._state = TCPState.CLOSED
        pcb.state = self._state.value
        #: (seq, segment, first_sent_at, retransmitted) awaiting ack.
        self._unacked: List[Tuple[int, TCPSegment, float, bool]] = []
        self._retries = 0
        self._rto_event = None
        self._fin_sent = False
        self._fin_acked = False
        self._peer_fin_seen = False
        self.aborted = False

    # -- state -----------------------------------------------------------

    @property
    def state(self) -> TCPState:
        return self._state

    def _set_state(self, target: TCPState) -> None:
        check_transition(self._state, target)
        previous, self._state = self._state, target
        self.pcb.state = target.value
        self._stack.trace(
            "tcp.state", f"{self.pcb.four_tuple}", prev=previous.value,
            new=target.value,
        )
        if target is TCPState.ESTABLISHED and self.on_establish:
            self.on_establish(self)
        if target is TCPState.TIME_WAIT:
            reaper = getattr(self._stack, "reaper", None)
            if reaper is not None and reaper.handles_time_wait:
                # The lifecycle reaper owns TIME-WAIT expiry: it sees
                # the state change and arms its (configurable) timer,
                # replacing the fixed per-endpoint 2*MSL event.
                reaper.note_state(self.pcb)
            else:
                self._stack.sim.schedule(
                    _TIME_WAIT_SECONDS, self._enter_closed
                )
        if target is TCPState.CLOSED:
            self._teardown()

    def _enter_closed(self) -> None:
        if self._state is not TCPState.CLOSED:
            self._set_state(TCPState.CLOSED)

    def expire_time_wait(self) -> None:
        """Finish the TIME-WAIT quarantine now (reaper-driven close)."""
        if self._state is TCPState.TIME_WAIT:
            self._enter_closed()

    def _teardown(self) -> None:
        self._cancel_rto()
        self._cancel_delack()
        self._stack.forget(self)
        if self.on_close:
            self.on_close(self)

    # -- opening -----------------------------------------------------------

    def open_active(self) -> None:
        """Client side: send SYN, enter SYN_SENT."""
        if self._state is not TCPState.CLOSED:
            raise ValueError(f"cannot open from {self._state}")
        pcb = self.pcb
        pcb.iss = self._stack.next_iss()
        pcb.snd_una = pcb.iss
        pcb.snd_nxt = pcb.iss
        self._set_state(TCPState.SYN_SENT)
        self._transmit(TCPFlags.SYN, b"", mss=pcb.mss)

    def open_passive(self, syn: Packet) -> None:
        """Server side: a SYN arrived for our listener; answer SYN|ACK."""
        if self._state is not TCPState.CLOSED:
            raise ValueError(f"cannot accept from {self._state}")
        pcb = self.pcb
        pcb.irs = syn.tcp.seq
        pcb.rcv_nxt = (syn.tcp.seq + 1) & 0xFFFFFFFF
        if syn.tcp.mss is not None:
            pcb.mss = min(pcb.mss, syn.tcp.mss)
        pcb.iss = self._stack.next_iss()
        pcb.snd_una = pcb.iss
        pcb.snd_nxt = pcb.iss
        # CLOSED -> LISTEN -> SYN_RCVD is the diagram path; the listener
        # object held the LISTEN state, so step through it.
        self._set_state(TCPState.LISTEN)
        self._set_state(TCPState.SYN_RCVD)
        self._transmit(TCPFlags.SYN | TCPFlags.ACK, b"", mss=pcb.mss)

    # -- sending -----------------------------------------------------------

    def send(self, data: bytes) -> None:
        """Send application data, segmented to the connection MSS."""
        if self._state not in (TCPState.ESTABLISHED, TCPState.CLOSE_WAIT):
            raise ValueError(f"cannot send in {self._state}")
        if not data:
            return
        mss = self.pcb.mss
        for start in range(0, len(data), mss):
            self._transmit(
                TCPFlags.ACK | TCPFlags.PSH, data[start : start + mss]
            )

    def close(self) -> None:
        """Orderly close: send FIN."""
        if self._state is TCPState.ESTABLISHED:
            self._set_state(TCPState.FIN_WAIT_1)
        elif self._state is TCPState.CLOSE_WAIT:
            self._set_state(TCPState.LAST_ACK)
        elif self._state in (TCPState.CLOSED, TCPState.LISTEN):
            self._set_state(TCPState.CLOSED)
            return
        else:
            raise ValueError(f"cannot close in {self._state}")
        self._fin_sent = True
        self._transmit(TCPFlags.FIN | TCPFlags.ACK, b"")

    def abort(self) -> None:
        """Send RST and drop the connection immediately."""
        if self._state in SYNCHRONIZED_STATES or self._state is TCPState.SYN_SENT:
            self._emit(TCPFlags.RST | TCPFlags.ACK, b"", track=False)
        self.aborted = True
        if self._state is not TCPState.CLOSED:
            self._set_state(TCPState.CLOSED)

    # -- segment transmission ---------------------------------------------

    def _transmit(self, flags: int, payload: bytes, mss: Optional[int] = None):
        """Send a tracked segment (subject to retransmission)."""
        segment = self._emit(flags, payload, mss=mss, track=True)
        return segment

    def _emit(
        self,
        flags: int,
        payload: bytes,
        *,
        mss: Optional[int] = None,
        track: bool,
    ) -> TCPSegment:
        pcb = self.pcb
        tup = pcb.four_tuple
        segment = TCPSegment(
            src_port=tup.local_port,
            dst_port=tup.remote_port,
            seq=pcb.snd_nxt,
            ack=pcb.rcv_nxt if flags & TCPFlags.ACK else 0,
            flags=flags,
            window=pcb.rcv_wnd,
            payload=payload,
            mss=mss,
        )
        consumed = segment.segment_length
        if consumed:
            pcb.snd_nxt = (pcb.snd_nxt + consumed) & 0xFFFFFFFF
            if track:
                self._unacked.append(
                    (segment.seq, segment, self._stack.sim.now, False)
                )
                self._arm_rto()
        if flags & TCPFlags.ACK:
            self._ack_pending = False
            self._cancel_delack()
        packet = Packet(
            ip=IPv4Header(src=tup.local_addr, dst=tup.remote_addr),
            tcp=segment,
        )
        self._stack.transmit(self, packet)
        return segment

    def _send_pure_ack(self) -> None:
        self._emit(TCPFlags.ACK, b"", track=False)

    def _schedule_ack(self) -> None:
        """Immediate ack, or start the delayed-ack timer."""
        if not self._delayed_ack:
            self._send_pure_ack()
            return
        if self._delack_event is None:
            self._delack_event = self._stack.sim.schedule(
                self._delack_timeout, self._delack_fire
            )

    def _delack_fire(self) -> None:
        self._delack_event = None
        if self._state in SYNCHRONIZED_STATES:
            self._send_pure_ack()

    def _cancel_delack(self) -> None:
        if self._delack_event is not None:
            self._stack.sim.cancel(self._delack_event)
            self._delack_event = None

    # -- retransmission ------------------------------------------------------

    def _arm_rto(self) -> None:
        if self._rto_event is None and self._unacked:
            self._rto_event = self._stack.sim.schedule(
                self.pcb.rto, self._rto_fire
            )

    def _cancel_rto(self) -> None:
        if self._rto_event is not None:
            self._stack.sim.cancel(self._rto_event)
            self._rto_event = None

    def _rto_fire(self) -> None:
        self._rto_event = None
        if not self._unacked or self._state is TCPState.CLOSED:
            return
        self._retries += 1
        if self._retries > _MAX_RETRIES:
            self._stack.trace(
                "tcp.abort", f"{self.pcb.four_tuple}", reason="max retries"
            )
            self.abort()
            return
        pcb = self.pcb
        pcb.rto = min(pcb.rto * 2.0, _MAX_RTO)
        seq, segment, first_sent, _ = self._unacked[0]
        self._unacked[0] = (seq, segment, first_sent, True)
        tup = pcb.four_tuple
        packet = Packet(
            ip=IPv4Header(src=tup.local_addr, dst=tup.remote_addr), tcp=segment
        )
        self._stack.trace("tcp.rexmit", f"{tup}", seq=seq, try_=self._retries)
        self._stack.transmit(self, packet)
        self._arm_rto()

    def _update_rtt(self, sample: float) -> None:
        """Jacobson/Karels srtt + rttvar estimation."""
        pcb = self.pcb
        if pcb.srtt is None:
            pcb.srtt = sample
            pcb.rttvar = sample / 2.0
        else:
            delta = sample - pcb.srtt
            pcb.srtt += delta / 8.0
            pcb.rttvar += (abs(delta) - pcb.rttvar) / 4.0
        pcb.rto = min(max(pcb.srtt + 4.0 * pcb.rttvar, _MIN_RTO), _MAX_RTO)

    def _process_ack(self, ack: int) -> None:
        pcb = self.pcb
        if not _seq_gt(ack, pcb.snd_una):
            return
        pcb.snd_una = ack
        now = self._stack.sim.now
        while self._unacked:
            seq, segment, first_sent, retransmitted = self._unacked[0]
            end = (seq + segment.segment_length) & 0xFFFFFFFF
            if _seq_leq(end, ack):
                self._unacked.pop(0)
                if not retransmitted:  # Karn's rule
                    self._update_rtt(now - first_sent)
            else:
                break
        self._retries = 0
        self._cancel_rto()
        self._arm_rto()
        if self._fin_sent and not self._unacked:
            self._fin_acked = True

    # -- receiving -----------------------------------------------------------

    def handle(self, packet: Packet) -> None:
        """Process an inbound segment already demultiplexed to us."""
        segment = packet.tcp
        if segment.is_rst:
            self._handle_rst()
            return
        handler = {
            TCPState.SYN_SENT: self._handle_syn_sent,
            TCPState.SYN_RCVD: self._handle_syn_rcvd,
            TCPState.ESTABLISHED: self._handle_synchronized,
            TCPState.FIN_WAIT_1: self._handle_synchronized,
            TCPState.FIN_WAIT_2: self._handle_synchronized,
            TCPState.CLOSE_WAIT: self._handle_synchronized,
            TCPState.CLOSING: self._handle_synchronized,
            TCPState.LAST_ACK: self._handle_synchronized,
            TCPState.TIME_WAIT: self._handle_time_wait,
        }.get(self._state)
        if handler is None:
            self._stack.trace(
                "tcp.drop", f"{self.pcb.four_tuple}", state=self._state.value
            )
            return
        handler(segment)

    def _handle_rst(self) -> None:
        self.aborted = True
        if self._state is not TCPState.CLOSED:
            self._set_state(TCPState.CLOSED)

    def _handle_syn_sent(self, segment: TCPSegment) -> None:
        if not segment.is_syn:
            return
        pcb = self.pcb
        pcb.irs = segment.seq
        pcb.rcv_nxt = (segment.seq + 1) & 0xFFFFFFFF
        if segment.mss is not None:
            pcb.mss = min(pcb.mss, segment.mss)
        if segment.is_ack:
            self._process_ack(segment.ack)
            self._set_state(TCPState.ESTABLISHED)
            self._send_pure_ack()
        else:  # simultaneous open
            self._set_state(TCPState.SYN_RCVD)
            self._send_pure_ack()

    def _handle_syn_rcvd(self, segment: TCPSegment) -> None:
        if segment.is_syn and not segment.is_ack:
            # Duplicate SYN: retransmission path will re-answer.
            return
        if segment.is_ack:
            self._process_ack(segment.ack)
            if _seq_gt(self.pcb.snd_una, self.pcb.iss):
                self._set_state(TCPState.ESTABLISHED)
                # The handshake ACK may carry data; fall through.
                if segment.payload or segment.is_fin:
                    self._handle_synchronized(segment)

    def _handle_synchronized(self, segment: TCPSegment) -> None:
        pcb = self.pcb
        if segment.is_ack:
            self._process_ack(segment.ack)
            self._maybe_advance_close_states()
        if segment.payload:
            if segment.seq == pcb.rcv_nxt:
                pcb.rcv_nxt = (pcb.rcv_nxt + len(segment.payload)) & 0xFFFFFFFF
                pcb.note_receive(len(segment.payload))
                if self._delayed_ack:
                    # Let the application respond first; only if nothing
                    # it sent carried the ack do we arm the delack timer
                    # (the footnote-2 piggyback).
                    self._ack_pending = True
                    if self.on_data:
                        self.on_data(self, segment.payload)
                    if self._ack_pending:
                        self._schedule_ack()
                else:
                    # BSD ACKNOW ordering: the ack leaves at input
                    # processing time, before the application runs.
                    self._send_pure_ack()
                    if self.on_data:
                        self.on_data(self, segment.payload)
            elif _seq_gt(pcb.rcv_nxt, segment.seq):
                # Duplicate data (retransmission we already have): re-ack.
                self._send_pure_ack()
            else:
                # Out-of-order: this FIFO network should never produce it.
                self._stack.count_out_of_order()
                self._send_pure_ack()
        if segment.is_fin and not self._peer_fin_seen:
            expected = segment.seq
            if segment.payload:
                expected = (segment.seq + len(segment.payload)) & 0xFFFFFFFF
            if expected == pcb.rcv_nxt:
                self._peer_fin_seen = True
                pcb.rcv_nxt = (pcb.rcv_nxt + 1) & 0xFFFFFFFF
                self._send_pure_ack()
                self._advance_on_peer_fin()

    def _advance_on_peer_fin(self) -> None:
        if self._state is TCPState.ESTABLISHED:
            self._set_state(TCPState.CLOSE_WAIT)
        elif self._state is TCPState.FIN_WAIT_1:
            if self._fin_acked:
                self._set_state(TCPState.TIME_WAIT)
            else:
                self._set_state(TCPState.CLOSING)
        elif self._state is TCPState.FIN_WAIT_2:
            self._set_state(TCPState.TIME_WAIT)

    def _maybe_advance_close_states(self) -> None:
        if not self._fin_acked:
            return
        if self._state is TCPState.FIN_WAIT_1:
            if self._peer_fin_seen:
                self._set_state(TCPState.TIME_WAIT)
            else:
                self._set_state(TCPState.FIN_WAIT_2)
        elif self._state is TCPState.CLOSING:
            self._set_state(TCPState.TIME_WAIT)
        elif self._state is TCPState.LAST_ACK:
            self._set_state(TCPState.CLOSED)

    def _handle_time_wait(self, segment: TCPSegment) -> None:
        if segment.is_fin:
            self._send_pure_ack()  # peer missed our last ack

    def __repr__(self) -> str:
        return f"<TCPEndpoint {self.pcb.four_tuple} {self._state}>"


def _seq_gt(a: int, b: int) -> bool:
    """Serial-number arithmetic: a > b modulo 2^32."""
    diff = (a - b) & 0xFFFFFFFF
    return diff != 0 and diff < 0x80000000


def _seq_leq(a: int, b: int) -> bool:
    return a == b or _seq_gt(b, a)
