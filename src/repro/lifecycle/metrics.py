"""Publish lifecycle/retention gauges through the observability layer.

Two gauge families, in the style of the other ``publish_*`` exporters
(duck-typed, registry-agnostic, no hard dependency from the lifecycle
machinery on :mod:`repro.obs`):

* ``lifecycle_reaper`` -- the reaper's counters (:class:`~repro.
  lifecycle.reaper.ReapStats`) plus its live-connection and pending-
  timer population;
* ``lifecycle_retention`` -- live PCBs vs interned fast-path keys, the
  pair the leak audit compares.  A structure with no intern table
  (the references) publishes only the live count.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["count_interned", "publish_lifecycle"]


def count_interned(algorithm) -> Optional[int]:
    """Total interned fast-path entries held by ``algorithm``.

    Duck-typed: sums ``interned_entries`` over the structure itself
    and, for sharded facades, every shard.  Returns ``None`` when
    nothing interns (reference structures) -- "no intern table" and
    "empty intern table" are different answers to a leak audit.
    """
    total: Optional[int] = None
    own = getattr(algorithm, "interned_entries", None)
    if own is not None:
        total = own
    for shard in getattr(algorithm, "shards", ()) or ():
        shard_count = getattr(shard, "interned_entries", None)
        if shard_count is not None:
            total = (total or 0) + shard_count
    return total


def publish_lifecycle(
    registry, reaper, *, label: Optional[str] = None
) -> None:
    """Export ``reaper``'s stats and retention gauges into ``registry``."""
    algorithm = reaper.algorithm
    name = label if label is not None else getattr(algorithm, "name", "demux")
    gauges = registry.gauge(
        "lifecycle_reaper",
        "connection reaping: evictions, wakeups, timer traffic",
    )
    for counter_name, value in reaper.stats.as_dict().items():
        gauges.set(value, algorithm=name, counter=counter_name)
    gauges.set(reaper.live, algorithm=name, counter="live_connections")
    gauges.set(len(reaper.wheel), algorithm=name, counter="pending_timers")

    retention = registry.gauge(
        "lifecycle_retention",
        "live PCBs vs interned fast-path keys (leak-audit pair)",
    )
    retention.set(len(algorithm), algorithm=name, population="live_pcbs")
    interned = count_interned(algorithm)
    if interned is not None:
        retention.set(interned, algorithm=name, population="interned_keys")
