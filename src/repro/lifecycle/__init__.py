"""Connection lifecycle management: timer wheel + reaping.

The fast path (PR 4) made lookups cheap; this package makes long-
running operation *memory-bounded* by evicting dead connections --
idle-timeout and TIME-WAIT reaping over a virtual-time hierarchical
timer wheel, attached to any demux structure through the
``DemuxAlgorithm.lifecycle`` hooks.  See docs/lifecycle.md.
"""

from .metrics import count_interned, publish_lifecycle
from .reaper import ConnectionReaper, ReapStats, TIME_WAIT_STATE
from .wheel import TimerWheel

__all__ = [
    "ConnectionReaper",
    "ReapStats",
    "TIME_WAIT_STATE",
    "TimerWheel",
    "count_interned",
    "publish_lifecycle",
]
