"""Connection lifecycle reaping: idle timeout and TIME-WAIT expiry.

A long-running demultiplexer is memory-bounded only if dead
connections *leave*: idle PCBs whose peers silently vanished, and
TIME-WAIT PCBs whose 2*MSL quarantine has elapsed.
:class:`ConnectionReaper` attaches to any
:class:`~repro.core.base.DemuxAlgorithm` through the base class's
lifecycle hooks (``algorithm.lifecycle``), watches every insert,
remove, found-lookup, and send, and evicts expired connections in
O(expired) work per tick.

Design -- *lazy deadlines* over a hierarchical
:class:`~repro.lifecycle.wheel.TimerWheel`:

* a **touch** (found lookup, outbound send) is one dict write of the
  last-activity time -- the hot path never rearranges timers;
* the wheel holds one *check* time per connection.  When a check
  fires, the true deadline ``last_touch + timeout`` is compared to
  now: still in the future means the connection was touched since the
  check was scheduled, so the check is pushed out (a counted
  *spurious wakeup*); otherwise the connection is reaped.

Reaping goes through ``on_reap(pcb, reason)`` when the owner (a
:class:`~repro.tcpstack.stack.HostStack`) wants protocol-correct
teardown, or straight through ``algorithm.remove`` otherwise -- which
also evicts the fast path's interned key via the normal remove path,
so the intern table shrinks with the population.

The reaper never reads a real clock.  ``advance(now)`` (or the owning
stack's periodic tick) supplies virtual time, keeping every run
deterministic and replayable.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Optional

from ..core.base import DemuxAlgorithm
from ..core.pcb import PCB
from ..packet.addresses import FourTuple
from .wheel import TimerWheel

__all__ = ["ConnectionReaper", "ReapStats", "TIME_WAIT_STATE"]

#: The PCB state string that selects the TIME-WAIT timeout.
TIME_WAIT_STATE = "TIME_WAIT"


@dataclasses.dataclass
class ReapStats:
    """Lifecycle bookkeeping, exported by ``publish_lifecycle``."""

    #: Connections evicted for inactivity.
    reaped_idle: int = 0
    #: Connections evicted after their TIME-WAIT quarantine.
    reaped_time_wait: int = 0
    #: Wheel checks that found the connection touched since scheduling
    #: (the price of lazy deadlines; each reschedules one timer).
    spurious_wakeups: int = 0
    #: Timers (re)armed on the wheel.
    timers_scheduled: int = 0
    #: Timers cancelled by connection removal.
    timers_cancelled: int = 0

    @property
    def reaped_total(self) -> int:
        return self.reaped_idle + self.reaped_time_wait

    def as_dict(self) -> Dict[str, int]:
        return {
            "reaped_idle": self.reaped_idle,
            "reaped_time_wait": self.reaped_time_wait,
            "reaped_total": self.reaped_total,
            "spurious_wakeups": self.spurious_wakeups,
            "timers_scheduled": self.timers_scheduled,
            "timers_cancelled": self.timers_cancelled,
        }


class ConnectionReaper:
    """Idle/TIME-WAIT eviction driver for one demux structure.

    Parameters
    ----------
    algorithm:
        The structure to manage.  The reaper installs itself as
        ``algorithm.lifecycle`` (detach with :meth:`detach`).
    idle_timeout:
        Seconds of inactivity after which a connection is reaped, or
        ``None`` to reap only TIME-WAIT connections.
    time_wait:
        Seconds a TIME-WAIT connection lingers before eviction, or
        ``None`` to treat TIME-WAIT like any idle connection.
    on_reap:
        Optional ``callback(pcb, reason)`` -- ``reason`` is ``"idle"``
        or ``"time-wait"`` -- that owns the eviction (e.g. aborting a
        TCP endpoint so the removal happens via protocol teardown).
        The callback must cause the PCB's removal; if it does not, the
        reaper removes the PCB directly as a backstop.  ``None`` means
        plain ``algorithm.remove``.
    wheel:
        The timer wheel to use (default: a fresh one whose tick is
        1/8 of the shortest configured timeout, clamped to [0.01, 1]).
    clock:
        Optional zero-argument callable returning current virtual time
        (e.g. ``lambda: sim.now``), so touches between :meth:`advance`
        calls are stamped precisely.  Without it, time only moves when
        :meth:`advance` is called.
    """

    def __init__(
        self,
        algorithm: DemuxAlgorithm,
        *,
        idle_timeout: Optional[float] = None,
        time_wait: Optional[float] = None,
        on_reap: Optional[Callable[[PCB, str], None]] = None,
        wheel: Optional[TimerWheel] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if idle_timeout is None and time_wait is None:
            raise ValueError("need idle_timeout and/or time_wait")
        for label, value in (("idle_timeout", idle_timeout),
                             ("time_wait", time_wait)):
            if value is not None and value <= 0:
                raise ValueError(f"{label} must be positive, got {value}")
        self.algorithm = algorithm
        self.idle_timeout = idle_timeout
        self.time_wait = time_wait
        self.on_reap = on_reap
        if wheel is None:
            shortest = min(
                value for value in (idle_timeout, time_wait)
                if value is not None
            )
            wheel = TimerWheel(tick=min(max(shortest / 8.0, 0.01), 1.0))
        self.wheel = wheel
        self.stats = ReapStats()
        self._clock = clock
        self._pcbs: Dict[FourTuple, PCB] = {}
        self._last_touch: Dict[FourTuple, float] = {}
        self._now = wheel.now if clock is None else clock()
        # Adopt connections inserted before attachment, then hook in.
        for pcb in list(algorithm):
            self.note_insert(pcb)
        algorithm.lifecycle = self

    # -- introspection -----------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time (from the clock, or the last advance)."""
        if self._clock is not None:
            self._now = max(self._now, self._clock())
        return self._now

    @property
    def live(self) -> int:
        """Connections currently tracked."""
        return len(self._pcbs)

    @property
    def handles_time_wait(self) -> bool:
        """True when a dedicated TIME-WAIT timeout is configured."""
        return self.time_wait is not None

    def last_touch(self, tup: FourTuple) -> float:
        """When ``tup`` last saw activity (KeyError if untracked)."""
        return self._last_touch[tup]

    def detach(self) -> None:
        """Stop observing the algorithm (timers stay until re-attach)."""
        if self.algorithm.lifecycle is self:
            self.algorithm.lifecycle = None

    # -- lifecycle hooks (called by DemuxAlgorithm template methods) -------

    def note_insert(self, pcb: PCB) -> None:
        tup = pcb.four_tuple
        now = self.now
        self._pcbs[tup] = pcb
        self._last_touch[tup] = now
        timeout = self._timeout_for(pcb)
        if timeout is not None:
            self.wheel.schedule(tup, now + timeout)
            self.stats.timers_scheduled += 1

    def note_remove(self, tup: FourTuple) -> None:
        self._pcbs.pop(tup, None)
        self._last_touch.pop(tup, None)
        if self.wheel.cancel(tup):
            self.stats.timers_cancelled += 1

    def note_touch(self, tup: FourTuple) -> None:
        """O(1) activity mark; the wheel is *not* rearranged."""
        if tup in self._last_touch:
            self._last_touch[tup] = self.now

    def note_state(self, pcb: PCB) -> None:
        """A tracked connection changed TCP state (e.g. to TIME-WAIT).

        Re-arms the check timer eagerly, because a state change can
        *shorten* the deadline (TIME-WAIT is typically much shorter
        than the idle timeout) and lazy deadlines only ever extend.
        """
        tup = pcb.four_tuple
        if tup not in self._pcbs:
            return
        now = self.now
        self._last_touch[tup] = now
        timeout = self._timeout_for(pcb)
        if timeout is not None:
            self.wheel.schedule(tup, now + timeout)
            self.stats.timers_scheduled += 1

    # -- expiry ------------------------------------------------------------

    def advance(self, now: float) -> int:
        """Move virtual time forward; reap what expired.  Returns the
        number of connections evicted by this call."""
        self._now = max(self._now, now)
        reaped = 0
        for tup in self.wheel.advance(self._now):
            pcb = self._pcbs.get(tup)
            if pcb is None:
                continue  # removed after its keys were collected
            timeout = self._timeout_for(pcb)
            if timeout is None:
                continue  # state no longer subject to a timeout
            deadline = self._last_touch[tup] + timeout
            if deadline > self._now:
                # Touched since the check was armed: push it out.
                self.wheel.schedule(tup, deadline)
                self.stats.timers_scheduled += 1
                self.stats.spurious_wakeups += 1
                continue
            self._reap(tup, pcb)
            reaped += 1
        return reaped

    def _timeout_for(self, pcb: PCB) -> Optional[float]:
        if (
            self.time_wait is not None
            and getattr(pcb, "state", None) == TIME_WAIT_STATE
        ):
            return self.time_wait
        return self.idle_timeout

    def _reap(self, tup: FourTuple, pcb: PCB) -> None:
        reason = (
            "time-wait"
            if getattr(pcb, "state", None) == TIME_WAIT_STATE
            else "idle"
        )
        if reason == "time-wait":
            self.stats.reaped_time_wait += 1
        else:
            self.stats.reaped_idle += 1
        if self.on_reap is not None:
            self.on_reap(pcb, reason)
            if tup not in self._pcbs:
                return  # the callback tore the connection down
        # Direct eviction (no callback, or the callback declined):
        # removal flows through the public template method, firing
        # note_remove and the fast path's intern eviction.
        try:
            self.algorithm.remove(tup)
        except KeyError:
            self.note_remove(tup)  # already gone; drop our bookkeeping
