"""A hierarchical timer wheel over virtual time.

The reaper needs one timer per live connection -- potentially millions
-- with three cheap operations: schedule, cancel, and "hand me
everything that has expired".  A priority queue makes each of those
``O(log n)``; the classic hierarchical timer wheel (Varghese & Lauck's
hashed/hierarchical timing wheels, the scheme BSD ``callout`` tables
and Linux ``timer_list`` descend from) makes them amortized ``O(1)``
by hashing deadlines into circular buckets of ticks.

This wheel is *virtual-time*: nothing here reads a real clock.  Time is
whatever the caller says it is (:meth:`advance`), which keeps the
reaper deterministic under :class:`repro.sim.engine.Simulator` and
trivially testable without one.

Shape: ``levels`` wheels of ``slots`` buckets each.  Level 0 buckets
span one ``tick``; each higher level spans ``slots`` times the level
below.  A deadline lands in the lowest level that can still resolve it;
when the cursor crosses a higher-level bucket its entries *cascade*
down, so every timer is touched at most ``levels`` times before it
fires.  Deadlines beyond the top level's horizon are clamped to the
furthest top-level bucket and simply cascade again -- correctness does
not depend on the horizon, only constant-factor efficiency does.

Guarantees:

* a timer never fires before its deadline;
* it fires on the first :meth:`advance` whose time is at least one
  tick-quantization past the deadline (late by less than one tick);
* expired keys are returned in deterministic ``(deadline, schedule
  order)`` order, so downstream reaping is reproducible.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, Hashable, List, Optional, Tuple

__all__ = ["TimerWheel"]

#: (absolute deadline, schedule sequence, level, slot) per scheduled key.
_Entry = Tuple[float, int, int, int]


class TimerWheel:
    """Hierarchical bucket-of-ticks timer store keyed by hashable keys.

    Scheduling an already-scheduled key replaces its deadline (the
    "reschedule" every lazy-touch reaper needs).  ``advance(now)``
    returns every key whose deadline tick has passed; it never invokes
    callbacks -- policy stays with the caller.
    """

    def __init__(
        self, *, tick: float = 0.1, slots: int = 64, levels: int = 4
    ) -> None:
        if tick <= 0:
            raise ValueError(f"tick must be positive, got {tick}")
        if slots < 2:
            raise ValueError(f"need at least 2 slots, got {slots}")
        if levels < 1:
            raise ValueError(f"need at least 1 level, got {levels}")
        self._tick = tick
        self._slots = slots
        self._levels = levels
        #: Ticks spanned by one bucket of each level: 1, S, S^2, ...
        self._spans = [slots ** level for level in range(levels)]
        #: Ticks covered by all of level <= k: S, S^2, ..., S^levels.
        self._horizons = [slots ** (level + 1) for level in range(levels)]
        #: buckets[level][slot] -> {key: entry}, insertion-ordered.
        self._buckets: List[List[Dict[Hashable, _Entry]]] = [
            [{} for _ in range(slots)] for _ in range(levels)
        ]
        self._where: Dict[Hashable, _Entry] = {}
        self._seq = itertools.count()
        #: All ticks strictly below the cursor have been processed.
        self._cursor = 0
        self._now = 0.0

    # -- introspection -----------------------------------------------------

    @property
    def tick(self) -> float:
        return self._tick

    @property
    def now(self) -> float:
        """The latest time passed to :meth:`advance`."""
        return self._now

    def __len__(self) -> int:
        return len(self._where)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._where

    def deadline_of(self, key: Hashable) -> float:
        """The scheduled deadline for ``key`` (KeyError if absent)."""
        return self._where[key][0]

    def next_deadline(self) -> Optional[float]:
        """Earliest scheduled deadline, or ``None`` when empty (O(n))."""
        if not self._where:
            return None
        return min(entry[0] for entry in self._where.values())

    # -- scheduling --------------------------------------------------------

    def schedule(self, key: Hashable, when: float) -> None:
        """(Re)schedule ``key`` to expire at absolute time ``when``."""
        self.cancel(key)
        deadline_tick = max(
            int(math.ceil(when / self._tick)), self._cursor
        )
        level, slot = self._place(deadline_tick)
        entry = (when, next(self._seq), level, slot)
        self._buckets[level][slot][key] = entry
        self._where[key] = entry

    def cancel(self, key: Hashable) -> bool:
        """Forget ``key``'s timer; True if one was pending."""
        entry = self._where.pop(key, None)
        if entry is None:
            return False
        _, _, level, slot = entry
        del self._buckets[level][slot][key]
        return True

    def _place(self, deadline_tick: int) -> Tuple[int, int]:
        """The (level, slot) bucket a deadline tick belongs in *now*."""
        delta = deadline_tick - self._cursor
        for level in range(self._levels):
            if delta < self._horizons[level]:
                span = self._spans[level]
                return level, (deadline_tick // span) % self._slots
        # Beyond the horizon: park in the furthest top-level bucket; it
        # will cascade (and re-place) as the cursor approaches.
        top = self._levels - 1
        span = self._spans[top]
        far = self._cursor + self._horizons[top] - span
        return top, (far // span) % self._slots

    # -- expiry ------------------------------------------------------------

    def advance(self, now: float) -> List[Hashable]:
        """Move time forward; return keys whose deadlines have passed.

        Processes every tick up to ``floor(now / tick)`` inclusive,
        cascading higher-level buckets as their boundaries are crossed.
        Empty stretches are skipped in O(1), so idle wheels cost
        nothing no matter how far time jumps.
        """
        if now < self._now:
            raise ValueError(
                f"time went backwards: {now:.6f} < {self._now:.6f}"
            )
        self._now = now
        target = int(now / self._tick)  # last tick to process
        expired: List[Tuple[float, int, Hashable]] = []
        while self._cursor <= target:
            if not self._where:
                self._cursor = target + 1
                break
            self._cascade(self._cursor)
            bucket = self._buckets[0][self._cursor % self._slots]
            if bucket:
                for key, (deadline, seq, _, _) in bucket.items():
                    del self._where[key]
                    expired.append((deadline, seq, key))
                bucket.clear()
            self._cursor += 1
        expired.sort()
        return [key for _, _, key in expired]

    def _cascade(self, tick: int) -> None:
        """Pull higher-level buckets down when ``tick`` crosses them."""
        for level in range(1, self._levels):
            span = self._spans[level]
            if tick % span != 0:
                break  # higher levels only turn when this one does
            bucket = self._buckets[level][(tick // span) % self._slots]
            if not bucket:
                continue
            entries = list(bucket.items())
            bucket.clear()
            for key, (deadline, seq, _, _) in entries:
                deadline_tick = max(
                    int(math.ceil(deadline / self._tick)), self._cursor
                )
                new_level, new_slot = self._place(deadline_tick)
                entry = (deadline, seq, new_level, new_slot)
                self._buckets[new_level][new_slot][key] = entry
                self._where[key] = entry
