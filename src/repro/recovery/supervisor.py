"""Supervised shard recovery for :class:`~repro.smp.ShardedDemux`.

On a receive-side-scaled host each shard is a per-CPU index structure:
*soft state* over PCBs that live in shared memory.  A shard crash (CPU
reset, slab corruption, a wedged worker) therefore loses the shard's
list order, cache slots, and interned-key arrays -- but not the PCBs.
:class:`ShardSupervisor` wraps the sharded facade with exactly that
failure model and three recovery ladders, tried in order:

1. **warm** -- a periodic checkpoint (:mod:`repro.recovery.snapshot`)
   of the shard exists and passes its checksum: restore it, re-linking
   to the live PCBs in the supervisor's connection directory, then
   replay the post-checkpoint operation delta straight into the shard.
   The recovered shard is *decision-identical* to one that never
   crashed -- same order, same cache contents, same statistics -- which
   the golden suite proves per-call and batched.
2. **resteer** -- no usable checkpoint, but steering is a flow
   director (:class:`~repro.smp.steering.StickyFlowSteering`): orphaned
   flows are re-pinned onto the least-occupied survivors and their
   surviving PCBs re-inserted there.  No packets are lost after
   detection; warmth is rebuilt where the flows land.
3. **cold** -- no checkpoint, hash steering (flows cannot move): the
   shard is rebuilt by re-inserting its surviving PCBs in
   first-insert order.  Correct immediately, but cache-cold and
   recency-blind -- the examined-cost gap the ``recovery-drill``
   quantifies against the warm path.

Failure detection is modelled explicitly: ``detect_after=K`` drops the
first K packets steered at a dead shard (counted per event) before the
supervisor notices and recovers; ``detect_after=0`` models a
supervisor-local crash signal (recovery on the very next packet, zero
drops -- the configuration under which warm recovery is provably
decision-identical).  Control operations (insert/remove) always detect
immediately: they are control-plane RPCs with acknowledgements.

The supervisor is itself a :class:`~repro.core.base.DemuxAlgorithm`,
so workloads, the TCP stack, and the fault matrix drive a supervised
structure unchanged.  All mutations must flow through it -- bypassing
it leaves the connection directory and operation delta stale.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..core.base import DemuxAlgorithm, LookupResult
from ..core.pcb import PCB
from ..core.stats import PacketKind
from ..packet.addresses import FourTuple
from ..smp.sharded import ShardedDemux
from ..smp.steering import StickyFlowSteering
from .snapshot import (
    SnapshotError,
    open_envelope,
    restore_state,
    to_envelope,
)

__all__ = ["RecoveryEvent", "ShardSupervisor"]


@dataclasses.dataclass(frozen=True)
class RecoveryEvent:
    """One completed shard recovery, as reported in artifacts."""

    #: Index of the shard that crashed.
    shard: int
    #: ``"warm"``, ``"resteer"``, or ``"cold"``.
    mode: str
    #: Wall-clock mean time to repair for this event, milliseconds.
    mttr_ms: float
    #: Packets steered at the dead shard before detection (lost).
    dropped_packets: int
    #: Post-checkpoint operations replayed into the restored shard.
    replayed_ops: int
    #: PCBs resident in the shard once recovery finished.
    restored_pcbs: int
    #: Whether a checkpoint was restored (the warm path).
    checkpoint_used: bool
    #: Whether a checkpoint existed but failed its checksum.
    checkpoint_corrupt: bool

    def as_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


class ShardSupervisor(DemuxAlgorithm):
    """Crash-and-recover harness around a sharded demux structure.

    Parameters
    ----------
    sharded:
        The structure to supervise.  Steering must be flow-stable
        (hash or sticky): with round-robin a flow has no home shard,
        so "which shard lost this flow" is unanswerable and the delta
        log cannot be attributed.
    checkpoint_every:
        Take a checkpoint of every live shard after this many
        operations through the supervisor (0 disables periodic
        checkpoints; :meth:`checkpoint` can still be called manually).
    detect_after:
        Packets steered at a dead shard that are dropped before the
        crash is detected.  0 means detection is immediate.
    snapshot_fault:
        Optional :class:`repro.faults.infra.SnapshotCorruption`; each
        written checkpoint passes through its ``mangle``, modelling
        storage bit-rot.  Corrupt checkpoints are *detected* at
        restore time (checksum) and recovery falls down the ladder.
    clock:
        Monotonic seconds source for MTTR measurement (default
        :func:`time.perf_counter`).
    """

    #: Refuse :func:`repro.recovery.snapshot.capture_state`: the
    #: supervisor is a facade; its shards are what checkpoints capture.
    snapshottable = False

    def __init__(
        self,
        sharded: ShardedDemux,
        *,
        checkpoint_every: int = 0,
        detect_after: int = 0,
        snapshot_fault: Optional[Any] = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if not isinstance(sharded, ShardedDemux):
            raise TypeError(
                f"ShardSupervisor wraps a ShardedDemux, got {type(sharded).__name__}"
            )
        if not sharded.steering.flow_stable:
            raise ValueError(
                f"steering {sharded.steering.name!r} is not flow-stable;"
                " a supervised shard needs every flow to have a home"
                " shard (use hash or sticky steering)"
            )
        if checkpoint_every < 0:
            raise ValueError(
                f"checkpoint_every must be >= 0, got {checkpoint_every}"
            )
        if detect_after < 0:
            raise ValueError(f"detect_after must be >= 0, got {detect_after}")
        # Before super().__init__(): the base constructor assigns
        # ``self.spans = None``, which runs this class's forwarding
        # setter, which needs ``_sharded``.
        self._sharded = sharded
        super().__init__()
        self.name = f"supervised-{sharded.name}"
        self.checkpoint_every = checkpoint_every
        self.detect_after = detect_after
        self.snapshot_fault = snapshot_fault
        self._clock = clock
        #: The connection directory: PCBs live in shared memory and
        #: survive any shard crash.  Keyed by four-tuple, kept by every
        #: insert/remove that flows through the supervisor.
        self._directory: Dict[FourTuple, PCB] = {
            pcb.four_tuple: pcb for pcb in sharded
        }
        nshards = sharded.nshards
        self._checkpoints: List[Optional[bytes]] = [None] * nshards
        #: Per-shard operation log since that shard's last checkpoint.
        self._delta: List[List[Tuple[Any, ...]]] = [[] for _ in range(nshards)]
        self._dead: set = set()
        self._pending_detect: Dict[int, int] = {}
        self._outage_drops: Dict[int, int] = {}
        #: Shard -> packets still to drop before the stall clears.
        self._stalled: Dict[int, int] = {}
        self._ops_since_checkpoint = 0
        #: Lookups processed, for armed fault triggers.
        self._packets_seen = 0
        #: Pending armed faults, ascending trigger index, popped front.
        self._armed_crashes: List[Tuple[int, int]] = []
        self._armed_stalls: List[Tuple[int, int, int]] = []
        #: Completed recoveries, oldest first.
        self.events: List[RecoveryEvent] = []
        self.packets_dropped = 0
        self.crashes_injected = 0
        self.stalls_injected = 0
        self.stall_drops = 0
        self.checkpoints_taken = 0
        self.checkpoint_corruptions_detected = 0

    # -- hook forwarding ---------------------------------------------------

    @property
    def spans(self):
        """Always ``None`` at this layer: the span collector is
        forwarded to the wrapped facade, whose ``_finish_lookup``
        records each packet exactly once.  (Recovery events are
        emitted as standalone spans via ``note_recovery``.)"""
        return None

    @spans.setter
    def spans(self, collector) -> None:
        self._sharded.spans = collector

    @property
    def sharded(self) -> ShardedDemux:
        """The supervised structure (for reports and inspection)."""
        return self._sharded

    @property
    def dead_shards(self) -> Sequence[int]:
        """Shards currently crashed and not yet recovered."""
        return tuple(sorted(self._dead))

    def connection_directory(self) -> Dict[FourTuple, PCB]:
        """A copy of the shared-memory PCB directory."""
        return dict(self._directory)

    # -- checkpointing -----------------------------------------------------

    def checkpoint(self) -> int:
        """Checkpoint every live shard; returns how many were written.

        Each checkpoint is the checksummed snapshot envelope of one
        shard, so a later restore verifies integrity before trusting
        it.  The per-shard delta log restarts at the checkpoint.
        """
        written = 0
        for index in range(self._sharded.nshards):
            if index in self._dead:
                continue
            self._checkpoint_shard(index)
            written += 1
        self.checkpoints_taken += 1
        return written

    def _checkpoint_shard(self, index: int) -> None:
        # Via the facade, not the shard object: in the shared-memory
        # workers mode the shard lives in a worker process and the
        # facade fetches its payload over the control pipe.
        blob = to_envelope(self._sharded.capture_shard_payload(index))
        if self.snapshot_fault is not None:
            blob = self.snapshot_fault.mangle(blob)
        self._checkpoints[index] = blob
        self._delta[index] = []

    def _tick_checkpoint(self, nops: int) -> None:
        if not self.checkpoint_every:
            return
        self._ops_since_checkpoint += nops
        if self._ops_since_checkpoint >= self.checkpoint_every:
            self._ops_since_checkpoint = 0
            self.checkpoint()

    # -- fault injection ---------------------------------------------------

    def crash_shard(self, index: int) -> None:
        """Kill shard ``index``: its index structure is lost *now*.

        The instance is immediately replaced with an empty one so
        nothing can read the lost state during the outage; the PCBs
        survive in the connection directory, the flow-director table
        survives with the steering CPU.  Idempotent while dead.
        """
        if not 0 <= index < self._sharded.nshards:
            raise IndexError(
                f"no shard {index} (nshards={self._sharded.nshards})"
            )
        if index in self._dead:
            return
        self._dead.add(index)
        self._pending_detect[index] = self.detect_after
        self._outage_drops[index] = 0
        self.crashes_injected += 1
        self._stalled.pop(index, None)  # a crash supersedes any stall
        self._sharded.replace_shard(index, self._sharded.fresh_shard())

    def arm_crashes(
        self, schedule: Sequence[Tuple[int, int]]
    ) -> None:
        """Schedule crashes: each ``(packet_index, shard)`` fires just
        before the supervisor processes its ``packet_index``-th lookup
        (0-based).  Matches :meth:`repro.faults.infra.ShardCrash.schedule`."""
        for trigger, shard in schedule:
            if trigger < 0:
                raise ValueError(f"packet index must be >= 0, got {trigger}")
            if not 0 <= shard < self._sharded.nshards:
                raise IndexError(
                    f"no shard {shard} (nshards={self._sharded.nshards})"
                )
        self._armed_crashes = sorted(
            list(self._armed_crashes) + list(schedule)
        )

    def arm_stalls(
        self, schedule: Sequence[Tuple[int, int, int]]
    ) -> None:
        """Schedule stalls: ``(packet_index, shard, duration)`` triples,
        as produced by :meth:`repro.faults.infra.ShardStall.schedule`."""
        for trigger, shard, duration in schedule:
            if trigger < 0:
                raise ValueError(f"packet index must be >= 0, got {trigger}")
            if not 0 <= shard < self._sharded.nshards:
                raise IndexError(
                    f"no shard {shard} (nshards={self._sharded.nshards})"
                )
            if duration < 1:
                raise ValueError(f"stall length must be >= 1, got {duration}")
        self._armed_stalls = sorted(
            list(self._armed_stalls) + list(schedule)
        )

    def _fire_armed(self) -> None:
        while (
            self._armed_crashes
            and self._armed_crashes[0][0] <= self._packets_seen
        ):
            _, shard = self._armed_crashes.pop(0)
            self.crash_shard(shard)
        while (
            self._armed_stalls
            and self._armed_stalls[0][0] <= self._packets_seen
        ):
            _, shard, duration = self._armed_stalls.pop(0)
            if shard not in self._dead:
                self.stall_shard(shard, duration)

    def stall_shard(self, index: int, packets: int) -> None:
        """Wedge shard ``index``: drop its next ``packets`` steered
        packets, then resume with state fully intact (no recovery)."""
        if not 0 <= index < self._sharded.nshards:
            raise IndexError(
                f"no shard {index} (nshards={self._sharded.nshards})"
            )
        if packets < 1:
            raise ValueError(f"stall length must be >= 1, got {packets}")
        if index in self._dead:
            return  # already crashed; the outage model owns it
        self._stalled[index] = packets
        self.stalls_injected += 1

    def _stall_drop(self, shard: int) -> bool:
        """Consume one stalled packet; True when it must be dropped."""
        remaining = self._stalled.get(shard)
        if remaining is None:
            return False
        if remaining <= 1:
            del self._stalled[shard]
        else:
            self._stalled[shard] = remaining - 1
        self.stall_drops += 1
        self.packets_dropped += 1
        return True

    # -- recovery ----------------------------------------------------------

    def recover(self, index: int) -> RecoveryEvent:
        """Bring a dead shard back, preferring the warmest viable path."""
        if index not in self._dead:
            raise ValueError(f"shard {index} is not dead")
        start = self._clock()
        dropped = self._outage_drops.pop(index, 0)
        self._pending_detect.pop(index, None)
        checkpoint_corrupt = False
        replayed = 0
        shard: Optional[DemuxAlgorithm] = None
        blob = self._checkpoints[index]
        if blob is not None:
            try:
                shard = restore_state(
                    open_envelope(blob), pcbs=self._directory
                )
            except SnapshotError:
                checkpoint_corrupt = True
                self.checkpoint_corruptions_detected += 1
        if shard is not None:
            mode = "warm"
            # Replay the post-checkpoint delta *directly into the
            # shard*: lookups re-warm caches and MTF order and re-count
            # in shard stats, so checkpoint state + delta equals the
            # never-crashed shard exactly.  (The facade recorded these
            # packets when they originally happened.)
            for op in self._delta[index]:
                tag = op[0]
                if tag == "lookup":
                    shard.lookup(op[1], op[2])
                elif tag == "insert":
                    shard.insert(op[1])
                elif tag == "remove":
                    shard.remove(op[1])
                else:  # "send"
                    shard.note_send(op[1])
            replayed = len(self._delta[index])
            self._sharded.replace_shard(index, shard)
        elif (
            isinstance(self._sharded.steering, StickyFlowSteering)
            and self._sharded.nshards > 1
        ):
            mode = "resteer"
            shard = self._orphans_to_survivors(index)
        else:
            mode = "cold"
            shard = self._cold_rebuild(index)
        self._dead.discard(index)
        self._delta[index] = []
        if self.checkpoint_every:
            # Re-checkpoint immediately: the old blob no longer matches
            # the recovered state (its delta was just consumed), and a
            # second crash must not restore past it.
            self._checkpoint_shard(index)
        else:
            self._checkpoints[index] = None
        mttr_ms = (self._clock() - start) * 1000.0
        event = RecoveryEvent(
            shard=index,
            mode=mode,
            mttr_ms=mttr_ms,
            dropped_packets=dropped,
            replayed_ops=replayed,
            restored_pcbs=len(shard),
            checkpoint_used=(mode == "warm"),
            checkpoint_corrupt=checkpoint_corrupt,
        )
        self.events.append(event)
        spans = self._sharded.spans
        if spans is not None:
            spans.note_recovery(
                index,
                mode,
                mttr_ms=mttr_ms,
                dropped_packets=dropped,
                replayed_ops=replayed,
                restored_pcbs=event.restored_pcbs,
            )
        return event

    def _orphans_to_survivors(self, index: int) -> DemuxAlgorithm:
        """Re-pin the dead shard's flows onto the survivors.

        Placement is by current occupancy, lowest shard index on ties,
        recomputed per flow -- deterministic, and it spreads a big
        orphan set instead of dumping it on one survivor.  The fresh
        (empty) shard at ``index`` stays in service for *new* flows.

        Each re-pin is also appended to the *survivor's* delta log:
        its checkpoint pre-dates the re-steer, so a later warm
        recovery of that survivor must replay the orphan's insert or
        the flow would vanish while the director still maps to it.
        """
        steering = self._sharded.steering
        orphans = [
            tup
            for tup, home in self._sharded.home_table().items()
            if home == index
        ]
        survivors = [
            i for i in range(self._sharded.nshards) if i != index
        ]
        if not survivors:
            # Single shard: nowhere to re-steer to; rebuild in place.
            return self._cold_rebuild(index)
        for tup in orphans:
            self._sharded.forget_flow(tup)
            target = min(
                survivors, key=lambda i: (len(self._sharded.shards[i]), i)
            )
            steering.pin(tup, target)
            pcb = self._directory[tup]
            self._sharded.insert(pcb)
            self._delta[target].append(("insert", pcb))
        return self._sharded.shards[index]

    def _cold_rebuild(self, index: int) -> DemuxAlgorithm:
        """Re-insert the dead shard's surviving PCBs, order-of-arrival.

        Every flow is found again immediately; what is lost is warmth
        -- recency order and cache contents -- which shows up as
        examined-cost until traffic re-warms the structure.
        """
        shard = self._sharded.fresh_shard()
        for tup, home in self._sharded.home_table().items():
            if home == index:
                shard.insert(self._directory[tup])
        self._sharded.replace_shard(index, shard)
        return shard

    def _detect_or_drop(self, shard: int) -> bool:
        """True when the packet must be dropped (outage, undetected)."""
        remaining = self._pending_detect.get(shard, 0)
        if remaining > 0:
            self._pending_detect[shard] = remaining - 1
            self._outage_drops[shard] = self._outage_drops.get(shard, 0) + 1
            self.packets_dropped += 1
            return True
        self.recover(shard)
        return False

    # -- DemuxAlgorithm primitives ----------------------------------------

    def _lookup(self, tup: FourTuple, kind: PacketKind) -> LookupResult:
        if self._armed_crashes or self._armed_stalls:
            self._fire_armed()
        self._packets_seen += 1
        target = self._sharded.steering.shard_of(tup, self._sharded.nshards)
        if target in self._dead:
            if self._detect_or_drop(target):
                # Dropped on the floor by the dead shard: nothing
                # examined, nothing found.  Counted in this facade's
                # statistics.
                return LookupResult(None, 0, cache_hit=False, kind=kind)
            # Recovery ran; a re-steer may have re-pinned this flow to
            # a survivor, so the delta entry must follow it there.
            target = self._sharded.steering.shard_of(
                tup, self._sharded.nshards
            )
        if self._stall_drop(target):
            return LookupResult(None, 0, cache_hit=False, kind=kind)
        result = self._sharded.lookup(tup, kind)
        self._delta[target].append(("lookup", tup, kind))
        self._tick_checkpoint(1)
        return result

    def lookup_batch(
        self, packets: Sequence[Tuple[FourTuple, PacketKind]]
    ) -> List[LookupResult]:
        """Batched path: delegate whole batches while all shards live.

        With a dead shard (or hooks attached) the per-packet path runs
        so detection, drops, and recovery interleave exactly as they
        would packet by packet.
        """
        tracer = self.tracer
        if (
            self._dead
            or self._stalled
            or self._armed_crashes
            or self._armed_stalls
            or self._profiler is not None
            or (tracer is not None and tracer.enabled)
        ):
            return [self.lookup(tup, kind) for tup, kind in packets]
        results = self._sharded.lookup_batch(packets)
        shard_of = self._sharded.steering.shard_of
        nshards = self._sharded.nshards
        for (tup, kind), result in zip(packets, results):
            self._delta[shard_of(tup, nshards)].append(("lookup", tup, kind))
            self._finish_lookup(tup, result)
        self._packets_seen += len(packets)
        self._tick_checkpoint(len(packets))
        return results

    def _insert(self, pcb: PCB) -> None:
        tup = pcb.four_tuple
        target = self._sharded.steering.shard_of(tup, self._sharded.nshards)
        if target in self._dead:
            # Control-plane operation: detection is immediate.
            self.recover(target)
        self._sharded.insert(pcb)
        self._directory[tup] = pcb
        self._delta[self._sharded.shard_of(tup)].append(("insert", pcb))
        self._tick_checkpoint(1)

    def _remove(self, tup: FourTuple) -> PCB:
        home = self._sharded.home_table().get(tup)
        if home is None:
            raise KeyError(tup)
        if home in self._dead:
            self.recover(home)
            # A re-steer recovery moves the flow to a survivor; the
            # remove happens (and is logged) at its new home.
            home = self._sharded.home_table().get(tup)
            if home is None:
                raise KeyError(tup)
        pcb = self._sharded.remove(tup)
        self._directory.pop(tup, None)
        self._delta[home].append(("remove", tup))
        self._tick_checkpoint(1)
        return pcb

    def _note_send(self, pcb: PCB) -> None:
        home = self._sharded.home_table().get(pcb.four_tuple)
        if home is None:
            return
        if home in self._dead:
            if self._detect_or_drop(home):
                return
            # As in _lookup: recovery may have re-homed the flow.
            home = self._sharded.home_table().get(pcb.four_tuple)
            if home is None:
                return
        self._sharded.note_send(pcb)
        self._delta[home].append(("send", pcb))

    def __len__(self) -> int:
        return len(self._sharded)

    def __iter__(self) -> Iterator[PCB]:
        return iter(self._sharded)

    def __contains__(self, tup: FourTuple) -> bool:
        return tup in self._sharded

    # -- reporting ---------------------------------------------------------

    def recovery_summary(self) -> Dict[str, Any]:
        """JSON-ready recovery record for artifacts and the CLI."""
        modes: Dict[str, int] = {}
        for event in self.events:
            modes[event.mode] = modes.get(event.mode, 0) + 1
        mttrs = [event.mttr_ms for event in self.events]
        return {
            "crashes_injected": self.crashes_injected,
            "stalls_injected": self.stalls_injected,
            "recoveries": len(self.events),
            "modes": modes,
            "packets_dropped": self.packets_dropped,
            "stall_drops": self.stall_drops,
            "checkpoints_taken": self.checkpoints_taken,
            "checkpoint_corruptions_detected":
                self.checkpoint_corruptions_detected,
            "mttr_ms_max": max(mttrs) if mttrs else 0.0,
            "mttr_ms_mean": sum(mttrs) / len(mttrs) if mttrs else 0.0,
            "dead_shards": list(self.dead_shards),
            "events": [event.as_dict() for event in self.events],
        }

    def describe(self) -> str:
        return (
            f"{self.name} ({self._sharded.nshards} shards,"
            f" {len(self._dead)} dead, {len(self.events)} recoveries,"
            f" {len(self)} PCBs)"
        )
