"""Recovery observability, published through :mod:`repro.obs`.

One call exports what an operator of a crash-tolerant demultiplexer
watches: how many shards have crashed and recovered (and by which
ladder rung -- warm, resteer, cold), how long repairs took (an MTTR
histogram plus the worst case), how many packets the outages cost, and
whether checkpointing is keeping up (checkpoints written, corrupt ones
caught by the snapshot checksum).
"""

from __future__ import annotations

from typing import Optional

from ..obs.metrics import MetricsRegistry
from .supervisor import ShardSupervisor

__all__ = ["publish_recovery"]


def publish_recovery(
    registry: MetricsRegistry,
    supervisor: ShardSupervisor,
    *,
    algorithm: Optional[str] = None,
) -> None:
    """Publish one snapshot of a :class:`ShardSupervisor` into ``registry``.

    Gauges are set (last snapshot wins), so repeated publishing is safe
    for both one-shot exports and periodic scrapes; the MTTR histogram
    accumulates one observation per recovery event.
    """
    label = algorithm or supervisor.name
    summary = supervisor.recovery_summary()

    registry.gauge(
        "recovery_crashes_injected", "shard crashes injected"
    ).set(summary["crashes_injected"], algorithm=label)
    registry.gauge(
        "recovery_stalls_injected", "shard stalls injected"
    ).set(summary["stalls_injected"], algorithm=label)
    registry.gauge(
        "recovery_events_total", "completed shard recoveries"
    ).set(summary["recoveries"], algorithm=label)
    registry.gauge(
        "recovery_dead_shards", "shards currently dead"
    ).set(len(summary["dead_shards"]), algorithm=label)
    registry.gauge(
        "recovery_packets_dropped",
        "packets lost to outages (undetected crashes plus stalls)",
    ).set(summary["packets_dropped"], algorithm=label)
    registry.gauge(
        "recovery_checkpoints_taken", "periodic checkpoint rounds completed"
    ).set(summary["checkpoints_taken"], algorithm=label)
    registry.gauge(
        "recovery_checkpoint_corruptions",
        "checkpoints rejected by the snapshot checksum at restore",
    ).set(summary["checkpoint_corruptions_detected"], algorithm=label)
    registry.gauge(
        "recovery_mttr_ms_max", "worst mean-time-to-repair, milliseconds"
    ).set(summary["mttr_ms_max"], algorithm=label)

    modes = registry.gauge(
        "recovery_mode_total", "recoveries by ladder rung"
    )
    for mode in ("warm", "resteer", "cold"):
        modes.set(summary["modes"].get(mode, 0), algorithm=label, mode=mode)

    mttr = registry.histogram(
        "recovery_mttr_ms", "mean-time-to-repair per recovery, milliseconds"
    )
    for event in supervisor.events:
        mttr.observe(event.mttr_ms, algorithm=label, mode=event.mode)
