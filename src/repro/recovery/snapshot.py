"""Versioned, checksummed snapshots of demux decision state.

A snapshot captures everything that determines an algorithm's *future
decisions* -- which PCB a lookup finds, how many PCBs it examines, and
whether a cache satisfies it:

* the PCB population **in structure order** (list order, chain order,
  MTF recency order);
* every cache slot's contents (BSD's last-found slot, Partridge/Pink's
  send/recv pair, the k-entry LRU in LRU order, Sequent's per-chain
  slots);
* the fast path's logical state -- restoring re-interns exactly one
  key per live connection, re-establishing the KeyCache census and the
  parallel key/PCB arrays -- plus the fast-path counters for
  observability continuity;
* connection-ID slot/free-list layout (IDs must survive restore);
* sharded wrappers: per-shard snapshots, the flow-director home table,
  steering state (round-robin cursor, sticky pins), migration counts;
* lifecycle reaper state when attached: per-connection last-touch
  times and pending wheel check deadlines.

The guarantee -- ``restore(snapshot(d))`` is decision-identical to
``d`` on any subsequent traffic, per-call and batched -- is enforced by
golden traces (``tests/test_recovery_golden.py``) and differential
property tests (``tests/property/test_recovery_properties.py``).

On the wire a snapshot is a JSON envelope::

    {"format": "repro-demux-snapshot", "version": 1,
     "sha256": "<hex digest of the canonical payload>",
     "payload": {...}}

:func:`open_envelope` recomputes the digest before trusting one byte of
the payload: a corrupted snapshot raises
:class:`SnapshotIntegrityError` (flipped payload bits) or
:class:`SnapshotFormatError` (mangled framing), never restores silently
wrong state.

Restoring builds a fresh instance from the captured registry ``spec``
and replays the population through the public ``insert`` path in
reverse structure order (every structure head-inserts, so reverse
replay reproduces the exact order), then re-imposes cache slots
directly.  Pass ``pcbs`` (a four-tuple -> live PCB mapping, e.g. the
supervisor's connection directory) to re-link the restored structure to
surviving PCB *objects* -- on an SMP the PCBs live in shared memory and
outlive the per-CPU index structure -- instead of deserialized copies.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Mapping, Optional

from ..core.base import DemuxAlgorithm
from ..core.bsd import BSDDemux
from ..core.connection_id import ConnectionIdDemux
from ..core.hashed_mtf import HashedMTFDemux
from ..core.multicache import MultiCacheDemux
from ..core.pcb import PCB
from ..core.registry import make_algorithm
from ..core.sendrecv import SendRecvDemux
from ..core.sequent import SequentDemux
from ..core.stats import DemuxStats
from ..fastpath.algorithms import (
    FastBSDDemux,
    FastCuckooDemux,
    FastHashedMTFDemux,
    FastSequentDemux,
    _FastDemuxBase,
)
from ..hashing.functions import HASH_FUNCTIONS
from ..packet.addresses import FourTuple
from ..smp.sharded import ShardedDemux
from ..smp.steering import (
    HashSteering,
    RoundRobinSteering,
    StickyFlowSteering,
)

__all__ = [
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_VERSION",
    "SnapshotError",
    "SnapshotFormatError",
    "SnapshotIntegrityError",
    "capture_state",
    "open_envelope",
    "restore_bytes",
    "restore_state",
    "snapshot_bytes",
    "to_envelope",
]

SNAPSHOT_FORMAT = "repro-demux-snapshot"
SNAPSHOT_VERSION = 1


class SnapshotError(Exception):
    """Base error for snapshot capture/restore."""


class SnapshotFormatError(SnapshotError):
    """The blob is not a well-formed snapshot of a known version."""


class SnapshotIntegrityError(SnapshotError):
    """The payload does not match its checksum (corruption)."""


# -- PCB / tuple wire form ---------------------------------------------

#: PCB fields serialized verbatim (``user_data`` is an application
#: handle and is intentionally excluded; pass ``pcbs=`` at restore to
#: keep live objects, handles included).
_PCB_FIELDS = (
    "state", "snd_una", "snd_nxt", "snd_wnd", "rcv_nxt", "rcv_wnd",
    "iss", "irs", "mss", "srtt", "rttvar", "rto",
    "packets_in", "packets_out", "bytes_in", "bytes_out",
)


def _tuple_to_wire(tup: FourTuple) -> List[Any]:
    return [
        str(tup.local_addr), tup.local_port,
        str(tup.remote_addr), tup.remote_port,
    ]


def _tuple_from_wire(wire: List[Any]) -> FourTuple:
    try:
        return FourTuple(wire[0], wire[1], wire[2], wire[3])
    except Exception as exc:
        raise SnapshotFormatError(f"bad four-tuple {wire!r}: {exc}") from exc


def _pcb_to_wire(pcb: PCB) -> Dict[str, Any]:
    wire: Dict[str, Any] = {"tuple": _tuple_to_wire(pcb.four_tuple)}
    for field in _PCB_FIELDS:
        wire[field] = getattr(pcb, field)
    return wire


def _pcb_from_wire(wire: Dict[str, Any]) -> PCB:
    pcb = PCB(_tuple_from_wire(wire["tuple"]))
    for field in _PCB_FIELDS:
        if field in wire:
            setattr(pcb, field, wire[field])
    return pcb


class _Resolver:
    """Maps wire PCBs back to objects, preferring surviving live ones."""

    def __init__(self, pcbs: Optional[Mapping[FourTuple, PCB]]):
        self._live = pcbs
        self.by_tuple: Dict[FourTuple, PCB] = {}

    def resolve(self, wire: Dict[str, Any]) -> PCB:
        tup = _tuple_from_wire(wire["tuple"])
        obj = self._live.get(tup) if self._live is not None else None
        if obj is None:
            obj = _pcb_from_wire(wire)
        self.by_tuple[tup] = obj
        return obj

    def cached(self, wire: List[Any], what: str) -> PCB:
        """The already-restored PCB a cache slot references."""
        tup = _tuple_from_wire(wire)
        obj = self.by_tuple.get(tup)
        if obj is None:
            raise SnapshotFormatError(
                f"{what} references {tup}, which is not in the population"
            )
        return obj


# -- capture ------------------------------------------------------------

def capture_state(
    algorithm: DemuxAlgorithm, spec: Optional[str] = None
) -> Dict[str, Any]:
    """The JSON-able decision state of ``algorithm``.

    ``spec`` defaults to the registry spec stamped by
    :func:`~repro.core.registry.make_algorithm`; directly constructed
    instances must pass it explicitly so restore knows what to build.
    """
    if not getattr(algorithm, "snapshottable", True):
        raise SnapshotError(
            f"{algorithm.name} is a supervisor facade, not a structure;"
            " checkpoint its shards (ShardSupervisor.checkpoint) instead"
        )
    spec = spec or algorithm.spec
    if not spec:
        raise SnapshotError(
            f"{algorithm.name} has no registry spec; pass spec= so"
            " restore knows what to rebuild"
        )
    if isinstance(algorithm, ShardedDemux):
        return _capture_sharded(algorithm, spec)
    return _capture_single(algorithm, spec)


def _capture_single(algorithm: DemuxAlgorithm, spec: str) -> Dict[str, Any]:
    return {
        "kind": "single",
        "spec": spec,
        "name": algorithm.name,
        "pcbs": [_pcb_to_wire(pcb) for pcb in algorithm],
        "stats": algorithm.stats.as_dict(),
        "extra": _capture_extra(algorithm),
        "lifecycle": _capture_lifecycle(algorithm),
    }


def _cache_wire(pcb: Optional[PCB]) -> Optional[List[Any]]:
    return None if pcb is None else _tuple_to_wire(pcb.four_tuple)


def _capture_extra(algorithm: DemuxAlgorithm) -> Dict[str, Any]:
    extra: Dict[str, Any] = {}
    if isinstance(algorithm, BSDDemux):
        extra["cache"] = _cache_wire(algorithm.cached_pcb)
    elif isinstance(algorithm, SendRecvDemux):
        extra["recv_cache"] = _cache_wire(algorithm.recv_cached_pcb)
        extra["send_cache"] = _cache_wire(algorithm.send_cached_pcb)
    elif isinstance(algorithm, MultiCacheDemux):
        # OrderedDict iterates LRU -> MRU; preserved verbatim.
        extra["cache_lru"] = [
            _tuple_to_wire(tup) for tup in algorithm._cache.keys()
        ]
    elif isinstance(algorithm, (SequentDemux, HashedMTFDemux)):
        extra["chain_caches"] = [
            [index, _tuple_to_wire(chain.cache.four_tuple)]
            for index, chain in enumerate(algorithm._chains)
            if chain.cache is not None
        ]
        if isinstance(algorithm, SequentDemux):
            extra["overload_events"] = algorithm.chain_overload_events
    elif isinstance(algorithm, ConnectionIdDemux):
        extra["slots"] = [
            _cache_wire(pcb) for pcb in algorithm._slots
        ]
        extra["free"] = list(algorithm._free)
    elif isinstance(algorithm, FastBSDDemux):
        extra["cache"] = _cache_wire(algorithm.cached_pcb)
    elif isinstance(algorithm, (FastSequentDemux, FastHashedMTFDemux)):
        extra["chain_caches"] = [
            [index, _tuple_to_wire(slot.pcb.four_tuple)]
            for index, slot in enumerate(algorithm._caches)
            if slot.key is not None
        ]
        if isinstance(algorithm, FastSequentDemux):
            extra["overload_events"] = algorithm.chain_overload_events
    elif isinstance(algorithm, FastCuckooDemux):
        # The physical layout *is* the decision state: slot placement
        # came from kickout history that an insert replay cannot
        # reproduce, so capture it verbatim.  Pre-filters are a pure
        # function of the placement and are re-derived on restore.
        extra["cuckoo"] = {
            "nbuckets": algorithm.nbuckets,
            "bucket_size": algorithm.bucket_size,
            "kick_cursor": algorithm._kick_cursor,
            "slots": [
                [index, _tuple_to_wire(pcb.four_tuple)]
                for index, pcb in enumerate(algorithm._slot_pcbs)
                if algorithm._slot_fps[index]
            ],
            "stash": [
                _tuple_to_wire(pcb.four_tuple)
                for _key, pcb, _fp in algorithm._stash
            ],
            "counters": algorithm.cuckoo_counters.as_dict(),
        }
    if isinstance(algorithm, _FastDemuxBase):
        # The KeyCache intern census: one memo per live connection by
        # the memory-bounds contract.  Recorded for post-restore
        # verification; counters for observability continuity.
        extra["fastpath"] = {
            "interned": algorithm.interned_entries,
            "counters": algorithm.fastpath_counters.as_dict(),
        }
    return extra


def _capture_lifecycle(algorithm: DemuxAlgorithm) -> Optional[Dict[str, Any]]:
    reaper = algorithm.lifecycle
    if reaper is None:
        return None
    from ..lifecycle.reaper import ConnectionReaper

    if not isinstance(reaper, ConnectionReaper):
        return None
    entries = []
    for tup, last_touch in reaper._last_touch.items():
        deadline = (
            reaper.wheel.deadline_of(tup) if tup in reaper.wheel else None
        )
        entries.append([_tuple_to_wire(tup), last_touch, deadline])
    return {
        "idle_timeout": reaper.idle_timeout,
        "time_wait": reaper.time_wait,
        "now": reaper.now,
        "wheel_tick": reaper.wheel.tick,
        "entries": entries,
    }


def _steering_spec(steering: Any) -> str:
    if isinstance(steering, HashSteering):
        for name, fn in HASH_FUNCTIONS.items():
            if fn is steering._hash:
                from ..hashing.functions import default_hash

                return "hash" if fn is default_hash else f"hash={name}"
        raise SnapshotError(
            "hash steering uses an unregistered hash function; cannot"
            " serialize it"
        )
    return steering.name


def _capture_sharded(algorithm: ShardedDemux, spec: str) -> Dict[str, Any]:
    inner_spec = algorithm.inner_spec
    shards = []
    for index, shard in enumerate(algorithm.shards):
        if not (shard.spec or inner_spec):
            raise SnapshotError(
                "sharded structure's shards carry no registry spec;"
                " build it through make_algorithm or pass inner_spec"
            )
        # Route through the facade so worker-resident shards (the
        # shared-memory workers mode) are captured by their workers.
        shards.append(algorithm.capture_shard_payload(index))
    steering = algorithm.steering
    steering_state: Dict[str, Any] = {"spec": _steering_spec(steering)}
    if isinstance(steering, RoundRobinSteering):
        steering_state["rr_next"] = steering._next
    elif isinstance(steering, StickyFlowSteering):
        steering_state["sticky_flows"] = [
            [_tuple_to_wire(tup), shard]
            for tup, shard in steering._flows.items()
        ]
        steering_state["sticky_assigned"] = steering.assigned_loads()
    return {
        "kind": "sharded",
        "spec": spec,
        "name": algorithm.name,
        "inner_spec": inner_spec,
        "nshards": algorithm.nshards,
        "home": [
            [_tuple_to_wire(tup), shard]
            for tup, shard in algorithm.home_table().items()
        ],
        "steering": steering_state,
        "flow_migrations": algorithm.flow_migrations,
        "migration_relookups": list(algorithm.migration_loads()),
        "stats": algorithm.stats.as_dict(),
        "shards": shards,
        "lifecycle": _capture_lifecycle(algorithm),
    }


# -- restore ------------------------------------------------------------

def restore_state(
    payload: Dict[str, Any],
    *,
    pcbs: Optional[Mapping[FourTuple, PCB]] = None,
) -> DemuxAlgorithm:
    """Rebuild a decision-identical structure from a captured payload.

    ``pcbs`` optionally maps four-tuples to surviving live PCB objects
    (the supervisor's connection directory); matching connections are
    re-linked to those objects instead of deserialized copies, so
    owners holding PCB references (the TCP stack, workloads) stay
    coherent across a restore.
    """
    try:
        kind = payload["kind"]
    except (TypeError, KeyError):
        raise SnapshotFormatError("payload has no 'kind' field") from None
    if kind == "sharded":
        return _restore_sharded(payload, pcbs)
    if kind == "single":
        return _restore_single(payload, pcbs)
    raise SnapshotFormatError(f"unknown payload kind {kind!r}")


def _restore_single(
    payload: Dict[str, Any],
    pcbs: Optional[Mapping[FourTuple, PCB]],
) -> DemuxAlgorithm:
    try:
        algorithm = make_algorithm(payload["spec"])
    except ValueError as exc:
        raise SnapshotFormatError(
            f"snapshot spec {payload.get('spec')!r} does not build: {exc}"
        ) from exc
    resolver = _Resolver(pcbs)
    extra = payload.get("extra", {})
    if isinstance(algorithm, ConnectionIdDemux):
        _restore_connection_id(algorithm, payload, extra, resolver)
    elif isinstance(algorithm, FastCuckooDemux):
        _restore_cuckoo(algorithm, payload, extra, resolver)
        _restore_extra(algorithm, extra, resolver)
    else:
        # Every list/chain structure head-inserts, so replaying the
        # captured structure order *in reverse* reproduces it exactly
        # (per chain too: relative order within a chain is preserved).
        for wire in reversed(payload["pcbs"]):
            algorithm.insert(resolver.resolve(wire))
        _restore_extra(algorithm, extra, resolver)
    try:
        algorithm.stats = DemuxStats.from_dict(payload["stats"])
    except (KeyError, TypeError, ValueError) as exc:
        raise SnapshotFormatError(f"bad stats block: {exc}") from exc
    _verify_fastpath_census(algorithm, extra)
    lifecycle = payload.get("lifecycle")
    if lifecycle is not None:
        _restore_lifecycle(algorithm, lifecycle, resolver)
    return algorithm


def _restore_connection_id(
    algorithm: ConnectionIdDemux,
    payload: Dict[str, Any],
    extra: Dict[str, Any],
    resolver: _Resolver,
) -> None:
    # IDs are negotiated state: lookup_by_id must keep resolving the
    # same connections, so the slot array and free list are restored
    # verbatim rather than replayed through insert (which would
    # renumber).
    wires = {
        tuple(wire["tuple"]): wire for wire in payload["pcbs"]
    }
    slots: List[Optional[PCB]] = []
    ids: Dict[FourTuple, int] = {}
    for cid, slot_wire in enumerate(extra.get("slots", [])):
        if slot_wire is None:
            slots.append(None)
            continue
        pcb_wire = wires.get(tuple(slot_wire))
        if pcb_wire is None:
            raise SnapshotFormatError(
                f"slot {cid} references a PCB missing from the population"
            )
        pcb = resolver.resolve(pcb_wire)
        slots.append(pcb)
        ids[pcb.four_tuple] = cid
    free = [int(cid) for cid in extra.get("free", [])]
    if len(ids) != len(payload["pcbs"]):
        raise SnapshotFormatError(
            "connection-ID slot table disagrees with the PCB population"
        )
    algorithm._slots = slots
    algorithm._free = free
    algorithm._ids = ids


def _restore_cuckoo(
    algorithm: FastCuckooDemux,
    payload: Dict[str, Any],
    extra: Dict[str, Any],
    resolver: _Resolver,
) -> None:
    # Slot placement is kickout history that an insert replay cannot
    # reproduce, so -- like connection IDs -- the physical layout is
    # restored verbatim.  Pre-filters are re-derived by the restore
    # hooks (they are a pure function of the placement).
    data = extra.get("cuckoo")
    if data is None:
        raise SnapshotFormatError(
            "cuckoo snapshot is missing its layout block"
        )
    nbuckets = int(data["nbuckets"])
    if nbuckets < 2:
        raise SnapshotFormatError(
            f"cuckoo snapshot has {nbuckets} buckets (need >= 2)"
        )
    if int(data["bucket_size"]) != algorithm.bucket_size:
        raise SnapshotFormatError(
            f"cuckoo snapshot has {data['bucket_size']}-slot buckets"
            f" but spec {payload.get('spec')!r} builds"
            f" {algorithm.bucket_size}-slot buckets"
        )
    wires = {tuple(wire["tuple"]): wire for wire in payload["pcbs"]}
    algorithm._alloc(nbuckets)
    restored = 0
    try:
        for index, tup_wire in data.get("slots", []):
            pcb_wire = wires.get(tuple(tup_wire))
            if pcb_wire is None:
                raise SnapshotFormatError(
                    f"cuckoo slot {index} references a PCB missing"
                    " from the population"
                )
            algorithm.restore_slot(int(index), resolver.resolve(pcb_wire))
            restored += 1
        for tup_wire in data.get("stash", []):
            pcb_wire = wires.get(tuple(tup_wire))
            if pcb_wire is None:
                raise SnapshotFormatError(
                    "cuckoo stash references a PCB missing from the"
                    " population"
                )
            algorithm.restore_stash(resolver.resolve(pcb_wire))
            restored += 1
    except (ValueError, IndexError) as exc:
        raise SnapshotFormatError(
            f"cuckoo layout does not restore: {exc}"
        ) from exc
    if restored != len(payload["pcbs"]):
        raise SnapshotFormatError(
            f"cuckoo layout places {restored} PCBs but the population"
            f" holds {len(payload['pcbs'])}"
        )
    algorithm._kick_cursor = int(data.get("kick_cursor", 0))
    counters = data.get("counters")
    if counters:
        for field, value in counters.items():
            if hasattr(algorithm.cuckoo_counters, field):
                setattr(algorithm.cuckoo_counters, field, int(value))


def _restore_extra(
    algorithm: DemuxAlgorithm,
    extra: Dict[str, Any],
    resolver: _Resolver,
) -> None:
    if isinstance(algorithm, BSDDemux):
        wire = extra.get("cache")
        if wire is not None:
            algorithm._cache = resolver.cached(wire, "bsd cache")
    elif isinstance(algorithm, SendRecvDemux):
        for field, label in (
            ("_recv_cache", "recv_cache"), ("_send_cache", "send_cache"),
        ):
            wire = extra.get(label)
            if wire is not None:
                setattr(algorithm, field, resolver.cached(wire, label))
    elif isinstance(algorithm, MultiCacheDemux):
        for wire in extra.get("cache_lru", []):
            pcb = resolver.cached(wire, "lru cache")
            algorithm._cache[pcb.four_tuple] = pcb
    elif isinstance(algorithm, (SequentDemux, HashedMTFDemux)):
        for index, wire in extra.get("chain_caches", []):
            _check_chain(algorithm._chains, index)
            algorithm._chains[index].cache = resolver.cached(
                wire, f"chain {index} cache"
            )
        if isinstance(algorithm, SequentDemux):
            algorithm.chain_overload_events = int(
                extra.get("overload_events", 0)
            )
    elif isinstance(algorithm, FastBSDDemux):
        wire = extra.get("cache")
        if wire is not None:
            pcb = resolver.cached(wire, "bsd cache")
            algorithm._cache.set(pcb.four_tuple.key_bits(), pcb)
    elif isinstance(algorithm, (FastSequentDemux, FastHashedMTFDemux)):
        for index, wire in extra.get("chain_caches", []):
            _check_chain(algorithm._caches, index)
            pcb = resolver.cached(wire, f"chain {index} cache")
            algorithm._caches[index].set(pcb.four_tuple.key_bits(), pcb)
        if isinstance(algorithm, FastSequentDemux):
            algorithm.chain_overload_events = int(
                extra.get("overload_events", 0)
            )
    if isinstance(algorithm, _FastDemuxBase):
        counters = extra.get("fastpath", {}).get("counters")
        if counters:
            for field, value in counters.items():
                if hasattr(algorithm.fastpath_counters, field):
                    setattr(algorithm.fastpath_counters, field, int(value))


def _check_chain(chains: List[Any], index: Any) -> None:
    if not isinstance(index, int) or not 0 <= index < len(chains):
        raise SnapshotFormatError(
            f"cache references chain {index!r} of {len(chains)}"
        )


def _verify_fastpath_census(
    algorithm: DemuxAlgorithm, extra: Dict[str, Any]
) -> None:
    if not isinstance(algorithm, _FastDemuxBase):
        return
    interned = algorithm.interned_entries
    if interned != len(algorithm):
        raise SnapshotError(
            f"restore broke the intern census: {interned} memos for"
            f" {len(algorithm)} live connections"
        )
    recorded = extra.get("fastpath", {}).get("interned")
    if recorded is not None and recorded != interned:
        raise SnapshotFormatError(
            f"snapshot recorded {recorded} interned keys but the"
            f" population restores {interned}"
        )


def _restore_lifecycle(
    algorithm: DemuxAlgorithm,
    data: Dict[str, Any],
    resolver: _Resolver,
) -> None:
    from ..lifecycle.reaper import ConnectionReaper
    from ..lifecycle.wheel import TimerWheel

    wheel = TimerWheel(tick=float(data["wheel_tick"]))
    reaper = ConnectionReaper(
        algorithm,
        idle_timeout=data.get("idle_timeout"),
        time_wait=data.get("time_wait"),
        wheel=wheel,
    )
    now = float(data.get("now", 0.0))
    # The constructor adopted the population at wheel time zero; move
    # the wheel to snapshot time (discarding the adoption timers that
    # "expired" on the way) and re-arm the captured check deadlines and
    # last-touch times.  The true deadline is last_touch + timeout
    # (lazy-deadline design), so restoring both reproduces reap timing.
    wheel.advance(now)
    reaper._now = max(reaper._now, now)
    for wire, last_touch, deadline in data.get("entries", []):
        tup = _tuple_from_wire(wire)
        if tup not in reaper._last_touch:
            raise SnapshotFormatError(
                f"lifecycle entry for {tup} has no restored connection"
            )
        reaper._last_touch[tup] = float(last_touch)
        if deadline is None:
            wheel.cancel(tup)
        else:
            wheel.schedule(tup, float(deadline))


def _restore_sharded(
    payload: Dict[str, Any],
    pcbs: Optional[Mapping[FourTuple, PCB]],
) -> ShardedDemux:
    try:
        algorithm = make_algorithm(payload["spec"])
    except ValueError as exc:
        raise SnapshotFormatError(
            f"snapshot spec {payload.get('spec')!r} does not build: {exc}"
        ) from exc
    if not isinstance(algorithm, ShardedDemux):
        raise SnapshotFormatError(
            f"spec {payload['spec']!r} is not sharded but the payload is"
        )
    shard_payloads = payload.get("shards", [])
    if len(shard_payloads) != algorithm.nshards:
        raise SnapshotFormatError(
            f"payload has {len(shard_payloads)} shards,"
            f" spec builds {algorithm.nshards}"
        )
    for index, shard_payload in enumerate(shard_payloads):
        algorithm.replace_shard(
            index, _restore_single(shard_payload, pcbs)
        )
    algorithm._home = {
        _tuple_from_wire(wire): int(shard)
        for wire, shard in payload.get("home", [])
    }
    steering_state = payload.get("steering", {})
    steering = algorithm.steering
    if isinstance(steering, RoundRobinSteering):
        steering._next = int(steering_state.get("rr_next", 0))
    elif isinstance(steering, StickyFlowSteering):
        for wire, shard in steering_state.get("sticky_flows", []):
            steering._flows[_tuple_from_wire(wire)] = int(shard)
        steering._assigned = [
            int(load) for load in steering_state.get("sticky_assigned", [])
        ]
    algorithm.flow_migrations = int(payload.get("flow_migrations", 0))
    relookups = payload.get("migration_relookups")
    if relookups is not None:  # absent in pre-attribution snapshots
        algorithm._migration_relookups = [int(n) for n in relookups]
    try:
        algorithm.stats = DemuxStats.from_dict(payload["stats"])
    except (KeyError, TypeError, ValueError) as exc:
        raise SnapshotFormatError(f"bad stats block: {exc}") from exc
    lifecycle = payload.get("lifecycle")
    if lifecycle is not None:
        _restore_lifecycle(algorithm, lifecycle, _Resolver(pcbs))
    return algorithm


# -- the checksummed envelope ------------------------------------------

def _canonical(payload: Dict[str, Any]) -> bytes:
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def to_envelope(payload: Dict[str, Any]) -> bytes:
    """Frame a captured payload as versioned, checksummed bytes."""
    body = _canonical(payload)
    envelope = {
        "format": SNAPSHOT_FORMAT,
        "version": SNAPSHOT_VERSION,
        "sha256": hashlib.sha256(body).hexdigest(),
        "payload": payload,
    }
    return json.dumps(envelope, sort_keys=True).encode("utf-8")


def snapshot_bytes(
    algorithm: DemuxAlgorithm, spec: Optional[str] = None
) -> bytes:
    """Capture ``algorithm`` into checksummed snapshot bytes."""
    return to_envelope(capture_state(algorithm, spec))


def open_envelope(blob: bytes) -> Dict[str, Any]:
    """Verify framing, version, and checksum; return the payload.

    Raises :class:`SnapshotFormatError` for anything that does not
    parse as a current-version snapshot and
    :class:`SnapshotIntegrityError` when the payload fails its
    checksum.  Never returns unverified state.
    """
    try:
        envelope = json.loads(blob.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SnapshotFormatError(f"not a snapshot: {exc}") from exc
    if not isinstance(envelope, dict):
        raise SnapshotFormatError("not a snapshot: envelope is not an object")
    if envelope.get("format") != SNAPSHOT_FORMAT:
        raise SnapshotFormatError(
            f"unknown snapshot format {envelope.get('format')!r}"
        )
    version = envelope.get("version")
    if version != SNAPSHOT_VERSION:
        raise SnapshotFormatError(
            f"unsupported snapshot version {version!r}"
            f" (this build reads version {SNAPSHOT_VERSION})"
        )
    payload = envelope.get("payload")
    recorded = envelope.get("sha256")
    if not isinstance(payload, dict) or not isinstance(recorded, str):
        raise SnapshotFormatError("snapshot envelope is missing fields")
    actual = hashlib.sha256(_canonical(payload)).hexdigest()
    if actual != recorded:
        raise SnapshotIntegrityError(
            f"snapshot checksum mismatch: recorded {recorded[:12]}...,"
            f" computed {actual[:12]}... -- refusing to restore"
        )
    return payload


def restore_bytes(
    blob: bytes,
    *,
    pcbs: Optional[Mapping[FourTuple, PCB]] = None,
) -> DemuxAlgorithm:
    """Verify + restore in one step (see :func:`open_envelope`)."""
    return restore_state(open_envelope(blob), pcbs=pcbs)
