"""Crash tolerance for the demultiplexing structures.

The paper's structures are performance-critical *soft state*: losing a
shard loses its PCB list order, its cache slots, and its interned-key
arrays -- exactly the warmth the speedup lives in (Jain's
destination-locality argument).  This package makes that state
recoverable:

* :mod:`repro.recovery.snapshot` -- a versioned, checksummed snapshot
  format capturing any registered algorithm's full decision state,
  with ``restore(snapshot(d))`` decision-identical to ``d`` on all
  subsequent traffic (golden-traced, per-call and batched);
* :mod:`repro.recovery.supervisor` -- :class:`ShardSupervisor`, which
  wraps a :class:`~repro.smp.ShardedDemux`, checkpoints shards
  periodically, and recovers a crashed shard warm (checkpoint + delta
  replay), by re-steering orphans to survivors (sticky steering), or
  by cold rebuild -- emitting MTTR/drop/recovery metrics either way;
* :mod:`repro.recovery.drill` -- the ``recovery-drill`` scenario
  runner proving zero post-recovery divergence and quantifying the
  warm-vs-cold examined-cost gap;
* :mod:`repro.recovery.metrics` -- observability-registry publishing.

Infrastructure *fault models* (seeded shard crashes, stalls, snapshot
corruption) live with the other fault models in
:mod:`repro.faults.infra` and compose with the PR-2 spec grammar.
"""

from .snapshot import (
    SNAPSHOT_VERSION,
    SnapshotError,
    SnapshotFormatError,
    SnapshotIntegrityError,
    capture_state,
    open_envelope,
    restore_bytes,
    restore_state,
    snapshot_bytes,
    to_envelope,
)
from .supervisor import RecoveryEvent, ShardSupervisor
from .drill import DrillCell, DrillConfig, DrillResult, run_recovery_drill
from .metrics import publish_recovery

__all__ = [
    "SNAPSHOT_VERSION",
    "SnapshotError",
    "SnapshotFormatError",
    "SnapshotIntegrityError",
    "capture_state",
    "open_envelope",
    "restore_bytes",
    "restore_state",
    "snapshot_bytes",
    "to_envelope",
    "RecoveryEvent",
    "ShardSupervisor",
    "DrillCell",
    "DrillConfig",
    "DrillResult",
    "run_recovery_drill",
    "publish_recovery",
]
