"""The recovery drill: prove warm restore beats cold rebuild, with MTTR.

A drill runs three copies of one sharded algorithm over the *same*
deterministic packet stream:

* **baseline** -- never crashes;
* **warm** -- supervised with periodic checkpoints; one shard is
  killed mid-run and recovered from checkpoint + delta replay;
* **cold** -- supervised with checkpoints disabled; the same shard is
  killed at the same packet and rebuilt by re-inserting survivors.

Detection is immediate (``detect_after=0``), so no packets are lost
and the comparison isolates *state* recovery: the warm copy must stay
decision-identical to the baseline -- every (found, examined,
cache_hit) triple, before and after the crash -- while the cold copy
is allowed to diverge in cost (never in correctness: found/not-found
must still match) and pays for its lost warmth in examined PCBs.

The traffic is a hot-set skewed stream (by default 80% of packets to
10% of connections) rather than uniform TPC/A: under uniform traffic
recency order is worthless and warm vs. cold would tie.  Skew is the
regime where the paper's caches and MTF earn their keep -- Jain's
packet-train locality -- and therefore the regime where losing warmth
costs.  The drill quantifies that cost on the packets steered at the
crashed shard during a post-recovery window, and records each
recovery's MTTR against a budget.

``python -m repro.cli recovery-drill`` runs this and writes
``results/recovery_drill.{txt,json}``; CI runs it with two seeds and
fails on any divergence, inverted cost gap, or blown MTTR budget.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.registry import make_algorithm
from ..core.pcb import PCB
from ..core.stats import PacketKind
from ..packet.addresses import FourTuple
from ..sim.rng import derive_seed
from ..smp.sharded import ShardedDemux
from .supervisor import ShardSupervisor

__all__ = ["DrillConfig", "DrillCell", "DrillResult", "run_recovery_drill"]


@dataclasses.dataclass(frozen=True)
class DrillConfig:
    """One drill campaign: algorithms x seeds, shared scenario shape."""

    algorithms: Sequence[str] = (
        "sharded-fast-mtf:shards=4",
        "sharded-fast-hashed_mtf:shards=4,h=7",
    )
    seeds: Sequence[int] = (1, 2)
    #: Connections installed before traffic starts.
    n_users: int = 200
    #: Traffic packets after the install phase.
    n_packets: int = 6000
    #: Supervisor checkpoint cadence for the warm copy (operations).
    checkpoint_every: int = 500
    #: The crash lands at ``int(n_packets * crash_fraction)``.
    crash_fraction: float = 0.5
    #: Post-recovery packets over which examined-cost is compared.
    post_window: int = 1500
    #: Every recovery must repair faster than this.
    mttr_budget_ms: float = 5000.0
    #: Fraction of connections in the hot set...
    hot_fraction: float = 0.1
    #: ...receiving this fraction of the traffic.
    hot_weight: float = 0.8

    def __post_init__(self) -> None:
        if not self.algorithms:
            raise ValueError("need at least one algorithm spec")
        if not self.seeds:
            raise ValueError("need at least one seed")
        if self.n_users < 2 or self.n_packets < 10:
            raise ValueError("drill population/traffic too small to measure")
        if not 0.0 < self.crash_fraction < 1.0:
            raise ValueError(
                f"crash_fraction must be in (0, 1), got {self.crash_fraction}"
            )
        if not 0.0 < self.hot_fraction < 1.0:
            raise ValueError(
                f"hot_fraction must be in (0, 1), got {self.hot_fraction}"
            )
        if not 0.0 < self.hot_weight < 1.0:
            raise ValueError(
                f"hot_weight must be in (0, 1), got {self.hot_weight}"
            )


@dataclasses.dataclass
class DrillCell:
    """One (algorithm, seed) drill outcome."""

    spec: str
    seed: int
    crashed_shard: int
    crash_at: int
    #: Warm-vs-baseline decision mismatches (must be 0).
    warm_divergence: int
    #: Cold-vs-baseline found/not-found mismatches (must be 0).
    cold_found_divergence: int
    #: Examined PCBs on crashed-shard packets in the post window.
    baseline_cost: int
    warm_cost: int
    cold_cost: int
    #: Packets the window actually steered at the crashed shard.
    window_packets: int
    mttr_ms: float
    warm_summary: Dict[str, Any]
    cold_summary: Dict[str, Any]
    failures: List[str]

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def cold_penalty(self) -> float:
        """Cold examined-cost relative to warm (>1 means warmth won)."""
        return self.cold_cost / self.warm_cost if self.warm_cost else 0.0

    def as_dict(self) -> Dict[str, Any]:
        data = dataclasses.asdict(self)
        data["ok"] = self.ok
        data["cold_penalty"] = self.cold_penalty
        return data


@dataclasses.dataclass
class DrillResult:
    """A full drill campaign, ready for artifacts."""

    config: DrillConfig
    cells: List[DrillCell]

    @property
    def ok(self) -> bool:
        return all(cell.ok for cell in self.cells)

    @property
    def mttr_ms_max(self) -> float:
        return max((cell.mttr_ms for cell in self.cells), default=0.0)

    def to_json(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "mttr_ms_max": self.mttr_ms_max,
            "mttr_budget_ms": self.config.mttr_budget_ms,
            "config": dataclasses.asdict(self.config),
            "cells": [cell.as_dict() for cell in self.cells],
        }

    def render_text(self) -> str:
        lines = [
            "recovery drill: warm restore vs cold rebuild",
            f"  {len(self.cells)} cells"
            f" ({len(self.config.algorithms)} algorithms x"
            f" {len(self.config.seeds)} seeds),"
            f" crash at {self.config.crash_fraction:.0%} of"
            f" {self.config.n_packets} packets,"
            f" hot set {self.config.hot_fraction:.0%} of"
            f" {self.config.n_users} users"
            f" taking {self.config.hot_weight:.0%} of traffic",
            "",
            f"  {'algorithm':40s} {'seed':>4s} {'shard':>5s}"
            f" {'warm-div':>8s} {'warm-cost':>9s} {'cold-cost':>9s}"
            f" {'penalty':>7s} {'mttr-ms':>8s}  status",
        ]
        for cell in self.cells:
            status = "ok" if cell.ok else "FAIL: " + "; ".join(cell.failures)
            lines.append(
                f"  {cell.spec:40s} {cell.seed:>4d} {cell.crashed_shard:>5d}"
                f" {cell.warm_divergence:>8d} {cell.warm_cost:>9d}"
                f" {cell.cold_cost:>9d} {cell.cold_penalty:>7.2f}"
                f" {cell.mttr_ms:>8.2f}  {status}"
            )
        lines.append("")
        verdict = "PASS" if self.ok else "FAIL"
        lines.append(
            f"  {verdict}: max MTTR {self.mttr_ms_max:.2f} ms"
            f" (budget {self.config.mttr_budget_ms:.0f} ms)"
        )
        return "\n".join(lines)


def _drill_tuple(index: int) -> FourTuple:
    return FourTuple(
        "10.0.0.1", 8000, f"10.{index // 65536}.{(index // 256) % 256}.{index % 256}",
        1024 + (index % 60000),
    )


def hot_set_stream(
    config: DrillConfig, seed: int
) -> Tuple[List[FourTuple], List[Tuple[FourTuple, PacketKind]]]:
    """The drill's deterministic skewed workload.

    Returns ``(users, packets)``: the connections to install (in
    order) and the traffic that follows.  The hot set is the first
    ``hot_fraction`` of users; each packet picks hot-vs-cold by
    ``hot_weight``, uniform within the chosen set, 70/30 data/ack.
    """
    rng = random.Random(derive_seed(seed, "recovery-drill:stream"))
    users = [_drill_tuple(i) for i in range(config.n_users)]
    n_hot = max(1, int(config.n_users * config.hot_fraction))
    hot, cold = users[:n_hot], users[n_hot:]
    packets: List[Tuple[FourTuple, PacketKind]] = []
    for _ in range(config.n_packets):
        pool = hot if rng.random() < config.hot_weight else cold
        tup = pool[rng.randrange(len(pool))]
        kind = PacketKind.DATA if rng.random() < 0.7 else PacketKind.ACK
        packets.append((tup, kind))
    return users, packets


def _run_cell(config: DrillConfig, spec: str, seed: int) -> DrillCell:
    users, packets = hot_set_stream(config, seed)

    baseline = make_algorithm(spec)
    if not isinstance(baseline, ShardedDemux):
        raise ValueError(f"recovery drill needs a sharded spec, got {spec!r}")
    warm = ShardSupervisor(
        make_algorithm(spec), checkpoint_every=config.checkpoint_every
    )
    cold = ShardSupervisor(make_algorithm(spec), checkpoint_every=0)

    for tup in users:
        baseline.insert(PCB(tup))
        warm.insert(PCB(tup))
        cold.insert(PCB(tup))

    crash_at = int(config.n_packets * config.crash_fraction)
    crashed_shard = random.Random(
        derive_seed(seed, "recovery-drill:crash")
    ).randrange(baseline.nshards)

    warm_divergence = 0
    cold_found_divergence = 0
    baseline_cost = warm_cost = cold_cost = 0
    window_packets = 0
    window_end = crash_at + config.post_window
    steering = baseline.steering

    for position, (tup, kind) in enumerate(packets):
        if position == crash_at:
            warm.crash_shard(crashed_shard)
            cold.crash_shard(crashed_shard)
        rb = baseline.lookup(tup, kind)
        rw = warm.lookup(tup, kind)
        rc = cold.lookup(tup, kind)
        if (rb.found, rb.examined, rb.cache_hit) != (
            rw.found, rw.examined, rw.cache_hit
        ):
            warm_divergence += 1
        if rb.found != rc.found:
            cold_found_divergence += 1
        if (
            crash_at <= position < window_end
            and steering.shard_of(tup, baseline.nshards) == crashed_shard
        ):
            window_packets += 1
            baseline_cost += rb.examined
            warm_cost += rw.examined
            cold_cost += rc.examined

    mttrs = [event.mttr_ms for event in warm.events] + [
        event.mttr_ms for event in cold.events
    ]
    mttr_ms = max(mttrs, default=0.0)

    failures: List[str] = []
    if warm_divergence:
        failures.append(
            f"warm restore diverged on {warm_divergence} packets"
        )
    if cold_found_divergence:
        failures.append(
            f"cold rebuild lost {cold_found_divergence} connections"
        )
    if not any(e.mode == "warm" for e in warm.events):
        failures.append("warm copy did not recover from a checkpoint")
    if not warm.events or not cold.events:
        failures.append("a supervisor never recovered its crashed shard")
    if warm_cost >= cold_cost:
        failures.append(
            f"warm restore did not beat cold rebuild"
            f" ({warm_cost} >= {cold_cost} examined)"
        )
    if mttr_ms > config.mttr_budget_ms:
        failures.append(
            f"MTTR {mttr_ms:.2f} ms over budget"
            f" {config.mttr_budget_ms:.0f} ms"
        )

    return DrillCell(
        spec=spec,
        seed=seed,
        crashed_shard=crashed_shard,
        crash_at=crash_at,
        warm_divergence=warm_divergence,
        cold_found_divergence=cold_found_divergence,
        baseline_cost=baseline_cost,
        warm_cost=warm_cost,
        cold_cost=cold_cost,
        window_packets=window_packets,
        mttr_ms=mttr_ms,
        warm_summary=warm.recovery_summary(),
        cold_summary=cold.recovery_summary(),
        failures=failures,
    )


def run_recovery_drill(config: Optional[DrillConfig] = None) -> DrillResult:
    """Run the full campaign: every algorithm spec across every seed."""
    config = config if config is not None else DrillConfig()
    cells = [
        _run_cell(config, spec, seed)
        for spec in config.algorithms
        for seed in config.seeds
    ]
    return DrillResult(config=config, cells=cells)
